//! Smoke tests for the four §5 demo scenarios (the examples exercise
//! them interactively; these keep them under `cargo test`).

use spannerlib::covid::corpus::generate_corpus;
use spannerlib::covid::native::NativePipeline;
use spannerlib::covid::spanner::SpannerPipeline;
use spannerlib::llm::{FewShotStore, LlmModel, RagRetriever, TemplateLlm};
use spannerlib::prelude::*;

#[test]
fn scenario_basic_task_identical_sentences() {
    let mut session = Session::new();
    session.register("sents", Some(1), |args, ctx| {
        let (text, doc, base) = ctx.text_argument(&args[0])?;
        Ok(spannerlib::nlp::split_sentences(&text)
            .into_iter()
            .map(|s| {
                vec![Value::Span(spannerlib::Span::new(
                    doc,
                    base + s.start,
                    base + s.end,
                ))]
            })
            .collect())
    });
    session
        .run(
            r#"
            new Corpus(str, str)
            Corpus("a", "Shared line. Unique a.")
            Corpus("b", "Shared line. Unique b.")
            S(d, txt) <- Corpus(d, t), sents(t) -> (x), as_str(x) -> (txt)
            Same(d1, d2, txt) <- S(d1, txt), S(d2, txt), d1 < d2
            "#,
        )
        .unwrap();
    let out = session.export("?Same(d1, d2, txt)").unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.get(0, 2), Some(Value::str("Shared line.")));
}

#[test]
fn scenario_end_to_end_documentation() {
    let mut session = Session::new();
    spannerlib::codeast::ie::register_ast_functions(&mut session);
    let llm = TemplateLlm::new();
    session.register("llm", Some(1), move |args, _ctx| {
        Ok(vec![vec![Value::str(
            llm.complete(args[0].as_str().unwrap_or_default()),
        )]])
    });
    session.run("new Files(str, str)").unwrap();
    session
        .add_fact(
            "Files",
            [
                Value::str("m.ml"),
                Value::str("fn parse_header(line) { return split(line); }"),
            ],
        )
        .unwrap();
    session
        .run(
            r#"
            Decl(s) <- Files(f, c), ast(".*.FuncDecl", c) -> (s)
            Doc(a) <- Decl(s),
                      format("Write documentation for the function:\n{}", s) -> (q),
                      llm(q) -> (a)
            "#,
        )
        .unwrap();
    let out = session.export("?Doc(a)").unwrap();
    assert!(out
        .get(0, 0)
        .unwrap()
        .as_str()
        .unwrap()
        .starts_with("/// Parse header."));
}

#[test]
fn scenario_extending_with_rag_and_fewshot() {
    // RAG: retrieval feeds the QA-shaped prompt.
    let retriever = RagRetriever::new(
        [(
            "spec".to_string(),
            "The engine evaluates Spannerlog rules bottom-up".to_string(),
        )],
        1,
    );
    let prompt = retriever.augment("how are rules evaluated");
    let answer = TemplateLlm::new().complete(&prompt);
    assert!(answer.contains("bottom-up"));

    // Few-shot: recorded feedback shapes later completions.
    let mut store = FewShotStore::new();
    store.record("label the note", "LABEL: A");
    store.record("label the chart", "LABEL: B");
    let styled = TemplateLlm::new().complete(&store.prompt("label the scan", 2));
    assert_eq!(styled, "LABEL THE SCAN");
}

#[test]
fn scenario_real_code_base_side_by_side() {
    let docs = generate_corpus(40, 123);
    let native = NativePipeline::new().classify_corpus(&docs);
    let rewritten = SpannerPipeline::new()
        .unwrap()
        .classify_corpus(&docs)
        .unwrap();
    assert_eq!(native.len(), rewritten.len());
    for (n, s) in native.iter().zip(&rewritten) {
        assert_eq!(n.status, s.status, "disagreement on {}", n.doc_id);
    }
    // Table 1 artifacts are available and consistent.
    let summary = spannerlib::covid::loc::summary();
    assert!(summary.original_total > summary.rewrite_imperative);
    let rendered = spannerlib::covid::loc::render_table1();
    assert!(rendered.contains("Table 1"));
}
