//! Cross-crate integration tests: every code fragment and worked example
//! the paper shows, executed through the umbrella crate's public API.

use spannerlib::prelude::*;

/// §2, the running example: α = x{a+}c+y{b+} over d = "acb aacccbbb"
/// returns exactly (⟨0,1⟩, ⟨2,3⟩) and (⟨4,6⟩, ⟨9,12⟩), mapping to
/// (a, b) and (aa, bbb).
#[test]
fn section_2_worked_example() {
    let re = spannerlib::regex::Regex::new("x{a+}c+y{b+}").unwrap();
    let d = "acb aacccbbb";
    let rows: Vec<Vec<Option<(usize, usize)>>> = re
        .captures_iter(d)
        .map(|c| c.explicit_groups().collect())
        .collect();
    assert_eq!(
        rows,
        vec![
            vec![Some((0, 1)), Some((2, 3))],
            vec![Some((4, 6)), Some((9, 12))],
        ]
    );
    assert_eq!(&d[0..1], "a");
    assert_eq!(&d[2..3], "b");
    assert_eq!(&d[4..6], "aa");
    assert_eq!(&d[9..12], "bbb");
}

/// §3.2, the embedding example: import → rule → filtered export.
#[test]
fn section_3_2_embedding() {
    let mut session = Session::new();
    let df = DataFrame::from_rows(
        vec!["Date".into(), "Text".into()],
        vec![
            vec![Value::str("d1"), Value::str("ann@gmail.com")],
            vec![Value::str("d2"), Value::str("bob@work.org")],
        ],
    )
    .unwrap();
    session.import_dataframe(&df, "Texts").unwrap();
    session
        .run(r#"R(usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom)"#)
        .unwrap();
    let out = session.export(r#"?R(usr, "gmail")"#).unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.get(0, 0), Some(Value::str("ann")));
}

/// §3.1, the aggregation example: lex_concat(str(y)) groups by t.
#[test]
fn section_3_1_aggregation() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new Texts(str, str)
            Texts("d1", "c b a")
            R(t, lex_concat(str(y))) <- Texts(d, t), rgx("\w+", t) -> (y)
            "#,
        )
        .unwrap();
    let out = session.export("?R(t, s)").unwrap();
    assert_eq!(out.get(0, 1), Some(Value::str("abc")));
}

/// §3.3, registering a callback and composing it with rgx in one rule
/// (the `T(z, v, w) <- R(x, y), S("bob", x), foo(x, y) -> (z), …` shape).
#[test]
fn section_3_3_callbacks() {
    let mut session = Session::new();
    session.register("foo", Some(2), |args, _ctx| {
        let joined = format!(
            "{} {}",
            args[0].as_str().unwrap_or(""),
            args[1].as_str().unwrap_or("")
        );
        Ok(vec![vec![Value::str(joined)]])
    });
    session
        .run(
            r#"
            new R(str, str)
            new S(str, str)
            R("left", "right")
            S("bob", "left")
            T(z, v, w) <- R(x, y), S("bob", x), foo(x, y) -> (z),
                          rgx("w{le}v{ft}", z) -> (w, v)
            "#,
        )
        .unwrap();
    let rel = {
        let mut s = session;
        s.relation("T").unwrap()
    };
    assert_eq!(rel.len(), 1);
}

/// §4.1's scope_of rule shape: AST pattern + containment over a cursor.
#[test]
fn section_4_1_scope_of() {
    let mut session = Session::new();
    spannerlib::codeast::ie::register_ast_functions(&mut session);
    let code = "fn outer() { inner(); }\nfn inner() { work(); }\n";
    session.run("new Files(str, str)").unwrap();
    session
        .add_fact("Files", [Value::str("f.ml"), Value::str(code)])
        .unwrap();
    let doc = session.intern(code);
    let at = code.find("work").unwrap();
    let pos = session.make_span(doc, at, at + 1).unwrap();
    session
        .declare("Cursor", Schema::new(vec![ValueType::Span]))
        .unwrap();
    session.add_fact("Cursor", [Value::Span(pos)]).unwrap();
    session
        .run(
            r#"
            ScopeOf(pos, s) <- Files(f, c), Cursor(pos),
                               ast(".*.(FuncDecl|ClassDecl)", c) -> (s),
                               contained_in(pos, s)
            ScopeName(n) <- ScopeOf(pos, s), ast_name(s) -> (n)
            "#,
        )
        .unwrap();
    let out = session.export("?ScopeName(n)").unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.get(0, 0), Some(Value::str("inner")));
}

/// The spanner algebra is consistent between automaton-level and
/// relation-level composition (core-spanner closure, Fagin et al.).
#[test]
fn spanner_algebra_consistency() {
    use spannerlib::regex::Spanner;
    let a = Spanner::new("x{a+}").unwrap();
    let b = Spanner::new("x{ab}").unwrap();
    let text = "aabab";
    let via_automaton = a.union(&b).unwrap().evaluate(text);
    let via_relation = a.evaluate(text).union(&b.evaluate(text)).unwrap();
    assert_eq!(via_automaton, via_relation);
}

/// DataFrames round-trip through the engine and CSV unchanged.
#[test]
fn dataframe_bridges_round_trip() {
    let df = DataFrame::from_rows(
        vec!["k".into(), "v".into()],
        vec![
            vec![Value::str("a"), Value::Int(1)],
            vec![Value::str("b"), Value::Int(2)],
        ],
    )
    .unwrap();
    // Host → engine → host.
    let mut session = Session::new();
    session.import_dataframe(&df, "KV").unwrap();
    let back = session.export("?KV(k, v)").unwrap();
    assert_eq!(back.num_rows(), 2);
    // Host → CSV → host.
    let csv = df.to_csv();
    let reparsed = DataFrame::from_csv(&csv).unwrap();
    assert_eq!(df, reparsed);
}

/// The two pillars of embedding cooperate: a Rust closure consumes spans
/// produced by a Spannerlog rule, and its output flows back into rules.
#[test]
fn bidirectional_embedding() {
    let mut session = Session::new();
    session.register("shout", Some(1), |args, ctx| {
        let text = match &args[0] {
            Value::Span(s) => ctx.span_text(s)?,
            Value::Str(s) => s.to_string(),
            _ => String::new(),
        };
        Ok(vec![vec![Value::str(text.to_uppercase())]])
    });
    session
        .run(
            r#"
            new Docs(str)
            Docs("hello world")
            Word(w) <- Docs(d), rgx("\w+", d) -> (w)
            Loud(u) <- Word(w), shout(w) -> (u)
            "#,
        )
        .unwrap();
    let out = session.export("?Loud(u)").unwrap();
    let words: Vec<String> = out
        .iter_rows()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect();
    assert_eq!(words, vec!["HELLO", "WORLD"]);
}
