//! Demo scenario 2 ("End-to-End Task", paper §4.1/§5): the
//! code-documentation pipeline.
//!
//! Given a code base (`Files`) and a cursor position (`Cursor`), build an
//! LLM context consisting of (1) the function containing the cursor and
//! (2) every function that calls it — the paper's improvement over the
//! "last k files" heuristic — then ask the LLM for documentation.
//!
//! The rules below are the paper's `scope_of` / `document` rules, spelled
//! out against this library's IE functions (`ast`, `ast_name`,
//! `ast_calls`, `llm`, `format`, `contained_in`).
//!
//! Run with: `cargo run --example code_documentation`

use spannerlib::codeast::ie::register_ast_functions;
use spannerlib::llm::{LlmModel, TemplateLlm};
use spannerlib::prelude::*;

const CODE: &str = "\
class Triage {
  fn compute_risk_score(patient, history) {
    let base = risk_baseline(patient);
    return base + adjust_for_history(history);
  }
}
fn risk_baseline(p) { return 1; }
fn adjust_for_history(h) { return 2; }
fn admit_patient(p, h) {
  let score = Triage.compute_risk_score(p, h);
  if score > 3 { escalate(p); }
}
fn weekly_report(ward) {
  let totals = Triage.compute_risk_score(ward, 0);
  publish(totals);
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    register_ast_functions(&mut session);

    let llm = TemplateLlm::new();
    session.register("llm", Some(1), move |args, _ctx| {
        let prompt = args[0].as_str().unwrap_or_default();
        Ok(vec![vec![Value::str(llm.complete(prompt))]])
    });

    // Files(name, content) and Cursor(pos): the cursor sits inside
    // compute_risk_score.
    session.run("new Files(str, str)")?;
    session.add_fact("Files", [Value::str("triage.ml"), Value::str(CODE)])?;
    let doc = session.intern(CODE);
    let at = CODE.find("risk_baseline(patient)").unwrap();
    let cursor = session.make_span(doc, at, at + 1)?;
    session.declare(
        "Cursor",
        spannerlib::Schema::new(vec![spannerlib::ValueType::Span]),
    )?;
    session.add_fact("Cursor", [Value::Span(cursor)])?;

    // The paper's pipeline, as Spannerlog rules.
    session.run(
        r#"
        # scope_of(pos, s): the declaration containing the cursor (§4.1).
        ScopeOf(pos, s) <- Files(f, c), Cursor(pos),
                           ast(".*.FuncDecl", c) -> (s), contained_in(pos, s)

        # The current function's name, and everyone who mentions it.
        CurrentName(name) <- ScopeOf(pos, s), ast_name(s) -> (name)
        Mentions(m, name) <- Files(f, c), ast_calls(c) -> (m, name)
        CallerCode(m) <- CurrentName(name), Mentions(m, name)
        CallerNames(collect(str(n))) <- CallerCode(m), ast_name(m) -> (n)

        # document(pos, a): prompt the LLM with scope + callers (§4.1).
        Prompt(q) <- ScopeOf(pos, s), CallerNames(callers),
                     format("Write documentation for the function:\n{}\nCallers:\n  {}", s, callers) -> (q)
        Document(pos, a) <- Cursor(pos), Prompt(q), llm(q) -> (a)
        "#,
    )?;

    // One compilation serves both export queries (an IDE would execute
    // them on every cursor move, against a re-imported Cursor relation).
    let program = session.prepare_program()?;
    let document_query = program.query("?Document(pos, a)")?;
    let callers_query = program.query("?CallerNames(c)")?;

    let out = document_query.execute(&mut session)?;
    let answer = out.get(0, 1).unwrap();
    let answer = answer.as_str().unwrap();
    println!("Cursor is inside `compute_risk_score`; generated documentation:\n");
    println!("{answer}\n");

    // The context retrieval found the right scope and both callers.
    assert!(answer.contains("Compute risk score"));
    assert!(answer.contains("admit_patient"));
    assert!(answer.contains("weekly_report"));

    let callers: Vec<(String,)> = callers_query.execute_typed(&mut session)?;
    println!("Callers found: {}", callers[0].0);
    Ok(())
}
