//! Demo scenario 4 ("Real Code Base", paper §4.2/§5): the COVID-19
//! classification case study, side by side.
//!
//! Runs the imperative pipeline and its SpannerLib rewrite over the same
//! synthetic corpus, verifies they agree, compares both against the gold
//! labels, prints the surveillance statistics from both sides (explicit
//! folds vs aggregation rules), and finishes with the Table 1
//! lines-of-code audit.
//!
//! Run with: `cargo run --example covid_case_study`

use spannerlib::covid::corpus::generate_corpus;
use spannerlib::covid::loc;
use spannerlib::covid::native::report::SurveillanceReport;
use spannerlib::covid::native::NativePipeline;
use spannerlib::covid::spanner::SpannerPipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let docs = generate_corpus(100, 42);
    println!(
        "Generated {} synthetic clinical notes. Sample:\n",
        docs.len()
    );
    println!(
        "--- {} (gold: {}) ---\n{}",
        docs[0].id, docs[0].gold, docs[0].text
    );

    // Imperative implementation.
    let native = NativePipeline::new();
    let native_results = native.classify_corpus(&docs);
    let native_acc = native.accuracy(&docs);

    // SpannerLib rewrite.
    let mut spanner = SpannerPipeline::new()?;
    let spanner_results = spanner.classify_corpus(&docs)?;
    let spanner_acc = spanner.accuracy(&docs)?;

    let agree = native_results
        .iter()
        .zip(&spanner_results)
        .filter(|(n, s)| n.status == s.status)
        .count();
    println!(
        "\nAgreement: {agree}/{} documents classified identically",
        docs.len()
    );
    println!("Gold accuracy: native {native_acc:.3}, spannerlib {spanner_acc:.3}\n");
    assert_eq!(agree, docs.len(), "implementations must agree");

    // Surveillance statistics: imperative fold vs aggregation rules.
    // The ad-hoc query is prepared once and run against a Send + Sync
    // snapshot — the evaluated state is frozen, so this is a pure read.
    let report = SurveillanceReport::build(&native_results);
    println!("{report}\n");
    let count_query = spanner.session_mut().prepare("?StatusCount(s, n)")?;
    let snapshot = spanner.session_mut().snapshot()?;
    let counts = snapshot.execute(&count_query)?;
    println!("Same numbers from the Spannerlog aggregation rule\n  StatusCount(s, count(d)) <- Status(d, s):\n{counts}\n");

    // Table 1.
    println!("{}", loc::render_table1());
    Ok(())
}
