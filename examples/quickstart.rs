//! Quickstart: the paper's §3.2 embedding example, end to end, driven
//! through the prepare-once/execute-many lifecycle.
//!
//! Mirrors the serving flow — build a session, compile the program into
//! a prepared query once, then execute it against freshly imported
//! batches — and additionally reproduces the §2 worked example
//! (`x{a+}c+y{b+}` over `acb aacccbbb`) with span outputs.
//!
//! Run with: `cargo run --example quickstart`

use spannerlib::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build: a session with resource limits fit for a long-lived
    //    serving process.
    let mut session = Session::builder()
        .max_fixpoint_rounds(10_000)
        .max_materialized_rows(1_000_000)
        .build();

    // 2. Prepare: import a first batch (typed rows — no DataFrame
    //    boilerplate), load the paper's rule, compile the query once.
    session.import_typed(
        "Texts",
        vec![("2024-01-01", "write to ann@gmail.com and bob@work.org")],
    )?;
    session.run(
        r#"
        R(usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
    "#,
    )?;
    let gmail_users = session.prepare(r#"?R(usr, "gmail")"#)?;

    // 3. Execute, many times: each batch re-imports Texts and reruns the
    //    prepared query — no re-parsing, no re-planning, and the
    //    fixpoint only runs when the input relation actually changed.
    let batches = vec![
        vec![("2024-01-02", "or eve@gmail.com")],
        vec![
            ("2024-01-03", "carol@gmail.com wrote"),
            ("2024-01-04", "dave@work.org did not"),
        ],
    ];
    for batch in batches {
        session.import_typed("Texts", batch)?;
        let out = gmail_users.execute(&mut session)?;
        println!("?R(usr, \"gmail\") on this batch:\n{out}\n");
        assert_eq!(out.num_rows(), 1);
    }

    // Typed export: host tuples instead of a stringly frame.
    let users: Vec<(String,)> = gmail_users.execute_typed(&mut session)?;
    println!("typed export: {users:?}\n");

    // A Send + Sync snapshot serves concurrent readers without locking
    // the writer.
    let snapshot = session.snapshot()?;
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let out = snapshot.execute(&gmail_users).unwrap();
                assert_eq!(out.num_rows(), 1);
            });
        }
    });
    println!("snapshot served 2 concurrent readers\n");

    // --- The §2 worked example, with spans (paper's four verbs) --------
    let mut session = Session::new();
    session.run(
        r#"
        new Docs(str)
        Docs("acb aacccbbb")
        Spans(x, y) <- Docs(d), rgx("x{a+}c+y{b+}", d) -> (x, y)
        "#,
    )?;
    let rel = session.relation("Spans")?;
    println!("rgx(x{{a+}}c+y{{b+}}) over \"acb aacccbbb\":");
    for tuple in rel.sorted_tuples() {
        let x = tuple[0].as_span().unwrap();
        let y = tuple[1].as_span().unwrap();
        println!(
            "  x = {} ({:?}), y = {} ({:?})",
            x,
            session.span_text(x)?,
            y,
            session.span_text(y)?
        );
    }
    // Exactly the paper's two tuples: (⟨0,1⟩,⟨2,3⟩) and (⟨4,6⟩,⟨9,12⟩).
    assert_eq!(rel.len(), 2);
    Ok(())
}
