//! Quickstart: the paper's §3.2 embedding example, end to end.
//!
//! Mirrors the notebook flow — build a DataFrame in host code, import it,
//! run a Spannerlog cell with a regex IE atom, export a filtered query —
//! and additionally reproduces the §2 worked example (`x{a+}c+y{b+}` over
//! `acb aacccbbb`) with span outputs.
//!
//! Run with: `cargo run --example quickstart`

use spannerlib::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();

    // %%python — build the host-side table and import it.
    let df = DataFrame::from_rows(
        vec!["date".into(), "text".into()],
        vec![
            vec![
                Value::str("2024-01-01"),
                Value::str("write to ann@gmail.com and bob@work.org"),
            ],
            vec![Value::str("2024-01-02"), Value::str("or eve@gmail.com")],
        ],
    )?;
    session.import_dataframe(&df, "Texts")?;
    println!("Imported Texts:\n{df}\n");

    // %%log — the paper's rule: extract user and domain of every email.
    session.run(
        r#"
        R(usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
    "#,
    )?;

    // %%python — export the gmail users.
    let out = session.export(r#"?R(usr, "gmail")"#)?;
    println!("?R(usr, \"gmail\"):\n{out}\n");
    assert_eq!(out.num_rows(), 2);

    // --- The §2 worked example, with spans -----------------------------
    let mut session = Session::new();
    session.run(
        r#"
        new Docs(str)
        Docs("acb aacccbbb")
        Spans(x, y) <- Docs(d), rgx("x{a+}c+y{b+}", d) -> (x, y)
        "#,
    )?;
    let rel = session.relation("Spans")?;
    println!("rgx(x{{a+}}c+y{{b+}}) over \"acb aacccbbb\":");
    for tuple in rel.sorted_tuples() {
        let x = tuple[0].as_span().unwrap();
        let y = tuple[1].as_span().unwrap();
        println!(
            "  x = {} ({:?}), y = {} ({:?})",
            x,
            session.span_text(x)?,
            y,
            session.span_text(y)?
        );
    }
    // Exactly the paper's two tuples: (⟨0,1⟩,⟨2,3⟩) and (⟨4,6⟩,⟨9,12⟩).
    assert_eq!(rel.len(), 2);
    Ok(())
}
