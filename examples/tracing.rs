//! Observability with `spannerlib_trace`: per-rule profiling, span
//! capture, and a cross-run metrics sink.
//!
//! Datalog hides the execution plan on purpose — which is exactly why a
//! slow program is hard to reason about from the rules alone. The trace
//! subsystem answers "where did the time go" without changing results:
//!
//! * `SessionBuilder::tracing(TraceLevel)` — `Off` (default, a few
//!   dormant probes), `Summary` (per-rule counters and wall times), or
//!   `Spans` (plus a byte-bounded ring of hierarchical span events);
//! * `Session::profile()` — the `EvalProfile` of the latest fixpoint,
//!   renderable as a table or exportable as JSON lines;
//! * `SessionBuilder::tracer(...)` — a `Tracer` sink (here a
//!   `RingTracer`) that aggregates profiles across runs into counters
//!   and latency histograms.
//!
//! Run with: `cargo run --example tracing`

use spannerlib::prelude::*;
use spannerlib::RingTracer;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build: profile every evaluation, and keep cross-run metrics in
    //    an attached RingTracer. The session knob and the tracer's
    //    requested level combine by maximum, so either alone suffices.
    let tracer = Arc::new(RingTracer::new(TraceLevel::Spans, 64 * 1024));
    let mut session = Session::builder()
        .tracing(TraceLevel::Spans)
        .tracer(tracer.clone())
        .build();

    // 2. A program with something to measure: recursive reachability
    //    plus a regex extraction, so the profile shows joins, rounds,
    //    and IE calls.
    session.import_typed(
        "Texts",
        vec![
            ("d1", "ann@gmail.com wrote to bob@work.org"),
            ("d2", "eve@mail.net cc ann@gmail.com"),
        ],
    )?;
    session.run(
        r#"
        new Edge(int, int)
        Edge(1, 2) Edge(2, 3) Edge(3, 4) Edge(4, 5)
        Path(x, y) <- Edge(x, y)
        Path(x, z) <- Path(x, y), Edge(y, z)
        Email(d, usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
    "#,
    )?;
    session.export("?Path(x, y)")?;

    // 3. The profile: per-stratum, per-rule wall times, firings, tuple
    //    and join-row counts, per-IE-function memo statistics.
    let profile = session.profile().expect("tracing is on");
    println!("{}", profile.render());

    // 4. The same data as JSON lines, for offline analysis.
    let json = profile.to_json_lines();
    println!("-- first two JSON records --");
    for line in json.lines().take(2) {
        println!("{line}");
    }

    // 5. The tracer aggregates across runs: mutate an input, rerun, and
    //    the counters keep climbing while the ring holds recent spans.
    session.import_typed("Texts", vec![("d3", "late mail from zed@mail.net")])?;
    session.export("?Email(d, usr, dom)")?;
    let metrics = tracer.metrics();
    println!("-- cross-run metrics --");
    for (name, value) in metrics.counters() {
        println!("{name:>28} = {value}");
    }
    let eval_ns = metrics.histogram("eval_ns").snapshot();
    println!(
        "evals: {} (p50 {}, p99 {}), spans resident: {}",
        eval_ns.count,
        spannerlib::trace::fmt_ns(eval_ns.p50()),
        spannerlib::trace::fmt_ns(eval_ns.p99()),
        tracer.spans().len(),
    );
    assert_eq!(metrics.counter("evals").get(), 2);
    Ok(())
}
