//! Demo scenario 3 ("Extending SpannerLib Code", paper §5): extending the
//! code-documentation pipeline with the two prompt-augmentation
//! techniques the paper names — Retrieval-Augmented Generation and
//! few-shot prompting from user feedback.
//!
//! The point of the scenario is how *little* changes: each extension is
//! one new IE function registration plus one or two added rules; the
//! existing pipeline is untouched.
//!
//! Run with: `cargo run --example rag_extension`

use spannerlib::llm::{FewShotStore, LlmModel, RagRetriever, TemplateLlm};
use spannerlib::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let llm = TemplateLlm::new();
    let mut session = Session::builder()
        .register("llm", Some(1), move |args, _ctx| {
            let prompt = args[0].as_str().unwrap_or_default();
            Ok(vec![vec![Value::str(llm.complete(prompt))]])
        })
        .build();

    // --- Extension 1: RAG over documentation not seen in training ------
    let retriever = RagRetriever::new(
        [
            (
                "style-guide".to_string(),
                "Docstrings start with a capitalized verb phrase".to_string(),
            ),
            (
                "triage-spec".to_string(),
                "The triage module computes patient risk scores from history".to_string(),
            ),
            (
                "deploy-notes".to_string(),
                "Deployment runs every Tuesday evening".to_string(),
            ),
        ],
        2,
    );
    session.register("retrieve", Some(1), move |args, _ctx| {
        let question = args[0].as_str().unwrap_or_default();
        Ok(vec![vec![Value::str(retriever.augment(question))]])
    });

    session.run(
        r#"
        new Questions(str)
        Questions("what does the triage module compute")
        RagAnswer(q, a) <- Questions(q), retrieve(q) -> (p), llm(p) -> (a)
        "#,
    )?;
    let rag = session.export("?RagAnswer(q, a)")?;
    println!("RAG-augmented answer:\n{rag}\n");
    let answer = rag.get(0, 1).unwrap();
    assert!(answer.as_str().unwrap().contains("risk scores"));

    // --- Extension 2: few-shot prompting from recorded feedback --------
    let mut store = FewShotStore::new();
    store.record("summarize the admission note", "SUMMARY: ADMITTED STABLE");
    store.record("summarize the discharge note", "SUMMARY: DISCHARGED WELL");
    store.record("translate to german", "guten tag");
    session.register("fewshot", Some(1), move |args, _ctx| {
        let input = args[0].as_str().unwrap_or_default();
        Ok(vec![vec![Value::str(store.prompt(input, 2))]])
    });

    session.run(
        r#"
        new Tasks(str)
        Tasks("summarize the radiology note")
        StyledAnswer(t, a) <- Tasks(t), fewshot(t) -> (p), llm(p) -> (a)
        "#,
    )?;
    let styled = session.export("?StyledAnswer(t, a)")?;
    println!("Few-shot styled answer:\n{styled}");
    let answer = styled.get(0, 1).unwrap();
    // The model follows the uppercase style of the similar examples.
    assert_eq!(answer.as_str().unwrap(), "SUMMARIZE THE RADIOLOGY NOTE");
    Ok(())
}
