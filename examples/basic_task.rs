//! Demo scenario 1 ("Basic Task", paper §5): defining and composing IE
//! functions — finding identical sentences in a corpus, then a small
//! LLM-backed question-answering pipeline.
//!
//! Run with: `cargo run --example basic_task`

use spannerlib::llm::{LlmModel, TemplateLlm};
use spannerlib::nlp::split_sentences;
use spannerlib::prelude::*;
use spannerlib::Span;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: identical sentences across documents -----------------
    // Sentence splitting is seeded into the registry at build time (a
    // thin wrapper over host code, as the paper prescribes).
    let mut session = Session::builder()
        .register("sents", Some(1), |args, ctx| {
            let (text, doc, base) = ctx.text_argument(&args[0])?;
            Ok(split_sentences(&text)
                .into_iter()
                .map(|s| vec![Value::Span(Span::new(doc, base + s.start, base + s.end))])
                .collect())
        })
        .build();

    session.run(
        r#"
        new Corpus(str, str)
        Corpus("a.txt", "The lab is closed. Results are pending.")
        Corpus("b.txt", "Results are pending. Call tomorrow.")
        Corpus("c.txt", "Nothing matches here.")

        Sentence(d, s, txt) <- Corpus(d, t), sents(t) -> (s), as_str(s) -> (txt)
        # identical sentence text in two different documents
        Identical(d1, d2, txt) <- Sentence(d1, s1, txt), Sentence(d2, s2, txt), d1 < d2
        "#,
    )?;
    let out = session.export("?Identical(d1, d2, txt)")?;
    println!("Identical sentences across documents:\n{out}\n");
    assert_eq!(out.num_rows(), 1);

    // The same rows as typed host tuples instead of a stringly frame.
    let pairs: Vec<(String, String, String)> = session.export_typed("?Identical(d1, d2, txt)")?;
    assert_eq!(pairs.len(), 1);
    assert_eq!(pairs[0].0, "a.txt");

    // --- Part 2: LLM question answering over extracted context ---------
    // The LLM is an opaque str -> str IE function (here the deterministic
    // TemplateLlm standing in for a chat-model API).
    let llm = TemplateLlm::new();
    session.register("llm", Some(1), move |args, _ctx| {
        let prompt = args[0].as_str().unwrap_or_default();
        Ok(vec![vec![Value::str(llm.complete(prompt))]])
    });

    session.run(
        r#"
        new Questions(str)
        Questions("when is the lab closed")

        # Build a prompt from every corpus document and ask the LLM.
        Context(lex_concat(str(t))) <- Corpus(d, t)
        Prompt(q, p) <- Questions(q), Context(c),
                        format("Context: {}\nQuestion: {}", c, q) -> (p)
        Answer(q, a) <- Prompt(q, p), llm(p) -> (a)
        "#,
    )?;
    let answers = session.export("?Answer(q, a)")?;
    println!("LLM answers:\n{answers}");
    assert_eq!(answers.num_rows(), 1);
    let answer = answers.get(0, 1).unwrap();
    assert!(answer.as_str().unwrap().contains("lab is closed"));
    Ok(())
}
