//! Parallel extraction: split-correct shard-parallel evaluation.
//!
//! Spanner programs whose rules extract from one document at a time
//! admit *split-correctness* (Doleschal, Kimelfeld, Martens, Nahshon,
//! Neven — "Split-Correctness in Information Extraction"): running the
//! extractor per document shard and unioning the outputs equals running
//! it over the whole corpus. The engine proves that property per rule
//! at compile time and runs the cleared rules across a work-stealing
//! pool; everything else silently falls back to the serial path with
//! identical results.
//!
//! Run with: `cargo run --example parallel_extraction`

use spannerlib::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A corpus large enough for sharding to matter: one synthetic
    // incident report per document.
    let corpus: Vec<(String, String)> = (0..64)
        .map(|i| {
            (
                format!("report-{i:03}"),
                format!(
                    "unit{u} reported error E{code} at node{n}; \
                     retry {r} succeeded for unit{u}",
                    u = i % 7,
                    code = 100 + (i * 13) % 40,
                    n = i % 5,
                    r = i % 3,
                ),
            )
        })
        .collect();

    // `parallelism` defaults to one worker per core; 0 or 1 pins the
    // session serial. Results are identical either way — parallelism is
    // property-tested to be semantically invisible.
    let mut session = Session::builder()
        .parallelism(4)
        .tracing(TraceLevel::Summary)
        .build();
    session.import_typed("Texts", corpus)?;
    session.run(
        r#"
        Error(d, code) <- Texts(d, t), rgx_string("E([0-9]+)", t) -> (code)
        Unit(d, u) <- Texts(d, t), rgx_string("(unit[0-9]+)", t) -> (u)
        Blame(u, code) <- Unit(d, u), Error(d, code)
        Load(u, count(code)) <- Blame(u, code)
    "#,
    )?;

    // The compile-time verdicts: which rules shard, which run serial
    // (and why). The two `rgx_string` rules partition on their text
    // variable; the join has no IE call to parallelize, and the
    // aggregation folds across documents.
    let program = session.prepare_program()?;
    println!("shard plan:");
    for rule in &program.program().shard_plan().rules {
        match (&rule.doc_var, rule.reason) {
            (Some(var), _) if rule.parallel => {
                println!("  parallel  {:<6} partitions on `{var}`", rule.head)
            }
            (_, Some(reason)) => println!("  serial    {:<6} {reason}", rule.head),
            _ => println!("  serial    {:<6}", rule.head),
        }
    }

    let busiest = session.export("?Load(u, n)")?;
    println!("\nper-unit error load:\n{busiest}");

    // The evaluation profile's `par:` line reports workers, shard
    // tasks (and how many were stolen across workers), IE batches, and
    // serial-fallback rule count.
    if let Some(profile) = session.profile() {
        for line in profile.render().lines() {
            if line.trim_start().starts_with("par:") {
                println!("{line}");
            }
        }
    }
    Ok(())
}
