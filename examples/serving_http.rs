//! Serving Spannerlog over HTTP with `spannerd`.
//!
//! Boots the serving front end in-process on an ephemeral port, then
//! drives the whole lifecycle over the wire with the bundled client:
//! register rules and an IE function, import documents, prepare a
//! query, and execute it — including a conditional re-execute (ETag /
//! If-None-Match) and a per-request deadline.
//!
//! The same server is what `cargo run --bin spannerd` starts as a
//! stand-alone daemon.
//!
//! Run with: `cargo run --example serving_http`

use spannerlib::serve::{Client, Json, ServeConfig, Server};
use spannerlib::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot. The server takes ownership of the session; every
    //    mutation from here on serializes through its writer thread.
    let server = Server::bind(Session::new(), ServeConfig::default())?;
    let addr = server.local_addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.serve());
    println!("spannerd listening on http://{addr}");

    let mut client = Client::new(addr);

    // 2. Register an IE function (a regex catalog entry) and rules
    //    that call it.
    let resp = client.post(
        "/register",
        &Json::parse(
            r#"{"ie": {"name": "ticket", "pattern": "([A-Z]+)-([0-9]+)", "output": "strings"}}"#,
        )?,
    )?;
    assert_eq!(resp.status, 200);
    let resp = client.post(
        "/register",
        &Json::parse(r#"{"rules": "new Log(str)\nTicket(p, n) <- Log(l), ticket(l) -> (p, n)"}"#)?,
    )?;
    assert_eq!(resp.status, 200);

    // 3. Import documents. Mutations apply immediately but evaluation
    //    is lazy: it runs once, when the first execute needs it, shared
    //    by every concurrent request waiting on the same churn.
    let resp = client.post(
        "/import",
        &Json::parse(
            r#"{"relation": "Log", "rows": [["deploy fixed JIRA-123"], ["rollback of OPS-7 pending"]]}"#,
        )?,
    )?;
    assert_eq!(resp.status, 200);

    // 4. Prepare once, execute many — with a per-request deadline.
    let resp = client.post(
        "/prepare",
        &Json::parse(r#"{"name": "tickets", "query": "?Ticket(p, n)"}"#)?,
    )?;
    assert_eq!(resp.status, 200);
    let resp = client.post(
        "/execute",
        &Json::parse(r#"{"prepared": "tickets", "deadline_ms": 2000}"#)?,
    )?;
    assert_eq!(resp.status, 200);
    let body = resp.json().map_err(std::io::Error::other)?;
    println!(
        "tickets: {} rows, fingerprint {}",
        body.get("row_count").and_then(Json::as_i64).unwrap_or(0),
        body.get("fingerprint")
            .and_then(Json::as_str)
            .unwrap_or("?"),
    );
    let etag = resp.header("etag").expect("200s carry an ETag").to_string();

    // 5. Conditional re-execute: nothing changed, so the validator
    //    short-circuits to 304 and no rows travel.
    let resp = client.request(
        "POST",
        "/execute",
        &[("If-None-Match", &etag)],
        Some(r#"{"prepared": "tickets"}"#),
    )?;
    println!("re-execute with If-None-Match: {}", resp.status);
    assert_eq!(resp.status, 304);

    // 6. Scrape /metrics: every request above is already on the
    //    counters, and the latency histograms expose cumulative
    //    Prometheus buckets a scraper can ingest as-is.
    let resp = client.get("/metrics")?;
    assert_eq!(resp.status, 200);
    let requests: u64 = resp
        .body
        .lines()
        .filter(|l| l.starts_with("http_requests_total"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    println!(
        "metrics: {} exposition lines, {requests} requests served",
        resp.body.lines().count()
    );

    // 7. Graceful shutdown: stop accepting, drain, join.
    handle.shutdown();
    server_thread.join().expect("server thread")?;
    println!("drained cleanly");
    Ok(())
}
