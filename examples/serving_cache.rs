//! Long-lived serving with the `spannerlib_cache` subsystem: memoized
//! IE evaluation plus document-store garbage collection.
//!
//! A serving session that streams batches for hours faces two costs the
//! notebook workflow never sees: re-paying spanner evaluation on every
//! fixpoint rerun, and a document store that only ever grows. This
//! example wires both knobs of the cache subsystem:
//!
//! * `ie_cache_capacity` — a byte-budgeted memo over
//!   `(function, args) → output rows`; warm reruns replay extraction
//!   instead of recomputing it (watch the hit counters climb);
//! * `doc_gc` — threshold-triggered compaction that tombstones
//!   documents no live span references, bounding resident text.
//!
//! Run with: `cargo run --example serving_cache`

use spannerlib::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build: memoized IE evaluation and automatic doc-store
    //    compaction past a 256 KiB watermark. The memo budget matters
    //    to the GC too: resident entries are GC roots, so the budget
    //    also bounds how much document text the cache can pin.
    let mut session = Session::builder()
        .ie_cache_capacity(64 * 1024)
        .doc_gc(DocGc::Threshold { bytes: 256 * 1024 })
        .build();

    // 2. Prepare once: an extraction program whose expensive part is
    //    the rgx scan over each document.
    session.import_typed("Texts", vec![("seed", "boot text ann@gmail.com")])?;
    session.run(
        r#"
        new Audit(int)
        Audited(x) <- Audit(x)
        Email(d, usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
        Mention(d, s) <- Texts(d, t), rgx("@\w+", t) -> (s)
    "#,
    )?;
    let emails = session.prepare("?Email(d, usr, dom)")?;

    // 3. Serve: every request appends an audit fact (so the fingerprint
    //    changes and the fixpoint reruns), but the documents repeat —
    //    exactly the shape where the memo pays.
    let corpus = vec![
        ("mon", "status from ann@gmail.com and bob@work.org"),
        ("tue", "ann@gmail.com pinged eve@mail.net again"),
        ("wed", "quiet day, no addresses"),
    ];
    for request in 0..50i64 {
        session.import_typed("Texts", corpus.clone())?;
        session.add_fact("Audit", [Value::Int(request)])?;
        let out = emails.execute(&mut session)?;
        assert_eq!(out.num_rows(), 4);
    }
    let stats = session.stats();
    println!(
        "after 50 requests: {} IE hits, {} misses ({:.0}% hit rate), {} memo bytes",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.hit_rate() * 100.0,
        stats.cache.bytes,
    );

    // 4. Churn: stream 200 *distinct* documents through import →
    //    execute → remove; span outputs intern each document (the
    //    `Mention` rule), and the GC threshold keeps resident text
    //    bounded where the old append-only store grew without limit.
    let mut peak = 0usize;
    for round in 0..200 {
        let mut unique = format!("ticket {round}: contact user{round}@host{round}.example now ");
        unique.push_str(&"lorem ipsum dolor sit amet ".repeat(80));
        session.import_typed("Texts", vec![(format!("t{round}"), unique)])?;
        emails.execute(&mut session)?;
        session.remove_relation("Texts")?;
        peak = peak.max(session.docs().bytes());
    }
    println!(
        "after 200-document churn: {} live docs, {} resident bytes (peak {}), epoch {}",
        session.docs().len(),
        session.docs().bytes(),
        peak,
        session.docs().epoch(),
    );

    // 5. Explicit compaction reports exactly what a pass reclaims —
    //    here after dropping the memo's roots, so only documents with
    //    spans in live relations survive.
    session.clear_ie_cache();
    let report = session.compact_docs();
    println!(
        "manual pass: removed {} docs, reclaimed {} bytes, {} bytes live",
        report.removed_docs, report.reclaimed_bytes, report.live_bytes,
    );
    Ok(())
}
