//! The case-study's central claim: the SpannerLib rewrite computes the
//! same thing as the imperative original. These tests run both pipelines
//! over seeded synthetic corpora and demand **identical** document
//! classifications and mention-level evidence, plus high accuracy
//! against the generator's gold labels, and data/code configuration
//! sync.

use spannerlib_covid::classify::CovidStatus;
use spannerlib_covid::corpus::generate_corpus;
use spannerlib_covid::native::NativePipeline;
use spannerlib_covid::spanner::SpannerPipeline;

#[test]
fn pipelines_agree_on_corpus() {
    let docs = generate_corpus(120, 2024);
    let native = NativePipeline::new().classify_corpus(&docs);
    let mut spanner = SpannerPipeline::new().expect("pipeline builds");
    let rewritten = spanner.classify_corpus(&docs).expect("classification runs");

    assert_eq!(native.len(), rewritten.len());
    for (n, s) in native.iter().zip(&rewritten) {
        assert_eq!(n.doc_id, s.doc_id);
        assert_eq!(
            n.status,
            s.status,
            "status disagreement on {}:\n{}",
            n.doc_id,
            docs.iter().find(|d| d.id == n.doc_id).unwrap().text
        );
        assert_eq!(
            n.mentions,
            s.mentions,
            "evidence disagreement on {}:\n{}",
            n.doc_id,
            docs.iter().find(|d| d.id == n.doc_id).unwrap().text
        );
    }
}

#[test]
fn pipelines_agree_on_second_seed() {
    let docs = generate_corpus(80, 7);
    let native = NativePipeline::new().classify_corpus(&docs);
    let mut spanner = SpannerPipeline::new().unwrap();
    let rewritten = spanner.classify_corpus(&docs).unwrap();
    for (n, s) in native.iter().zip(&rewritten) {
        assert_eq!((&n.doc_id, n.status), (&s.doc_id, s.status));
    }
}

#[test]
fn both_pipelines_hit_gold_accuracy() {
    let docs = generate_corpus(150, 99);
    let native_acc = NativePipeline::new().accuracy(&docs);
    let spanner_acc = SpannerPipeline::new().unwrap().accuracy(&docs).unwrap();
    assert!(native_acc >= 0.95, "native accuracy {native_acc}");
    assert!(spanner_acc >= 0.95, "spanner accuracy {spanner_acc}");
    assert!(
        (native_acc - spanner_acc).abs() < 1e-9,
        "accuracies diverge: {native_acc} vs {spanner_acc}"
    );
}

#[test]
fn surveillance_statistics_agree() {
    // The native report (imperative folds) must equal the Spannerlog
    // aggregation rules (StatusCount / EvidenceCount).
    let docs = generate_corpus(100, 5);
    let native_results = NativePipeline::new().classify_corpus(&docs);
    let report = spannerlib_covid::native::report::SurveillanceReport::build(&native_results);

    let mut spanner = SpannerPipeline::new().unwrap();
    spanner.classify_corpus(&docs).unwrap();
    let counts = spanner.session_mut().export("?StatusCount(s, n)").unwrap();
    for row in counts.iter_rows() {
        let status = CovidStatus::from_name(row[0].as_str().unwrap()).unwrap();
        let n = row[1].as_int().unwrap() as usize;
        assert_eq!(report.count(status), n, "count mismatch for {status}");
    }
    let evidence_counts = spanner
        .session_mut()
        .export("?EvidenceCount(e, n)")
        .unwrap();
    for row in evidence_counts.iter_rows() {
        let evidence = row[0].as_str().unwrap();
        let n = row[1].as_int().unwrap() as usize;
        assert_eq!(
            report.by_evidence.get(evidence).copied().unwrap_or(0),
            n,
            "evidence count mismatch for {evidence}"
        );
    }
}

#[test]
fn csv_artifacts_match_inline_configuration() {
    // The "code as data" files must equal what the inline native config
    // generates — run `cargo run -p spannerlib-covid --bin regen_data`
    // after changing either side.
    use spannerlib_covid::native::context_rules::MODIFIER_TABLE;
    use spannerlib_covid::native::target_rules::lexicon_rows;

    let mut targets = String::from("phrase,label\n");
    for (phrase, label) in lexicon_rows() {
        targets.push_str(&format!("{phrase},{label}\n"));
    }
    assert_eq!(spannerlib_covid::spanner::TARGETS_CSV, targets);

    let mut rules = String::from("phrase,category,direction,max_scope\n");
    for (phrase, category, direction, scope) in MODIFIER_TABLE {
        rules.push_str(&format!("{phrase},{category},{direction},{scope}\n"));
    }
    assert_eq!(spannerlib_covid::spanner::MODIFIER_RULES_CSV, rules);
}

#[test]
fn every_status_appears_in_agreement_run() {
    // Guard against a degenerate corpus making the agreement test vacuous.
    let docs = generate_corpus(120, 2024);
    let mut spanner = SpannerPipeline::new().unwrap();
    let results = spanner.classify_corpus(&docs).unwrap();
    for status in [
        CovidStatus::Positive,
        CovidStatus::Uncertain,
        CovidStatus::Negative,
        CovidStatus::Unknown,
    ] {
        assert!(
            results.iter().any(|r| r.status == status),
            "no document classified {status}"
        );
    }
}
