//! The Table 1 audit: lines-of-code comparison between the two
//! implementations of the pipeline.
//!
//! The paper's Table 1 compares the original 4335-line Python system
//! with its SpannerLib rewrite (596 total lines, only 203 of them
//! imperative). This module performs the same audit over this crate's
//! two implementations, using the same row structure, so the bench
//! binary `table1` can print paper-vs-measured side by side.
//!
//! Counting rules (applied to both sides equally):
//!
//! * blank lines are skipped;
//! * comment-only lines are skipped (`//`-style for Rust, `#` for
//!   Spannerlog and CSV headers are kept — they are content);
//! * embedded unit tests (`#[cfg(test)]` to end of file) are stripped —
//!   the original system's line count did not include its test suite.

use std::sync::OnceLock;

/// Sources of the *imperative* implementation (Table 1 column 1).
const NATIVE_SOURCES: &[(&str, &str)] = &[
    ("native/mod.rs", include_str!("native/mod.rs")),
    (
        "native/target_rules.rs",
        include_str!("native/target_rules.rs"),
    ),
    (
        "native/context_rules.rs",
        include_str!("native/context_rules.rs"),
    ),
    (
        "native/section_rules.rs",
        include_str!("native/section_rules.rs"),
    ),
    (
        "native/postprocess.rs",
        include_str!("native/postprocess.rs"),
    ),
    ("native/report.rs", include_str!("native/report.rs")),
    (
        "native/document_classifier.rs",
        include_str!("native/document_classifier.rs"),
    ),
];

/// Imperative remnants of the rewrite: the driver.
const REWRITE_DRIVER: &[(&str, &str)] = &[("spanner/mod.rs", include_str!("spanner/mod.rs"))];

/// IE-function adapters of the rewrite.
const REWRITE_IE: &[(&str, &str)] = &[("spanner/ie_funcs.rs", include_str!("spanner/ie_funcs.rs"))];

/// Declarative rule files of the rewrite.
const REWRITE_RULES: &[(&str, &str)] = &[("rules/covid.slog", include_str!("../rules/covid.slog"))];

/// Data files of the rewrite.
const REWRITE_DATA: &[(&str, &str)] = &[
    (
        "data/covid_targets.csv",
        include_str!("../data/covid_targets.csv"),
    ),
    (
        "data/modifier_rules.csv",
        include_str!("../data/modifier_rules.csv"),
    ),
    (
        "data/section_policies.csv",
        include_str!("../data/section_policies.csv"),
    ),
    (
        "data/modifier_policies.csv",
        include_str!("../data/modifier_policies.csv"),
    ),
];

/// Source languages, for comment conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// Rust (`//` comments; `#[cfg(test)]` tail stripped).
    Rust,
    /// Spannerlog (`#` comments).
    Spannerlog,
    /// CSV (every line is content).
    Csv,
}

/// Counts meaningful lines of one source.
pub fn count_code_lines(src: &str, lang: Lang) -> usize {
    let body: &str = match lang {
        Lang::Rust => src
            .split("#[cfg(test)]")
            .next()
            .expect("split yields at least one piece"),
        _ => src,
    };
    body.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter(|l| match lang {
            Lang::Rust => !l.starts_with("//"),
            Lang::Spannerlog => !l.starts_with('#'),
            Lang::Csv => true,
        })
        .count()
}

fn count_all(sources: &[(&str, &str)], lang: Lang) -> usize {
    sources.iter().map(|(_, s)| count_code_lines(s, lang)).sum()
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocRow {
    /// Row label, matching the paper's terminology (Rust for Python).
    pub code_type: &'static str,
    /// The paper's number for the original implementation.
    pub paper_original: usize,
    /// The paper's number for the SpannerLib implementation.
    pub paper_spannerlib: usize,
    /// Our measured number for the imperative implementation.
    pub ours_original: usize,
    /// Our measured number for the SpannerLib implementation.
    pub ours_spannerlib: usize,
}

/// Computes the Table 1 rows (memoized; the audit is pure).
pub fn table1() -> &'static [LocRow] {
    static ROWS: OnceLock<Vec<LocRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        let native = count_all(NATIVE_SOURCES, Lang::Rust);
        let driver = count_all(REWRITE_DRIVER, Lang::Rust);
        let ie = count_all(REWRITE_IE, Lang::Rust);
        let rules = count_all(REWRITE_RULES, Lang::Spannerlog);
        let data = count_all(REWRITE_DATA, Lang::Csv);
        vec![
            LocRow {
                code_type: "Native code",
                paper_original: 4335,
                paper_spannerlib: 110,
                ours_original: native,
                ours_spannerlib: driver,
            },
            LocRow {
                code_type: "IE functions",
                paper_original: 0,
                paper_spannerlib: 93,
                ours_original: 0,
                ours_spannerlib: ie,
            },
            LocRow {
                code_type: "Spannerlog code",
                paper_original: 0,
                paper_spannerlib: 107,
                ours_original: 0,
                ours_spannerlib: rules,
            },
            LocRow {
                code_type: "Code as data (csv)",
                paper_original: 0,
                paper_spannerlib: 286,
                ours_original: 0,
                ours_spannerlib: data,
            },
        ]
    })
}

/// Summary figures derived from the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Summary {
    /// Total imperative lines in the original implementation.
    pub original_total: usize,
    /// Imperative lines remaining in the rewrite (driver + IE functions).
    pub rewrite_imperative: usize,
    /// Declarative lines in the rewrite (rules + data).
    pub rewrite_declarative: usize,
    /// Total rewrite lines.
    pub rewrite_total: usize,
}

/// Computes the summary.
pub fn summary() -> Table1Summary {
    let rows = table1();
    let original_total: usize = rows.iter().map(|r| r.ours_original).sum();
    let rewrite_imperative = rows
        .iter()
        .filter(|r| matches!(r.code_type, "Native code" | "IE functions"))
        .map(|r| r.ours_spannerlib)
        .sum();
    let rewrite_declarative = rows
        .iter()
        .filter(|r| matches!(r.code_type, "Spannerlog code" | "Code as data (csv)"))
        .map(|r| r.ours_spannerlib)
        .sum();
    Table1Summary {
        original_total,
        rewrite_imperative,
        rewrite_declarative,
        rewrite_total: rewrite_imperative + rewrite_declarative,
    }
}

/// Renders the paper-style table with paper and measured numbers side by
/// side.
pub fn render_table1() -> String {
    let rows = table1();
    let s = summary();
    let mut out = String::new();
    out.push_str(
        "Table 1: code comparison, original vs SpannerLib implementation\n\
         (paper numbers: Python system; ours: Rust reproduction)\n\n",
    );
    out.push_str(&format!(
        "{:<22} {:>14} {:>16} {:>13} {:>15}\n",
        "Code Type", "Paper original", "Paper SpannerLib", "Ours original", "Ours SpannerLib"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>14} {:>16} {:>13} {:>15}\n",
            r.code_type, r.paper_original, r.paper_spannerlib, r.ours_original, r.ours_spannerlib
        ));
    }
    out.push_str(&format!(
        "{:<22} {:>14} {:>16} {:>13} {:>15}\n",
        "Total imperative", 4335, 203, s.original_total, s.rewrite_imperative
    ));
    out.push_str(&format!(
        "{:<22} {:>14} {:>16} {:>13} {:>15}\n",
        "Total declarative", 0, 393, 0, s.rewrite_declarative
    ));
    out.push_str(&format!(
        "{:<22} {:>14} {:>16} {:>13} {:>15}\n",
        "Total lines", 4335, 596, s.original_total, s.rewrite_total
    ));
    out.push_str(&format!(
        "\nImperative reduction: {:.1}x (paper: {:.1}x); imperative share of rewrite: {:.0}% (paper: {:.0}%)\n",
        s.original_total as f64 / s.rewrite_imperative as f64,
        4335.0 / 203.0,
        100.0 * s.rewrite_imperative as f64 / s.rewrite_total as f64,
        100.0 * 203.0 / 596.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_rules() {
        let rust = "// comment\n\nfn f() {}\nlet x = 1;\n#[cfg(test)]\nmod tests { fn t() {} }\n";
        assert_eq!(count_code_lines(rust, Lang::Rust), 2);
        let slog = "# comment\nR(x) <- S(x)\n\n?R(x)\n";
        assert_eq!(count_code_lines(slog, Lang::Spannerlog), 2);
        let csv = "a,b\n1,2\n";
        assert_eq!(count_code_lines(csv, Lang::Csv), 2);
    }

    #[test]
    fn table_shape_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        // Paper's qualitative claims, checked quantitatively on ours:
        let s = summary();
        // 1. The rewrite shrinks the imperative code by a large factor.
        assert!(
            s.original_total as f64 / s.rewrite_imperative as f64 >= 2.0,
            "imperative reduction too small: {} -> {}",
            s.original_total,
            s.rewrite_imperative
        );
        // 2. The rewrite is smaller overall.
        assert!(s.rewrite_total < s.original_total);
        // 3. Declarative artifacts dominate the rewrite.
        assert!(s.rewrite_declarative > 0);
    }

    #[test]
    fn all_sources_are_nonempty() {
        for r in table1() {
            if r.code_type == "Native code" {
                assert!(r.ours_original > 100, "native side suspiciously small");
            }
            assert!(
                r.ours_spannerlib > 0,
                "{} has no rewrite lines",
                r.code_type
            );
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let rendered = render_table1();
        for r in table1() {
            assert!(rendered.contains(r.code_type));
        }
        assert!(rendered.contains("Total lines"));
    }
}
