//! The **SpannerLib rewrite** of the pipeline — the right-hand column of
//! Table 1.
//!
//! What remains imperative is exactly what the paper's rewrite kept in
//! Python: this thin driver (build a session, load data, import/export)
//! and the IE-function adapters in [`ie_funcs`]. Everything else moved
//! to declarative artifacts:
//!
//! * `rules/covid.slog` — the orchestration, as Spannerlog rules;
//! * `data/covid_targets.csv` — the target lexicon;
//! * `data/modifier_rules.csv` — the complete ConText cue table;
//! * `data/section_policies.csv`, `data/modifier_policies.csv` — policy
//!   tables.

pub mod ie_funcs;

use crate::classify::{CovidStatus, DocumentResult, MentionEvidence};
use crate::corpus::CorpusDoc;
use spannerlib_core::{Schema, Value, ValueType};
use spannerlib_dataframe::DataFrame;
use spannerlib_nlp::{
    ContextEngine, ModifierCategory, ModifierDirection, ModifierRule, PhraseMatcher,
};
use spannerlog_engine::{EngineError, EvalProfile, PreparedQuery, Result, Session, TraceLevel};
use std::sync::Arc;

/// The Spannerlog program (declarative orchestration).
pub const RULES: &str = include_str!("../../rules/covid.slog");

/// The target lexicon ("code as data").
pub const TARGETS_CSV: &str = include_str!("../../data/covid_targets.csv");

/// The complete ConText modifier table ("code as data").
pub const MODIFIER_RULES_CSV: &str = include_str!("../../data/modifier_rules.csv");

/// Section policy table ("code as data").
pub const SECTION_POLICIES_CSV: &str = include_str!("../../data/section_policies.csv");

/// Modifier policy table ("code as data").
pub const MODIFIER_POLICIES_CSV: &str = include_str!("../../data/modifier_policies.csv");

/// The assembled declarative pipeline.
///
/// The program is compiled **once** at construction: `new()` loads the
/// rules, declares the corpus relation, and prepares the `Status` and
/// `Evidence` queries. Each [`SpannerPipeline::classify_corpus`] call
/// then only imports fresh `Notes` and executes the prepared queries —
/// the serving-path shape of the prepare/execute lifecycle.
pub struct SpannerPipeline {
    session: Session,
    status_query: PreparedQuery,
    evidence_query: PreparedQuery,
}

impl SpannerPipeline {
    /// Builds the pipeline: parses the CSV artifacts, registers the IE
    /// functions, imports the policy relations, loads the rules, and
    /// prepares the export queries.
    pub fn new() -> Result<SpannerPipeline> {
        SpannerPipeline::with_tracing(TraceLevel::Off)
    }

    /// Like [`SpannerPipeline::new`], with evaluations traced at
    /// `level` — after a [`SpannerPipeline::classify_corpus`] call,
    /// [`SpannerPipeline::profile`] then holds the per-rule breakdown
    /// of the fixpoint that classified the batch.
    pub fn with_tracing(level: TraceLevel) -> Result<SpannerPipeline> {
        SpannerPipeline::with_config(level, true, None)
    }

    /// Full-control constructor: tracing at `level`, the cost-based
    /// query planner toggled by `planner`, and evaluation `parallelism`
    /// (`None` keeps the session default of one worker per core;
    /// `Some(0)`/`Some(1)` pin serial) — the ablation knobs used by
    /// `planner_smoke`/`parallel_smoke` and the benches to price the
    /// planner and the shard-parallel evaluator on the clinical
    /// workload. Production callers want the defaults
    /// ([`SpannerPipeline::new`]).
    pub fn with_config(
        level: TraceLevel,
        planner: bool,
        parallelism: Option<usize>,
    ) -> Result<SpannerPipeline> {
        // Corpus batches repeat documents across classify_corpus calls
        // in notebook-style use, so keep the IE memo on (default
        // capacity) and let doc-store GC reclaim texts of replaced
        // corpora once they outgrow a clinical-corpus-sized watermark.
        let mut builder = Session::builder()
            .doc_gc(spannerlog_engine::DocGc::Threshold {
                bytes: 32 * 1024 * 1024,
            })
            .tracing(level)
            .planner(planner);
        if let Some(workers) = parallelism {
            builder = builder.parallelism(workers);
        }
        let mut session = builder.build();

        // Target matcher from CSV.
        let targets_df = DataFrame::from_csv(TARGETS_CSV)?;
        let mut matcher = PhraseMatcher::new();
        for row in targets_df.iter_rows() {
            let phrase = row[0].as_str().expect("phrase column is str");
            let label = row[1].as_str().expect("label column is str");
            matcher.add(label, phrase);
        }

        // ConText engine: the complete modifier table from CSV.
        let rules_df = DataFrame::from_csv(MODIFIER_RULES_CSV)?;
        let rules = rules_df
            .iter_rows()
            .map(|row| parse_modifier_rule(&row))
            .collect::<Result<Vec<_>>>()?;
        let context = ContextEngine::new(rules);

        ie_funcs::register_ie_functions(&mut session, Arc::new(matcher), Arc::new(context));

        // Policy relations.
        let sections_df = DataFrame::from_csv(SECTION_POLICIES_CSV)?;
        session.import_dataframe(&sections_df, "SectionPolicy")?;
        let modifiers_df = DataFrame::from_csv(MODIFIER_POLICIES_CSV)?;
        session.import_dataframe(&modifiers_df, "ModifierPolicy")?;

        // The declarative program.
        session.run(RULES)?;

        // Declare the corpus relation so the program compiles before the
        // first import, then prepare the export queries once.
        session.declare("Notes", Schema::new(vec![ValueType::Str, ValueType::Str]))?;
        let program = session.prepare_program()?;
        let status_query = program.query("?Status(d, s)")?;
        let evidence_query = program.query("?Evidence(d, m, e)")?;
        Ok(SpannerPipeline {
            session,
            status_query,
            evidence_query,
        })
    }

    /// Classifies a corpus: imports `Notes`, evaluates, exports `Status`
    /// and `Evidence`.
    pub fn classify_corpus(&mut self, docs: &[CorpusDoc]) -> Result<Vec<DocumentResult>> {
        let notes = DataFrame::from_rows(
            vec!["doc".into(), "text".into()],
            docs.iter()
                .map(|d| vec![Value::str(d.id.as_str()), Value::str(d.text.as_str())])
                .collect(),
        )?;
        self.session.import_dataframe(&notes, "Notes")?;

        let status_df = self.status_query.execute(&mut self.session)?;
        let mut by_doc: std::collections::BTreeMap<String, CovidStatus> =
            std::collections::BTreeMap::new();
        for row in status_df.iter_rows() {
            let doc = row[0].as_str().expect("doc is str").to_string();
            let status = CovidStatus::from_name(row[1].as_str().expect("status is str"))
                .expect("status names are stable");
            by_doc.insert(doc, status);
        }

        let evidence_df = self.evidence_query.execute(&mut self.session)?;
        let mut mentions: std::collections::BTreeMap<String, Vec<(usize, usize, MentionEvidence)>> =
            std::collections::BTreeMap::new();
        for row in evidence_df.iter_rows() {
            let doc = row[0].as_str().expect("doc is str").to_string();
            let span = row[1].as_span().expect("mention is a span");
            let evidence = match row[2].as_str().expect("evidence is str") {
                "positive" => MentionEvidence::Positive,
                "negated" => MentionEvidence::Negated,
                _ => MentionEvidence::Uncertain,
            };
            mentions
                .entry(doc)
                .or_default()
                .push((span.start_usize(), span.end_usize(), evidence));
        }

        Ok(docs
            .iter()
            .map(|d| {
                let mut ms = mentions.remove(&d.id).unwrap_or_default();
                ms.sort_by_key(|&(s, e, _)| (s, e));
                DocumentResult {
                    doc_id: d.id.clone(),
                    status: by_doc.get(&d.id).copied().unwrap_or(CovidStatus::Unknown),
                    mentions: ms,
                }
            })
            .collect())
    }

    /// Accuracy against gold labels.
    pub fn accuracy(&mut self, docs: &[CorpusDoc]) -> Result<f64> {
        if docs.is_empty() {
            return Ok(1.0);
        }
        let results = self.classify_corpus(docs)?;
        let correct = results
            .iter()
            .zip(docs)
            .filter(|(r, d)| r.status == d.gold)
            .count();
        Ok(correct as f64 / docs.len() as f64)
    }

    /// Profile of the most recent evaluation (`None` unless the
    /// pipeline was built with [`SpannerPipeline::with_tracing`] at
    /// `Summary` or above and a corpus has been classified).
    pub fn profile(&self) -> Option<Arc<EvalProfile>> {
        self.session.profile()
    }

    /// Access to the underlying session (for ad-hoc queries in examples).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Consumes the pipeline, yielding its fully configured session —
    /// IE functions registered, policy tables imported, rules loaded.
    /// This is the seed for serving front ends (`spannerd`) that take
    /// ownership of the session and drive it over the wire; the
    /// pipeline's prepared queries are dropped, re-prepare by name
    /// (e.g. `?Status(d, s)`) on the serving side.
    pub fn into_session(self) -> Session {
        self.session
    }
}

fn parse_modifier_rule(row: &[Value]) -> Result<ModifierRule> {
    let get = |i: usize| -> Result<&str> {
        row.get(i)
            .and_then(Value::as_str)
            .ok_or_else(|| EngineError::IeRuntime {
                function: "modifier_rules".into(),
                msg: format!("column {i} must be a string"),
            })
    };
    let phrase = get(0)?;
    let category = ModifierCategory::from_name(get(1)?).ok_or_else(|| EngineError::IeRuntime {
        function: "modifier_rules".into(),
        msg: format!("unknown category {:?}", get(1).unwrap_or_default()),
    })?;
    let direction = match get(2)? {
        "forward" => ModifierDirection::Forward,
        "backward" => ModifierDirection::Backward,
        "bidirectional" => ModifierDirection::Bidirectional,
        "terminate" => ModifierDirection::Terminate,
        "pseudo" => ModifierDirection::Pseudo,
        other => {
            return Err(EngineError::IeRuntime {
                function: "modifier_rules".into(),
                msg: format!("unknown direction {other:?}"),
            })
        }
    };
    // Scope 0 encodes "unbounded" in the CSV.
    let max_scope = row
        .get(3)
        .and_then(Value::as_int)
        .filter(|&n| n > 0)
        .map(|n| n as usize);
    Ok(ModifierRule::new(phrase, category, direction, max_scope))
}

/// Convenience: classify a corpus with a fresh pipeline.
pub fn classify_corpus(docs: &[CorpusDoc]) -> Result<Vec<DocumentResult>> {
    SpannerPipeline::new()?.classify_corpus(docs)
}
