//! The Python-IE-function analogue: thin wrappers around the NLP library
//! registered as Spannerlog IE functions.
//!
//! Table 1 counts 93 lines of "Python IE Functions" in the rewrite —
//! this module is their Rust counterpart: each function is a few lines
//! of adapter code around a library call, with no pipeline logic.

use spannerlib_core::{Span, Value};
use spannerlib_nlp::sections::detect_sections;
use spannerlib_nlp::sentences::split_sentences;
use spannerlib_nlp::tokenizer::tokenize;
use spannerlib_nlp::{ContextEngine, PhraseMatcher};
use spannerlog_engine::Session;
use std::sync::Arc;

/// Registers the four IE functions the rule file uses:
/// `sents`, `note_sections`, `mentions`, `assertions`.
pub fn register_ie_functions(
    session: &mut Session,
    targets: Arc<PhraseMatcher>,
    context: Arc<ContextEngine>,
) {
    // sents(text) -> (sentence_span)
    //
    // All four adapters resolve their text argument lazily: the document
    // is only interned once a result span actually needs one, so texts
    // with no sentences/sections/mentions never enter the doc store.
    session.register("sents", Some(1), |args, ctx| {
        let mut arg = ctx.text_arg(&args[0])?;
        let text = arg.shared_text();
        let mut rows = Vec::new();
        for s in split_sentences(&text) {
            let (doc, base) = arg.doc_base(ctx);
            rows.push(vec![Value::Span(Span::new(
                doc,
                base + s.start,
                base + s.end,
            ))]);
        }
        Ok(rows)
    });

    // note_sections(text) -> (section_span, category)
    session.register("note_sections", Some(1), |args, ctx| {
        let mut arg = ctx.text_arg(&args[0])?;
        let text = arg.shared_text();
        let mut rows = Vec::new();
        for s in detect_sections(&text) {
            let (doc, base) = arg.doc_base(ctx);
            rows.push(vec![
                Value::Span(Span::new(doc, base + s.header_start, base + s.body_end)),
                Value::str(s.category),
            ]);
        }
        Ok(rows)
    });

    // mentions(sentence_span) -> (mention_span, label)
    let matcher = targets.clone();
    session.register("mentions", Some(1), move |args, ctx| {
        let mut arg = ctx.text_arg(&args[0])?;
        let text = arg.shared_text();
        let tokens = tokenize(&text);
        let mut rows = Vec::new();
        for m in matcher.find(&tokens, &text) {
            let (doc, base) = arg.doc_base(ctx);
            rows.push(vec![
                Value::Span(Span::new(doc, base + m.start, base + m.end)),
                Value::str(m.label),
            ]);
        }
        Ok(rows)
    });

    // assertions(sentence_span) -> (mention_span, category)
    let matcher = targets;
    let engine = context;
    session.register("assertions", Some(1), move |args, ctx| {
        let mut arg = ctx.text_arg(&args[0])?;
        let text = arg.shared_text();
        let tokens = tokenize(&text);
        let spans: Vec<(usize, usize)> = matcher
            .find(&tokens, &text)
            .into_iter()
            .map(|m| (m.start, m.end))
            .collect();
        let mut rows = Vec::new();
        for assertion in engine.assert_targets(&text, (0, text.len()), &spans) {
            for category in &assertion.categories {
                let (doc, base) = arg.doc_base(ctx);
                rows.push(vec![
                    Value::Span(Span::new(
                        doc,
                        base + assertion.target.0,
                        base + assertion.target.1,
                    )),
                    Value::str(category.name()),
                ]);
            }
        }
        rows.dedup();
        Ok(rows)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::context_rules::build_context_engine;
    use crate::native::target_rules::build_target_matcher;

    fn session() -> Session {
        let mut s = Session::new();
        register_ie_functions(
            &mut s,
            Arc::new(build_target_matcher()),
            Arc::new(build_context_engine()),
        );
        s.run("new T(str)").unwrap();
        s
    }

    #[test]
    fn sents_splits() {
        let mut s = session();
        s.add_fact("T", [Value::str("One here. Two here.")])
            .unwrap();
        s.run("S(x) <- T(t), sents(t) -> (x)").unwrap();
        assert_eq!(s.relation("S").unwrap().len(), 2);
    }

    #[test]
    fn mentions_find_targets_with_labels() {
        let mut s = session();
        s.add_fact("T", [Value::str("patient has covid-19 and fever")])
            .unwrap();
        s.run(r#"M(m) <- T(t), sents(t) -> (x), mentions(x) -> (m, "COVID")"#)
            .unwrap();
        assert_eq!(s.relation("M").unwrap().len(), 1);
    }

    #[test]
    fn assertions_emit_category_rows() {
        let mut s = session();
        s.add_fact("T", [Value::str("Patient denies covid-19 exposure.")])
            .unwrap();
        s.run(r#"A(m, c) <- T(t), sents(t) -> (x), assertions(x) -> (m, c)"#)
            .unwrap();
        let rel = s.relation("A").unwrap();
        let cats: Vec<String> = rel
            .sorted_tuples()
            .iter()
            .map(|t| t[1].as_str().unwrap().to_string())
            .collect();
        assert!(cats.contains(&"negated".to_string()));
    }

    #[test]
    fn note_sections_categorize() {
        let mut s = session();
        s.add_fact(
            "T",
            [Value::str("Family History: none\nAssessment/Plan: rest\n")],
        )
        .unwrap();
        s.run("Sec(c) <- T(t), note_sections(t) -> (x, c)").unwrap();
        let rel = s.relation("Sec").unwrap();
        assert_eq!(rel.len(), 2);
    }
}
