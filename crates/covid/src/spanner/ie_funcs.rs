//! The Python-IE-function analogue: thin wrappers around the NLP library
//! registered as Spannerlog IE functions.
//!
//! Table 1 counts 93 lines of "Python IE Functions" in the rewrite —
//! this module is their Rust counterpart: each function is a few lines
//! of adapter code around a library call, with no pipeline logic.

use spannerlib_core::{Span, Value};
use spannerlib_nlp::sections::detect_sections;
use spannerlib_nlp::sentences::split_sentences;
use spannerlib_nlp::tokenizer::tokenize;
use spannerlib_nlp::{ContextEngine, PhraseMatcher};
use spannerlog_engine::Session;
use std::sync::Arc;

/// Registers the four IE functions the rule file uses:
/// `sents`, `note_sections`, `mentions`, `assertions`.
pub fn register_ie_functions(
    session: &mut Session,
    targets: Arc<PhraseMatcher>,
    context: Arc<ContextEngine>,
) {
    // sents(text) -> (sentence_span)
    session.register("sents", Some(1), |args, ctx| {
        let (text, doc, base) = ctx.text_argument(&args[0])?;
        Ok(split_sentences(&text)
            .into_iter()
            .map(|s| vec![Value::Span(Span::new(doc, base + s.start, base + s.end))])
            .collect())
    });

    // note_sections(text) -> (section_span, category)
    session.register("note_sections", Some(1), |args, ctx| {
        let (text, doc, base) = ctx.text_argument(&args[0])?;
        Ok(detect_sections(&text)
            .into_iter()
            .map(|s| {
                vec![
                    Value::Span(Span::new(doc, base + s.header_start, base + s.body_end)),
                    Value::str(s.category),
                ]
            })
            .collect())
    });

    // mentions(sentence_span) -> (mention_span, label)
    let matcher = targets.clone();
    session.register("mentions", Some(1), move |args, ctx| {
        let (text, doc, base) = ctx.text_argument(&args[0])?;
        let tokens = tokenize(&text);
        Ok(matcher
            .find(&tokens, &text)
            .into_iter()
            .map(|m| {
                vec![
                    Value::Span(Span::new(doc, base + m.start, base + m.end)),
                    Value::str(m.label),
                ]
            })
            .collect())
    });

    // assertions(sentence_span) -> (mention_span, category)
    let matcher = targets;
    let engine = context;
    session.register("assertions", Some(1), move |args, ctx| {
        let (text, doc, base) = ctx.text_argument(&args[0])?;
        let tokens = tokenize(&text);
        let spans: Vec<(usize, usize)> = matcher
            .find(&tokens, &text)
            .into_iter()
            .map(|m| (m.start, m.end))
            .collect();
        let mut rows = Vec::new();
        for assertion in engine.assert_targets(&text, (0, text.len()), &spans) {
            for category in &assertion.categories {
                rows.push(vec![
                    Value::Span(Span::new(
                        doc,
                        base + assertion.target.0,
                        base + assertion.target.1,
                    )),
                    Value::str(category.name()),
                ]);
            }
        }
        rows.dedup();
        Ok(rows)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::context_rules::build_context_engine;
    use crate::native::target_rules::build_target_matcher;

    fn session() -> Session {
        let mut s = Session::new();
        register_ie_functions(
            &mut s,
            Arc::new(build_target_matcher()),
            Arc::new(build_context_engine()),
        );
        s.run("new T(str)").unwrap();
        s
    }

    #[test]
    fn sents_splits() {
        let mut s = session();
        s.add_fact("T", [Value::str("One here. Two here.")])
            .unwrap();
        s.run("S(x) <- T(t), sents(t) -> (x)").unwrap();
        assert_eq!(s.relation("S").unwrap().len(), 2);
    }

    #[test]
    fn mentions_find_targets_with_labels() {
        let mut s = session();
        s.add_fact("T", [Value::str("patient has covid-19 and fever")])
            .unwrap();
        s.run(r#"M(m) <- T(t), sents(t) -> (x), mentions(x) -> (m, "COVID")"#)
            .unwrap();
        assert_eq!(s.relation("M").unwrap().len(), 1);
    }

    #[test]
    fn assertions_emit_category_rows() {
        let mut s = session();
        s.add_fact("T", [Value::str("Patient denies covid-19 exposure.")])
            .unwrap();
        s.run(r#"A(m, c) <- T(t), sents(t) -> (x), assertions(x) -> (m, c)"#)
            .unwrap();
        let rel = s.relation("A").unwrap();
        let cats: Vec<String> = rel
            .sorted_tuples()
            .iter()
            .map(|t| t[1].as_str().unwrap().to_string())
            .collect();
        assert!(cats.contains(&"negated".to_string()));
    }

    #[test]
    fn note_sections_categorize() {
        let mut s = session();
        s.add_fact(
            "T",
            [Value::str("Family History: none\nAssessment/Plan: rest\n")],
        )
        .unwrap();
        s.run("Sec(c) <- T(t), note_sections(t) -> (x, c)").unwrap();
        let rel = s.relation("Sec").unwrap();
        assert_eq!(rel.len(), 2);
    }
}
