//! # spannerlib-covid
//!
//! The paper's §4.2 case study, reproduced end to end: a rule-based
//! clinical NLP pipeline that classifies patients' COVID-19 status from
//! free-text notes (after Chapman et al. 2020, the VA surveillance
//! system), implemented **twice**:
//!
//! * [`native`] — the *imperative* implementation: one Rust module tree
//!   where target lexicons, ConText modifier rules, section policies, and
//!   classification logic are all constants and control flow in code,
//!   structured the way the original 4335-line Python system was.
//! * [`spanner`] — the *SpannerLib rewrite*: a thin driver that registers
//!   three IE functions (sentence splitting, target matching, assertion),
//!   loads the lexicons from CSV files ("code as data"), and expresses
//!   the entire orchestration as Spannerlog rules (`rules/covid.slog`).
//!
//! Both implementations compute the same classification — property- and
//! corpus-tested — so the lines-of-code comparison between them
//! ([`loc`], reproducing the paper's **Table 1**) compares equivalent
//! functionality.
//!
//! The input corpus is synthetic ([`corpus`]): the VA notes are not
//! public, so a seeded generator produces clinical-style notes from
//! templates with known gold labels, exercising every assertion path the
//! pipeline distinguishes (positive, negated, hypothetical, historical,
//! family, uncertain, unmodified, no-mention).

pub mod artifacts;
pub mod classify;
pub mod corpus;
pub mod loc;
pub mod native;
pub mod spanner;

pub use classify::{CovidStatus, DocumentResult, MentionEvidence};
pub use corpus::{generate_corpus, CorpusDoc, MentionKind};
