//! Renders the `data/*.csv` artifacts from the canonical inline
//! configuration in [`crate::native`] — the single source of truth for
//! both pipelines' configuration. The `regen_data` binary writes these
//! to disk; the unit test below keeps every checked-in file in sync by
//! construction.

use crate::native::context_rules::MODIFIER_TABLE;
use crate::native::document_classifier::policy_rows as modifier_policy_rows;
use crate::native::section_rules::policy_rows as section_policy_rows;
use crate::native::target_rules::lexicon_rows;

/// Renders all four CSVs as `(file_name, content)` pairs.
pub fn rendered_files() -> Vec<(&'static str, String)> {
    let mut targets = String::from("phrase,label\n");
    for (phrase, label) in lexicon_rows() {
        targets.push_str(&format!("{phrase},{label}\n"));
    }

    let mut modifier_rules = String::from("phrase,category,direction,max_scope\n");
    for (phrase, category, direction, scope) in MODIFIER_TABLE {
        modifier_rules.push_str(&format!("{phrase},{category},{direction},{scope}\n"));
    }

    let mut sections = String::from("category,policy\n");
    for (category, policy) in section_policy_rows() {
        sections.push_str(&format!("{category},{policy}\n"));
    }

    let mut modifiers = String::from("category,policy\n");
    for (category, policy) in modifier_policy_rows() {
        modifiers.push_str(&format!("{category},{policy}\n"));
    }

    vec![
        ("covid_targets.csv", targets),
        ("modifier_rules.csv", modifier_rules),
        ("section_policies.csv", sections),
        ("modifier_policies.csv", modifiers),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every checked-in CSV must equal this generator's output — run
    /// `cargo run -p spannerlib-covid --bin regen_data` after changing
    /// either side. Covers all four files (the agreement suite only
    /// spot-checks two).
    #[test]
    fn checked_in_csvs_match_generator() {
        let checked_in: &[(&str, &str)] = &[
            ("covid_targets.csv", crate::spanner::TARGETS_CSV),
            ("modifier_rules.csv", crate::spanner::MODIFIER_RULES_CSV),
            ("section_policies.csv", crate::spanner::SECTION_POLICIES_CSV),
            (
                "modifier_policies.csv",
                crate::spanner::MODIFIER_POLICIES_CSV,
            ),
        ];
        let rendered = rendered_files();
        assert_eq!(rendered.len(), checked_in.len());
        for ((name, content), (expected_name, expected)) in rendered.iter().zip(checked_in) {
            assert_eq!(name, expected_name);
            assert_eq!(
                content, expected,
                "{name} is stale — re-run `cargo run -p spannerlib-covid --bin regen_data`"
            );
        }
    }
}
