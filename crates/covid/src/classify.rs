//! Shared classification vocabulary for both pipeline implementations.
//!
//! The document-level decision procedure (identical in both pipelines,
//! and mirrored by the corpus generator's gold labeling):
//!
//! 1. A COVID mention is **ignored** when it sits in an ignored section
//!    (family/social history) or carries an ignoring modifier
//!    (hypothetical, historical, family experiencer).
//! 2. Among the surviving mentions, **negation beats positive assertion
//!    on the same mention**; a mention with neither negation nor positive
//!    assertion counts as *uncertain* (explicitly `uncertain`-modified or
//!    wholly unmodified).
//! 3. Document status: `Positive` if any positively-asserted mention
//!    survives; else `Uncertain` if any uncertain mention survives; else
//!    `Negative` if any negated mention survives; else `Unknown`.

use std::fmt;

/// Document-level COVID-19 status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CovidStatus {
    /// At least one surviving positively-asserted mention.
    Positive,
    /// No positive, but a surviving uncertain/unmodified mention.
    Uncertain,
    /// Only negated mentions survive.
    Negative,
    /// No relevant mention at all.
    Unknown,
}

impl CovidStatus {
    /// Stable lowercase name, used in relations and CSV.
    pub fn name(&self) -> &'static str {
        match self {
            CovidStatus::Positive => "positive",
            CovidStatus::Uncertain => "uncertain",
            CovidStatus::Negative => "negative",
            CovidStatus::Unknown => "unknown",
        }
    }

    /// Parses a stable name.
    pub fn from_name(s: &str) -> Option<CovidStatus> {
        Some(match s {
            "positive" => CovidStatus::Positive,
            "uncertain" => CovidStatus::Uncertain,
            "negative" => CovidStatus::Negative,
            "unknown" => CovidStatus::Unknown,
            _ => return None,
        })
    }
}

impl fmt::Display for CovidStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Evidence class of one surviving mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MentionEvidence {
    /// Positively asserted ("tested positive for covid-19").
    Positive,
    /// Negated ("denies covid-19").
    Negated,
    /// Uncertain or unmodified.
    Uncertain,
    /// Ignored (section policy or ignoring modifier).
    Ignored,
}

/// Per-document pipeline output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocumentResult {
    /// Document id.
    pub doc_id: String,
    /// Final classification.
    pub status: CovidStatus,
    /// Surviving mention evidences, as `(start, end, evidence)` byte
    /// spans into the note text.
    pub mentions: Vec<(usize, usize, MentionEvidence)>,
}

/// Folds mention evidences into the document status (step 3 above).
pub fn combine_evidence(evidences: impl IntoIterator<Item = MentionEvidence>) -> CovidStatus {
    let mut has_pos = false;
    let mut has_unc = false;
    let mut has_neg = false;
    for e in evidences {
        match e {
            MentionEvidence::Positive => has_pos = true,
            MentionEvidence::Uncertain => has_unc = true,
            MentionEvidence::Negated => has_neg = true,
            MentionEvidence::Ignored => {}
        }
    }
    if has_pos {
        CovidStatus::Positive
    } else if has_unc {
        CovidStatus::Uncertain
    } else if has_neg {
        CovidStatus::Negative
    } else {
        CovidStatus::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in [
            CovidStatus::Positive,
            CovidStatus::Uncertain,
            CovidStatus::Negative,
            CovidStatus::Unknown,
        ] {
            assert_eq!(CovidStatus::from_name(s.name()), Some(s));
        }
        assert_eq!(CovidStatus::from_name("bogus"), None);
    }

    #[test]
    fn precedence_positive_over_everything() {
        let status = combine_evidence([
            MentionEvidence::Negated,
            MentionEvidence::Positive,
            MentionEvidence::Uncertain,
        ]);
        assert_eq!(status, CovidStatus::Positive);
    }

    #[test]
    fn uncertain_beats_negative() {
        let status = combine_evidence([MentionEvidence::Negated, MentionEvidence::Uncertain]);
        assert_eq!(status, CovidStatus::Uncertain);
    }

    #[test]
    fn only_negated_is_negative() {
        assert_eq!(
            combine_evidence([MentionEvidence::Negated]),
            CovidStatus::Negative
        );
    }

    #[test]
    fn ignored_contributes_nothing() {
        assert_eq!(
            combine_evidence([MentionEvidence::Ignored]),
            CovidStatus::Unknown
        );
        assert_eq!(combine_evidence([]), CovidStatus::Unknown);
    }
}
