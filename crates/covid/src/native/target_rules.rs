//! Target concept lexicon, inlined as code.
//!
//! In the original pipeline the equivalent of this module was a Python
//! file of `TargetRule(...)` constructor calls — concept configuration
//! living inside the source tree. The SpannerLib rewrite moves the same
//! content to `data/covid_targets.csv`; a test in `spanner::ie_funcs`
//! asserts the two stay in sync.

use spannerlib_nlp::PhraseMatcher;

/// Label for COVID-19 concepts — the label classification tracks.
pub const COVID_LABEL: &str = "COVID";

/// Label for respiratory symptom concepts (extracted but not classified;
/// the original pipeline tracked them for surveillance statistics).
pub const SYMPTOM_LABEL: &str = "SYMPTOM";

/// Label for other respiratory diagnoses.
pub const OTHER_DX_LABEL: &str = "OTHER_DX";

/// COVID-19 concept phrases.
pub const COVID_PHRASES: &[&str] = &[
    "covid-19",
    "covid19",
    "covid",
    "coronavirus",
    "sars-cov-2",
    "sars cov 2",
    "sars-cov2",
    "novel coronavirus",
    "corona virus",
    "covid-19 infection",
    "covid-19 pneumonia",
    "covid-19 illness",
    "covid-19 disease",
    "covid pneumonia",
    "coronavirus infection",
    "coronavirus disease",
    "coronavirus disease 2019",
    "covid-like illness",
    "2019-ncov",
    "ncov-2019",
];

/// Respiratory symptom phrases.
pub const SYMPTOM_PHRASES: &[&str] = &[
    "fever",
    "high fever",
    "low grade fever",
    "subjective fever",
    "febrile",
    "cough",
    "dry cough",
    "productive cough",
    "persistent cough",
    "shortness of breath",
    "dyspnea",
    "difficulty breathing",
    "trouble breathing",
    "sore throat",
    "throat pain",
    "fatigue",
    "malaise",
    "weakness",
    "myalgia",
    "muscle aches",
    "body aches",
    "loss of taste",
    "loss of smell",
    "anosmia",
    "ageusia",
    "chills",
    "rigors",
    "headache",
    "congestion",
    "nasal congestion",
    "runny nose",
    "rhinorrhea",
    "nausea",
    "vomiting",
    "diarrhea",
    "abdominal pain",
    "chest pain",
    "chest tightness",
    "wheezing",
    "hypoxia",
    "low oxygen saturation",
    "tachypnea",
    "sneezing",
    "night sweats",
];

/// Other respiratory diagnoses tracked by the original system.
pub const OTHER_DX_PHRASES: &[&str] = &[
    "influenza",
    "influenza a",
    "influenza b",
    "flu",
    "pneumonia",
    "bacterial pneumonia",
    "viral pneumonia",
    "aspiration pneumonia",
    "community acquired pneumonia",
    "bronchitis",
    "acute bronchitis",
    "bronchiolitis",
    "asthma",
    "asthma exacerbation",
    "copd",
    "copd exacerbation",
    "respiratory failure",
    "acute respiratory failure",
    "ards",
    "acute respiratory distress syndrome",
    "upper respiratory infection",
    "uri",
    "rsv",
    "respiratory syncytial virus",
    "strep throat",
    "streptococcal pharyngitis",
    "sinusitis",
    "common cold",
    "pertussis",
    "whooping cough",
    "tuberculosis",
    "pulmonary embolism",
];

/// Builds the compiled target matcher from the inline lexicon.
pub fn build_target_matcher() -> PhraseMatcher {
    let mut matcher = PhraseMatcher::new();
    matcher.add_all(COVID_LABEL, COVID_PHRASES.iter().copied());
    matcher.add_all(SYMPTOM_LABEL, SYMPTOM_PHRASES.iter().copied());
    matcher.add_all(OTHER_DX_LABEL, OTHER_DX_PHRASES.iter().copied());
    matcher
}

/// The full lexicon as `(phrase, label)` rows — the canonical content
/// from which `data/covid_targets.csv` is generated.
pub fn lexicon_rows() -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for p in COVID_PHRASES {
        rows.push((p.to_string(), COVID_LABEL.to_string()));
    }
    for p in SYMPTOM_PHRASES {
        rows.push((p.to_string(), SYMPTOM_LABEL.to_string()));
    }
    for p in OTHER_DX_PHRASES {
        rows.push((p.to_string(), OTHER_DX_LABEL.to_string()));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_nlp::tokenizer::tokenize;

    #[test]
    fn matcher_loads_all_phrases() {
        let m = build_target_matcher();
        assert_eq!(
            m.len(),
            COVID_PHRASES.len() + SYMPTOM_PHRASES.len() + OTHER_DX_PHRASES.len()
        );
    }

    #[test]
    fn covid_phrases_match_in_context() {
        let m = build_target_matcher();
        for (text, expect) in [
            ("patient has covid-19 today", "covid-19"),
            ("positive for sars-cov-2 rna", "sars-cov-2"),
            ("novel coronavirus detected", "novel coronavirus"),
        ] {
            let tokens = tokenize(text);
            let found = m.find(&tokens, text);
            assert!(
                found
                    .iter()
                    .any(|f| f.label == COVID_LABEL && &text[f.start..f.end] == expect),
                "expected {expect:?} in {text:?}, got {found:?}"
            );
        }
    }

    #[test]
    fn labels_are_disjoint() {
        let rows = lexicon_rows();
        let mut seen = std::collections::HashMap::new();
        for (phrase, label) in rows {
            if let Some(prev) = seen.insert(phrase.clone(), label.clone()) {
                assert_eq!(prev, label, "phrase {phrase:?} listed under two labels");
            }
        }
    }

    #[test]
    fn phrases_are_lowercase() {
        for (p, _) in lexicon_rows() {
            assert_eq!(p, p.to_lowercase());
        }
    }
}
