//! Surveillance reporting — the imperative aggregation code.
//!
//! The original system produced national surveillance statistics from
//! per-document results: counts per status, per evidence class, and the
//! most frequent concept mentions. In the imperative implementation this
//! is explicit fold-and-format code below; in the SpannerLib rewrite the
//! same numbers fall out of two aggregation rules
//! (`StatusCount(s, count(d)) <- Status(d, s)` etc.) — a direct
//! illustration of the paper's §3.1 aggregation feature.

use crate::classify::{CovidStatus, DocumentResult, MentionEvidence};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregated surveillance statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SurveillanceReport {
    /// Number of documents processed.
    pub total_documents: usize,
    /// Documents per status.
    pub by_status: BTreeMap<CovidStatus, usize>,
    /// Surviving mentions per evidence class.
    pub by_evidence: BTreeMap<&'static str, usize>,
}

impl SurveillanceReport {
    /// Builds the report from per-document results.
    pub fn build(results: &[DocumentResult]) -> SurveillanceReport {
        let mut report = SurveillanceReport {
            total_documents: results.len(),
            ..Default::default()
        };
        for r in results {
            *report.by_status.entry(r.status).or_insert(0) += 1;
            for &(_, _, evidence) in &r.mentions {
                let key = match evidence {
                    MentionEvidence::Positive => "positive",
                    MentionEvidence::Negated => "negated",
                    MentionEvidence::Uncertain => "uncertain",
                    MentionEvidence::Ignored => continue,
                };
                *report.by_evidence.entry(key).or_insert(0) += 1;
            }
        }
        report
    }

    /// Documents with the given status.
    pub fn count(&self, status: CovidStatus) -> usize {
        self.by_status.get(&status).copied().unwrap_or(0)
    }

    /// Positivity rate among documents with a determinate status.
    pub fn positivity_rate(&self) -> f64 {
        let pos = self.count(CovidStatus::Positive);
        let neg = self.count(CovidStatus::Negative);
        if pos + neg == 0 {
            return 0.0;
        }
        pos as f64 / (pos + neg) as f64
    }
}

impl fmt::Display for SurveillanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "COVID-19 surveillance report")?;
        writeln!(f, "  documents: {}", self.total_documents)?;
        for (status, n) in &self.by_status {
            writeln!(f, "  status {:<10} {n}", status.name())?;
        }
        for (evidence, n) in &self.by_evidence {
            writeln!(f, "  evidence {:<9} {n}", evidence)?;
        }
        write!(
            f,
            "  positivity rate: {:.1}%",
            100.0 * self.positivity_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, status: CovidStatus, evidences: &[MentionEvidence]) -> DocumentResult {
        DocumentResult {
            doc_id: id.to_string(),
            status,
            mentions: evidences.iter().map(|&e| (0, 1, e)).collect(),
        }
    }

    #[test]
    fn counts_statuses_and_evidence() {
        let report = SurveillanceReport::build(&[
            result("a", CovidStatus::Positive, &[MentionEvidence::Positive]),
            result("b", CovidStatus::Negative, &[MentionEvidence::Negated]),
            result("c", CovidStatus::Positive, &[MentionEvidence::Positive]),
            result("d", CovidStatus::Unknown, &[]),
        ]);
        assert_eq!(report.total_documents, 4);
        assert_eq!(report.count(CovidStatus::Positive), 2);
        assert_eq!(report.count(CovidStatus::Negative), 1);
        assert_eq!(report.by_evidence["positive"], 2);
        assert_eq!(report.positivity_rate(), 2.0 / 3.0);
    }

    #[test]
    fn empty_report() {
        let report = SurveillanceReport::build(&[]);
        assert_eq!(report.total_documents, 0);
        assert_eq!(report.positivity_rate(), 0.0);
    }

    #[test]
    fn display_renders_counts() {
        let report = SurveillanceReport::build(&[result("a", CovidStatus::Positive, &[])]);
        let s = report.to_string();
        assert!(s.contains("documents: 1"));
        assert!(s.contains("status positive"));
    }
}
