//! ConText modifier configuration, inlined as code.
//!
//! The original surveillance system declared its complete modifier
//! lexicon as constructor calls in Python source — the classic
//! "configuration living in code" the paper's rewrite eliminates. This
//! module is the Rust counterpart: the full cue table, written out as a
//! constant. The SpannerLib rewrite carries the same table in
//! `data/modifier_rules.csv` (generated from this constant by
//! `regen_data`; a test asserts they stay in sync).

use spannerlib_nlp::{ContextEngine, ModifierCategory, ModifierDirection, ModifierRule};

/// The complete modifier table: `(phrase, category, direction, max_scope)`.
/// `max_scope` 0 means unbounded (sentence edge). Categories/directions
/// use the stable names parsed by [`parse_direction`] and
/// [`ModifierCategory::from_name`].
pub const MODIFIER_TABLE: &[(&str, &str, &str, u32)] = &[
    // --- negated existence: forward ---------------------------------
    ("no", "negated", "forward", 10),
    ("not", "negated", "forward", 10),
    ("denies", "negated", "forward", 10),
    ("denied", "negated", "forward", 10),
    ("negative for", "negated", "forward", 10),
    ("no evidence of", "negated", "forward", 10),
    ("no signs of", "negated", "forward", 10),
    ("no sign of", "negated", "forward", 10),
    ("without", "negated", "forward", 10),
    ("absence of", "negated", "forward", 10),
    ("free of", "negated", "forward", 10),
    ("never had", "negated", "forward", 10),
    ("fails to reveal", "negated", "forward", 10),
    ("test negative", "negated", "forward", 10),
    ("tested negative for", "negated", "forward", 10),
    ("screen negative for", "negated", "forward", 10),
    ("rules out", "negated", "forward", 10),
    ("ruled out for", "negated", "forward", 10),
    ("declines", "negated", "forward", 10),
    ("no new", "negated", "forward", 10),
    ("resolved without", "negated", "forward", 10),
    ("unremarkable for", "negated", "forward", 10),
    ("pcr negative for", "negated", "forward", 8),
    ("antigen negative for", "negated", "forward", 8),
    ("swab negative for", "negated", "forward", 8),
    ("two negative tests for", "negated", "forward", 8),
    // --- negated existence: backward --------------------------------
    ("was ruled out", "negated", "backward", 10),
    ("is ruled out", "negated", "backward", 10),
    ("ruled out", "negated", "backward", 10),
    ("unlikely", "negated", "backward", 10),
    ("not detected", "negated", "backward", 10),
    ("was negative", "negated", "backward", 10),
    ("is negative", "negated", "backward", 10),
    ("came back negative", "negated", "backward", 10),
    // --- positive existence: forward ---------------------------------
    ("confirmed", "positive", "forward", 10),
    ("positive for", "positive", "forward", 10),
    ("diagnosed with", "positive", "forward", 10),
    ("diagnosis of", "positive", "forward", 10),
    ("tested positive for", "positive", "forward", 10),
    ("test positive for", "positive", "forward", 10),
    ("consistent with", "positive", "forward", 10),
    ("evidence of", "positive", "forward", 10),
    ("presents with", "positive", "forward", 10),
    ("presented with", "positive", "forward", 10),
    ("acute", "positive", "forward", 10),
    ("pcr positive for", "positive", "forward", 8),
    ("antigen positive for", "positive", "forward", 8),
    ("swab positive for", "positive", "forward", 8),
    ("rapid test positive for", "positive", "forward", 8),
    ("pcr confirmed", "positive", "forward", 8),
    // --- positive existence: backward --------------------------------
    ("was positive", "positive", "backward", 10),
    ("is positive", "positive", "backward", 10),
    ("came back positive", "positive", "backward", 10),
    ("was confirmed", "positive", "backward", 10),
    ("is confirmed", "positive", "backward", 10),
    ("detected", "positive", "backward", 10),
    ("was detected", "positive", "backward", 10),
    // --- hypothetical: forward ----------------------------------------
    ("if", "hypothetical", "forward", 12),
    ("return if", "hypothetical", "forward", 12),
    ("should", "hypothetical", "forward", 12),
    ("in case of", "hypothetical", "forward", 12),
    ("monitor for", "hypothetical", "forward", 12),
    ("watch for", "hypothetical", "forward", 12),
    ("precautions for", "hypothetical", "forward", 12),
    ("screening for", "hypothetical", "forward", 12),
    ("to be tested for", "hypothetical", "forward", 12),
    ("risk of", "hypothetical", "forward", 12),
    ("risk for", "hypothetical", "forward", 12),
    (
        "concern for possible exposure to",
        "hypothetical",
        "forward",
        12,
    ),
    ("pending", "hypothetical", "forward", 12),
    ("quarantine for", "hypothetical", "forward", 8),
    ("self-quarantine if", "hypothetical", "forward", 10),
    ("isolate if", "hypothetical", "forward", 10),
    ("awaiting results for", "hypothetical", "forward", 8),
    ("awaiting test results for", "hypothetical", "forward", 8),
    ("exposure precautions for", "hypothetical", "forward", 8),
    ("travel screening for", "hypothetical", "forward", 8),
    // --- hypothetical: backward ---------------------------------------
    ("is pending", "hypothetical", "backward", 10),
    ("results pending", "hypothetical", "backward", 10),
    ("will be tested", "hypothetical", "backward", 10),
    // --- historical: forward -------------------------------------------
    ("history of", "historical", "forward", 10),
    ("hx of", "historical", "forward", 10),
    ("past medical history of", "historical", "forward", 10),
    ("previous", "historical", "forward", 10),
    ("prior", "historical", "forward", 10),
    ("in the past", "historical", "forward", 10),
    ("years ago", "historical", "forward", 10),
    ("last year", "historical", "forward", 10),
    ("childhood", "historical", "forward", 10),
    ("previously had", "historical", "forward", 10),
    ("resolved", "historical", "forward", 10),
    // --- historical: backward ------------------------------------------
    ("in the past", "historical", "backward", 10),
    ("years ago", "historical", "backward", 10),
    ("last year", "historical", "backward", 10),
    ("as a child", "historical", "backward", 10),
    ("has resolved", "historical", "backward", 10),
    ("during the first wave", "historical", "backward", 10),
    ("early in the pandemic", "historical", "backward", 10),
    // --- family / other experiencer -------------------------------------
    ("mother", "family", "forward", 12),
    ("father", "family", "forward", 12),
    ("brother", "family", "forward", 12),
    ("sister", "family", "forward", 12),
    ("son", "family", "forward", 12),
    ("daughter", "family", "forward", 12),
    ("wife", "family", "forward", 12),
    ("husband", "family", "forward", 12),
    ("grandmother", "family", "forward", 12),
    ("grandfather", "family", "forward", 12),
    ("aunt", "family", "forward", 12),
    ("uncle", "family", "forward", 12),
    ("cousin", "family", "forward", 12),
    ("family member", "family", "forward", 12),
    ("family members", "family", "forward", 12),
    ("roommate", "family", "forward", 12),
    ("coworker", "family", "forward", 12),
    ("co-worker", "family", "forward", 12),
    ("neighbor", "family", "forward", 12),
    ("spouse", "family", "forward", 12),
    ("partner", "family", "forward", 12),
    ("household contact", "family", "forward", 12),
    ("close contact", "family", "forward", 10),
    ("contact of a patient with", "family", "forward", 10),
    ("caregiver", "family", "forward", 10),
    // --- uncertain: forward ----------------------------------------------
    ("possible", "uncertain", "forward", 10),
    ("possibly", "uncertain", "forward", 10),
    ("probable", "uncertain", "forward", 10),
    ("presumed", "uncertain", "forward", 10),
    ("suspected", "uncertain", "forward", 10),
    ("suspicious for", "uncertain", "forward", 10),
    ("may have", "uncertain", "forward", 10),
    ("might have", "uncertain", "forward", 10),
    ("cannot rule out", "uncertain", "forward", 10),
    ("can't rule out", "uncertain", "forward", 10),
    ("questionable", "uncertain", "forward", 10),
    ("equivocal", "uncertain", "forward", 10),
    ("vs", "uncertain", "forward", 10),
    ("differential includes", "uncertain", "forward", 10),
    ("concerning for", "uncertain", "forward", 8),
    ("worried about", "uncertain", "forward", 8),
    // --- uncertain: backward ----------------------------------------------
    ("is suspected", "uncertain", "backward", 10),
    ("was suspected", "uncertain", "backward", 10),
    ("is questionable", "uncertain", "backward", 10),
    ("not excluded", "uncertain", "backward", 10),
    ("vs covid", "uncertain", "backward", 6),
    // --- pseudo cues (block false matches of shorter cues) ---------------
    ("history of present illness", "uncertain", "pseudo", 0),
    ("hx of present illness", "uncertain", "pseudo", 0),
    ("no increase", "uncertain", "pseudo", 0),
    ("no change", "uncertain", "pseudo", 0),
    ("not certain whether", "uncertain", "pseudo", 0),
    ("not certain if", "uncertain", "pseudo", 0),
    ("gram negative", "uncertain", "pseudo", 0),
    ("without difficulty", "uncertain", "pseudo", 0),
    // --- termination ------------------------------------------------------
    ("but", "uncertain", "terminate", 0),
    ("however", "uncertain", "terminate", 0),
    ("although", "uncertain", "terminate", 0),
    ("though", "uncertain", "terminate", 0),
    ("aside from", "uncertain", "terminate", 0),
    ("except", "uncertain", "terminate", 0),
    ("apart from", "uncertain", "terminate", 0),
    ("other than", "uncertain", "terminate", 0),
    ("which", "uncertain", "terminate", 0),
    ("who", "uncertain", "terminate", 0),
    ("secondary to", "uncertain", "terminate", 0),
];

/// Parses a stable direction name.
pub fn parse_direction(name: &str) -> Option<ModifierDirection> {
    Some(match name {
        "forward" => ModifierDirection::Forward,
        "backward" => ModifierDirection::Backward,
        "bidirectional" => ModifierDirection::Bidirectional,
        "terminate" => ModifierDirection::Terminate,
        "pseudo" => ModifierDirection::Pseudo,
        _ => return None,
    })
}

/// The table as [`ModifierRule`]s.
pub fn modifier_rules() -> Vec<ModifierRule> {
    MODIFIER_TABLE
        .iter()
        .map(|(phrase, cat, dir, scope)| {
            ModifierRule::new(
                phrase,
                ModifierCategory::from_name(cat).expect("table categories are valid"),
                parse_direction(dir).expect("table directions are valid"),
                (*scope > 0).then_some(*scope as usize),
            )
        })
        .collect()
}

/// Builds the full ConText engine from the inline table.
pub fn build_context_engine() -> ContextEngine {
    ContextEngine::new(modifier_rules())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_parses_completely() {
        assert_eq!(modifier_rules().len(), MODIFIER_TABLE.len());
        assert!(MODIFIER_TABLE.len() > 130, "got {}", MODIFIER_TABLE.len());
    }

    #[test]
    fn covid_specific_cue_fires() {
        let engine = build_context_engine();
        let text = "pcr positive for covid-19";
        let target = text.find("covid-19").unwrap();
        let out = engine.assert_targets(text, (0, text.len()), &[(target, target + 8)]);
        assert!(out[0].has(ModifierCategory::PositiveExistence));
    }

    #[test]
    fn pseudo_cue_blocks_header_poisoning() {
        let engine = build_context_engine();
        let text = "History of Present Illness: Patient denies covid-19 exposure.";
        let target = text.find("covid-19").unwrap();
        let out = engine.assert_targets(text, (0, text.len()), &[(target, target + 8)]);
        assert!(out[0].has(ModifierCategory::NegatedExistence));
        assert!(!out[0].has(ModifierCategory::Historical));
    }

    #[test]
    fn phrases_are_lowercase() {
        for (p, ..) in MODIFIER_TABLE {
            assert_eq!(*p, p.to_lowercase());
        }
    }

    #[test]
    fn no_duplicate_phrase_direction_pairs() {
        let mut seen = std::collections::HashSet::new();
        for (p, _, d, _) in MODIFIER_TABLE {
            assert!(seen.insert((*p, *d)), "duplicate ({p}, {d})");
        }
    }

    #[test]
    fn directions_and_categories_valid() {
        for (_, c, d, _) in MODIFIER_TABLE {
            assert!(ModifierCategory::from_name(c).is_some(), "bad category {c}");
            assert!(parse_direction(d).is_some(), "bad direction {d}");
        }
    }
}
