//! Section policies, inlined as code.
//!
//! The original pipeline configured, per clinical section, whether
//! concept mentions inside it may contribute to the patient's own
//! status. The SpannerLib rewrite carries the same table in
//! `data/section_policies.csv`.

/// What a section does to mentions inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionPolicy {
    /// Mentions count normally.
    Keep,
    /// Mentions are not about the patient's current status.
    Ignore,
}

impl SectionPolicy {
    /// Stable name used in the CSV twin.
    pub fn name(&self) -> &'static str {
        match self {
            SectionPolicy::Keep => "keep",
            SectionPolicy::Ignore => "ignore",
        }
    }
}

/// The per-section policy table.
pub const SECTION_POLICIES: &[(&str, SectionPolicy)] = &[
    ("chief_complaint", SectionPolicy::Keep),
    ("history_of_present_illness", SectionPolicy::Keep),
    ("past_medical_history", SectionPolicy::Keep),
    ("family_history", SectionPolicy::Ignore),
    ("social_history", SectionPolicy::Ignore),
    ("medications", SectionPolicy::Keep),
    ("allergies", SectionPolicy::Ignore),
    ("review_of_systems", SectionPolicy::Keep),
    ("physical_exam", SectionPolicy::Keep),
    ("vital_signs", SectionPolicy::Keep),
    ("labs", SectionPolicy::Keep),
    ("imaging", SectionPolicy::Keep),
    ("assessment_plan", SectionPolicy::Keep),
    ("diagnosis", SectionPolicy::Keep),
    ("discharge_instructions", SectionPolicy::Keep),
    ("follow_up", SectionPolicy::Keep),
];

/// The policy for a section category (unknown categories keep mentions).
pub fn policy_for(category: &str) -> SectionPolicy {
    SECTION_POLICIES
        .iter()
        .find(|(c, _)| *c == category)
        .map(|(_, p)| *p)
        .unwrap_or(SectionPolicy::Keep)
}

/// The table as `(category, policy_name)` rows — the canonical content
/// from which `data/section_policies.csv` is generated.
pub fn policy_rows() -> Vec<(String, String)> {
    SECTION_POLICIES
        .iter()
        .map(|(c, p)| (c.to_string(), p.name().to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_history_is_ignored() {
        assert_eq!(policy_for("family_history"), SectionPolicy::Ignore);
        assert_eq!(policy_for("social_history"), SectionPolicy::Ignore);
    }

    #[test]
    fn clinical_sections_keep() {
        assert_eq!(policy_for("assessment_plan"), SectionPolicy::Keep);
        assert_eq!(policy_for("labs"), SectionPolicy::Keep);
    }

    #[test]
    fn unknown_sections_default_to_keep() {
        assert_eq!(policy_for("made_up"), SectionPolicy::Keep);
    }

    #[test]
    fn rows_cover_all_entries() {
        assert_eq!(policy_rows().len(), SECTION_POLICIES.len());
    }
}
