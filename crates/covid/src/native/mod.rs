//! The **imperative** implementation of the COVID-19 classification
//! pipeline — the "Original Code" column of Table 1.
//!
//! Everything the pipeline needs is expressed as Rust code: the target
//! lexicon ([`target_rules`]), the ConText modifier configuration
//! ([`context_rules`]), section handling and policies
//! ([`section_rules`]), mention post-processing ([`postprocess`]), and
//! the document classifier ([`document_classifier`]) — orchestrated
//! imperatively below. This mirrors how the original 4335-line Python
//! system was organized (components configured by constants in code,
//! glued by explicit control flow), which is precisely the style the
//! SpannerLib rewrite replaces with rules and data files.

pub mod context_rules;
pub mod document_classifier;
pub mod postprocess;
pub mod report;
pub mod section_rules;
pub mod target_rules;

use crate::classify::{CovidStatus, DocumentResult};
use crate::corpus::CorpusDoc;
use document_classifier::{classify_mentions, AnalyzedMention};
use spannerlib_nlp::sections::detect_sections;
use spannerlib_nlp::sentences::split_sentences;
use spannerlib_nlp::tokenizer::tokenize;
use spannerlib_nlp::{ContextEngine, PhraseMatcher};

/// The assembled imperative pipeline.
pub struct NativePipeline {
    targets: PhraseMatcher,
    context: ContextEngine,
}

impl Default for NativePipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl NativePipeline {
    /// Builds the pipeline from the inline configuration modules.
    pub fn new() -> Self {
        NativePipeline {
            targets: target_rules::build_target_matcher(),
            context: context_rules::build_context_engine(),
        }
    }

    /// Classifies one note.
    pub fn classify_document(&self, doc_id: &str, text: &str) -> DocumentResult {
        // 1. Structure: sections and sentences.
        let sections = detect_sections(text);
        let sentences = split_sentences(text);

        // 2. Per sentence: find target mentions, run ConText over them.
        let mut analyzed: Vec<AnalyzedMention> = Vec::new();
        for sentence in &sentences {
            let slice = &text[sentence.start..sentence.end];
            let tokens = tokenize(slice);
            let matches = self.targets.find(&tokens, slice);
            if matches.is_empty() {
                continue;
            }
            let target_spans: Vec<(usize, usize)> = matches
                .iter()
                .map(|m| (sentence.start + m.start, sentence.start + m.end))
                .collect();
            let assertions =
                self.context
                    .assert_targets(text, (sentence.start, sentence.end), &target_spans);
            for (m, assertion) in matches.iter().zip(assertions) {
                analyzed.push(AnalyzedMention {
                    start: sentence.start + m.start,
                    end: sentence.start + m.end,
                    label: m.label.clone(),
                    categories: assertion.categories,
                });
            }
        }

        // 3. Post-process: dedupe and order mentions.
        let analyzed = postprocess::normalize_mentions(analyzed);

        // 4. Classify.
        let (status, mentions) = classify_mentions(&analyzed, &sections);
        DocumentResult {
            doc_id: doc_id.to_string(),
            status,
            mentions,
        }
    }

    /// Classifies a whole corpus.
    pub fn classify_corpus(&self, docs: &[CorpusDoc]) -> Vec<DocumentResult> {
        docs.iter()
            .map(|d| self.classify_document(&d.id, &d.text))
            .collect()
    }

    /// Accuracy against gold labels.
    pub fn accuracy(&self, docs: &[CorpusDoc]) -> f64 {
        if docs.is_empty() {
            return 1.0;
        }
        let correct = docs
            .iter()
            .filter(|d| self.classify_document(&d.id, &d.text).status == d.gold)
            .count();
        correct as f64 / docs.len() as f64
    }
}

/// Convenience: classify with a fresh pipeline.
pub fn classify_corpus(docs: &[CorpusDoc]) -> Vec<DocumentResult> {
    NativePipeline::new().classify_corpus(docs)
}

/// Convenience: status of one text.
pub fn classify_text(text: &str) -> CovidStatus {
    NativePipeline::new()
        .classify_document("adhoc", text)
        .status
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate_corpus;

    #[test]
    fn positive_note() {
        let status =
            classify_text("Assessment/Plan: Patient tested positive for covid-19 this morning.\n");
        assert_eq!(status, CovidStatus::Positive);
    }

    #[test]
    fn negated_note() {
        let status =
            classify_text("History of Present Illness: Patient denies covid-19 exposure.\n");
        assert_eq!(status, CovidStatus::Negative);
    }

    #[test]
    fn family_mention_is_ignored() {
        let status = classify_text("Family History: Mother tested positive for covid-19.\n");
        assert_eq!(status, CovidStatus::Unknown);
    }

    #[test]
    fn hypothetical_is_ignored() {
        let status = classify_text("Assessment/Plan: Return if covid-19 symptoms develop.\n");
        assert_eq!(status, CovidStatus::Unknown);
    }

    #[test]
    fn uncertain_note() {
        let status = classify_text("Assessment/Plan: Possible covid-19 infection.\n");
        assert_eq!(status, CovidStatus::Uncertain);
    }

    #[test]
    fn unmodified_mention_is_uncertain() {
        let status = classify_text("Assessment/Plan: Counseling regarding covid-19 provided.\n");
        assert_eq!(status, CovidStatus::Uncertain);
    }

    #[test]
    fn positive_beats_negated_across_mentions() {
        let status = classify_text(
            "History of Present Illness: Patient denies covid-19 exposure.\n\
             Assessment/Plan: Covid-19 test came back positive.\n",
        );
        assert_eq!(status, CovidStatus::Positive);
    }

    #[test]
    fn no_mention_is_unknown() {
        let status = classify_text(
            "Chief Complaint: Routine follow up visit.\n\
             Assessment/Plan: Continue current medications.\n",
        );
        assert_eq!(status, CovidStatus::Unknown);
    }

    #[test]
    fn gold_accuracy_is_high_on_synthetic_corpus() {
        let docs = generate_corpus(200, 11);
        let pipeline = NativePipeline::new();
        let acc = pipeline.accuracy(&docs);
        assert!(acc >= 0.95, "accuracy {acc} below threshold");
    }

    #[test]
    fn results_carry_mention_spans() {
        let pipeline = NativePipeline::new();
        let text = "Assessment/Plan: Confirmed covid-19 infection on admission.\n";
        let result = pipeline.classify_document("d", text);
        assert_eq!(result.mentions.len(), 1);
        let (s, e, _) = result.mentions[0];
        // Longest lexicon phrase wins: "covid-19 infection".
        assert_eq!(&text[s..e], "covid-19 infection");
    }
}
