//! Mention-level evidence derivation and document-level classification.
//!
//! This module is the decision procedure shared (semantically) with the
//! Spannerlog rules in `rules/covid.slog`; the rule file is the
//! declarative transliteration of exactly this logic.

use crate::classify::{combine_evidence, CovidStatus, MentionEvidence};
use crate::native::section_rules::{policy_for, SectionPolicy};
use crate::native::target_rules::COVID_LABEL;
use spannerlib_nlp::sections::Section;
use spannerlib_nlp::ModifierCategory;

/// A target mention with its ConText assertion categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzedMention {
    /// Byte offset of the mention start.
    pub start: usize,
    /// Byte offset one past the mention end.
    pub end: usize,
    /// Target label (`COVID`, `SYMPTOM`, …).
    pub label: String,
    /// Assertion categories from ConText (sorted, deduplicated).
    pub categories: Vec<ModifierCategory>,
}

/// Modifier policy: how each assertion category affects evidence. The
/// CSV twin is `data/modifier_policies.csv`.
pub const MODIFIER_POLICIES: &[(ModifierCategory, &str)] = &[
    (ModifierCategory::NegatedExistence, "negative"),
    (ModifierCategory::PositiveExistence, "positive"),
    (ModifierCategory::Hypothetical, "ignore"),
    (ModifierCategory::Historical, "ignore"),
    (ModifierCategory::FamilyExperiencer, "ignore"),
    (ModifierCategory::Uncertain, "uncertain"),
];

/// The policy name for a category.
pub fn modifier_policy(category: ModifierCategory) -> &'static str {
    MODIFIER_POLICIES
        .iter()
        .find(|(c, _)| *c == category)
        .map(|(_, p)| *p)
        .expect("every category has a policy")
}

/// The policy table as `(category_name, policy)` rows — canonical
/// content for `data/modifier_policies.csv`.
pub fn policy_rows() -> Vec<(String, String)> {
    MODIFIER_POLICIES
        .iter()
        .map(|(c, p)| (c.name().to_string(), p.to_string()))
        .collect()
}

/// Derives the evidence class of a single COVID mention.
///
/// Precedence (must match `rules/covid.slog`):
/// ignored-section → ignore; ignoring modifier → ignore; negation →
/// negative; positive assertion → positive; uncertain modifier or no
/// modifier at all → uncertain.
pub fn mention_evidence(mention: &AnalyzedMention, sections: &[Section]) -> MentionEvidence {
    // Section policy: the containing section must not be ignored.
    let in_ignored_section = sections.iter().any(|sec| {
        sec.header_start <= mention.start
            && mention.end <= sec.body_end
            && policy_for(&sec.category) == SectionPolicy::Ignore
    });
    if in_ignored_section {
        return MentionEvidence::Ignored;
    }
    let has = |policy: &str| {
        mention
            .categories
            .iter()
            .any(|c| modifier_policy(*c) == policy)
    };
    if has("ignore") {
        MentionEvidence::Ignored
    } else if has("negative") {
        MentionEvidence::Negated
    } else if has("positive") {
        MentionEvidence::Positive
    } else {
        // Explicit `uncertain` modifier, or no modifier at all.
        MentionEvidence::Uncertain
    }
}

/// Classifies a document from its analyzed mentions.
///
/// Returns the status plus the surviving COVID mentions (ignored ones
/// included with their `Ignored` evidence for inspection parity with the
/// Spannerlog `Evidence` relation, which omits them — callers that
/// compare must filter).
pub fn classify_mentions(
    mentions: &[AnalyzedMention],
    sections: &[Section],
) -> (CovidStatus, Vec<(usize, usize, MentionEvidence)>) {
    let covid: Vec<&AnalyzedMention> = mentions.iter().filter(|m| m.label == COVID_LABEL).collect();
    let evidences: Vec<(usize, usize, MentionEvidence)> = covid
        .iter()
        .map(|m| (m.start, m.end, mention_evidence(m, sections)))
        .filter(|(_, _, e)| *e != MentionEvidence::Ignored)
        .collect();
    let status = combine_evidence(evidences.iter().map(|&(_, _, e)| e));
    (status, evidences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_nlp::sections::detect_sections;

    fn mention(start: usize, end: usize, cats: &[ModifierCategory]) -> AnalyzedMention {
        AnalyzedMention {
            start,
            end,
            label: COVID_LABEL.to_string(),
            categories: cats.to_vec(),
        }
    }

    #[test]
    fn policy_table_is_total() {
        for c in [
            ModifierCategory::NegatedExistence,
            ModifierCategory::PositiveExistence,
            ModifierCategory::Hypothetical,
            ModifierCategory::Historical,
            ModifierCategory::FamilyExperiencer,
            ModifierCategory::Uncertain,
        ] {
            let _ = modifier_policy(c); // must not panic
        }
        assert_eq!(policy_rows().len(), 6);
    }

    #[test]
    fn negation_beats_positive_on_same_mention() {
        let m = mention(
            0,
            5,
            &[
                ModifierCategory::PositiveExistence,
                ModifierCategory::NegatedExistence,
            ],
        );
        assert_eq!(mention_evidence(&m, &[]), MentionEvidence::Negated);
    }

    #[test]
    fn ignoring_modifier_beats_everything() {
        let m = mention(
            0,
            5,
            &[
                ModifierCategory::PositiveExistence,
                ModifierCategory::FamilyExperiencer,
            ],
        );
        assert_eq!(mention_evidence(&m, &[]), MentionEvidence::Ignored);
    }

    #[test]
    fn unmodified_is_uncertain() {
        let m = mention(0, 5, &[]);
        assert_eq!(mention_evidence(&m, &[]), MentionEvidence::Uncertain);
    }

    #[test]
    fn ignored_section_suppresses() {
        let text = "Family History: covid-19 in mother.\n";
        let sections = detect_sections(text);
        let start = text.find("covid-19").unwrap();
        let m = mention(start, start + 8, &[ModifierCategory::PositiveExistence]);
        assert_eq!(mention_evidence(&m, &sections), MentionEvidence::Ignored);
    }

    #[test]
    fn classification_filters_non_covid_labels() {
        let m = AnalyzedMention {
            start: 0,
            end: 5,
            label: "SYMPTOM".to_string(),
            categories: vec![ModifierCategory::PositiveExistence],
        };
        let (status, evidences) = classify_mentions(&[m], &[]);
        assert_eq!(status, CovidStatus::Unknown);
        assert!(evidences.is_empty());
    }
}
