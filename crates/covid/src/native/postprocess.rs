//! Mention post-processing: deduplication and deterministic ordering.
//!
//! The original pipeline had a post-processing stage that cleaned up the
//! raw matcher output before classification; the parts that affect
//! classification semantics (duplicate suppression, stable ordering) are
//! reproduced here so both implementations see the same mention stream.

use crate::native::document_classifier::AnalyzedMention;

/// Deduplicates mentions by `(span, label)` — a phrase listed in two
/// lexicon variants may fire twice on the same tokens — merging their
/// assertion categories, and sorts by position.
pub fn normalize_mentions(mentions: Vec<AnalyzedMention>) -> Vec<AnalyzedMention> {
    let mut out: Vec<AnalyzedMention> = Vec::with_capacity(mentions.len());
    for m in mentions {
        if let Some(existing) = out
            .iter_mut()
            .find(|e| e.start == m.start && e.end == m.end && e.label == m.label)
        {
            for c in m.categories {
                if !existing.categories.contains(&c) {
                    existing.categories.push(c);
                }
            }
            existing.categories.sort();
        } else {
            out.push(m);
        }
    }
    out.sort_by_key(|m| (m.start, m.end, m.label.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_nlp::ModifierCategory;

    fn m(start: usize, end: usize, label: &str, cats: &[ModifierCategory]) -> AnalyzedMention {
        AnalyzedMention {
            start,
            end,
            label: label.to_string(),
            categories: cats.to_vec(),
        }
    }

    #[test]
    fn duplicates_merge_categories() {
        let out = normalize_mentions(vec![
            m(0, 5, "COVID", &[ModifierCategory::NegatedExistence]),
            m(0, 5, "COVID", &[ModifierCategory::Historical]),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].categories.len(), 2);
    }

    #[test]
    fn distinct_labels_kept_separate() {
        let out = normalize_mentions(vec![m(0, 5, "COVID", &[]), m(0, 5, "SYMPTOM", &[])]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn output_is_position_sorted() {
        let out = normalize_mentions(vec![m(10, 15, "A", &[]), m(0, 5, "B", &[])]);
        assert_eq!(out[0].start, 0);
        assert_eq!(out[1].start, 10);
    }
}
