//! Regenerates the `data/*.csv` artifacts from the canonical inline
//! configuration in `native/` — keeping "code" (native pipeline) and
//! "data" (SpannerLib pipeline) in sync by construction. Unit tests in
//! the crate assert the checked-in files match this generator's output.
//!
//! Usage: `cargo run -p spannerlib-covid --bin regen_data`

use spannerlib_covid::native::context_rules::MODIFIER_TABLE;
use spannerlib_covid::native::document_classifier::policy_rows as modifier_policy_rows;
use spannerlib_covid::native::section_rules::policy_rows as section_policy_rows;
use spannerlib_covid::native::target_rules::lexicon_rows;
use std::fs;
use std::path::Path;

/// Renders all four CSVs as `(file_name, content)` pairs.
pub fn rendered_files() -> Vec<(&'static str, String)> {
    let mut targets = String::from("phrase,label\n");
    for (phrase, label) in lexicon_rows() {
        targets.push_str(&format!("{phrase},{label}\n"));
    }

    let mut modifier_rules = String::from("phrase,category,direction,max_scope\n");
    for (phrase, category, direction, scope) in MODIFIER_TABLE {
        modifier_rules.push_str(&format!("{phrase},{category},{direction},{scope}\n"));
    }

    let mut sections = String::from("category,policy\n");
    for (category, policy) in section_policy_rows() {
        sections.push_str(&format!("{category},{policy}\n"));
    }

    let mut modifiers = String::from("category,policy\n");
    for (category, policy) in modifier_policy_rows() {
        modifiers.push_str(&format!("{category},{policy}\n"));
    }

    vec![
        ("covid_targets.csv", targets),
        ("modifier_rules.csv", modifier_rules),
        ("section_policies.csv", sections),
        ("modifier_policies.csv", modifiers),
    ]
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("data");
    fs::create_dir_all(&dir).expect("create data dir");
    for (name, content) in rendered_files() {
        let path = dir.join(name);
        fs::write(&path, &content).expect("write csv");
        println!("wrote {} ({} bytes)", path.display(), content.len());
    }
}
