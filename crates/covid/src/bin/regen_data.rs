//! Regenerates the `data/*.csv` artifacts from the canonical inline
//! configuration in `native/` — keeping "code" (native pipeline) and
//! "data" (SpannerLib pipeline) in sync by construction. The
//! `artifacts::tests::checked_in_csvs_match_generator` unit test asserts
//! the checked-in files match this generator's output.
//!
//! Usage: `cargo run -p spannerlib-covid --bin regen_data`

use spannerlib_covid::artifacts::rendered_files;
use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("data");
    fs::create_dir_all(&dir).expect("create data dir");
    for (name, content) in rendered_files() {
        let path = dir.join(name);
        fs::write(&path, &content).expect("write csv");
        println!("wrote {} ({} bytes)", path.display(), content.len());
    }
}
