//! Synthetic clinical-note corpus with gold labels.
//!
//! The VA notes behind the original pipeline are not public, so the
//! corpus is generated: seeded templates compose clinical-style notes
//! section by section, embedding COVID mentions of known *kinds*
//! (positively asserted, negated, hypothetical, historical, family,
//! uncertain, unmodified). Every template uses cue phrases from the
//! ConText rule set, so the intended assertion is recoverable by the
//! pipelines, and the gold label falls out of the same evidence-
//! combination procedure both pipelines implement — which is what makes
//! end-to-end accuracy measurable.

use crate::classify::{combine_evidence, CovidStatus, MentionEvidence};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The kind of COVID mention a template plants in a note.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MentionKind {
    /// "tested positive for covid-19" and friends.
    Positive,
    /// "denies covid-19", "covid-19 was ruled out".
    Negated,
    /// "return if covid-19 symptoms develop".
    Hypothetical,
    /// "history of covid-19 last year".
    Historical,
    /// "mother tested positive for covid-19".
    Family,
    /// "possible covid-19 infection".
    Uncertain,
    /// A bare mention with no modifier.
    Unmodified,
}

impl MentionKind {
    /// The evidence class this kind should produce in the pipelines.
    pub fn expected_evidence(&self) -> MentionEvidence {
        match self {
            MentionKind::Positive => MentionEvidence::Positive,
            MentionKind::Negated => MentionEvidence::Negated,
            MentionKind::Hypothetical | MentionKind::Historical | MentionKind::Family => {
                MentionEvidence::Ignored
            }
            MentionKind::Uncertain | MentionKind::Unmodified => MentionEvidence::Uncertain,
        }
    }

    fn templates(&self) -> &'static [&'static str] {
        match self {
            MentionKind::Positive => &[
                "Patient tested positive for covid-19 this morning.",
                "Covid-19 test came back positive.",
                "Confirmed covid-19 infection on admission.",
                "PCR was positive for sars-cov-2.",
            ],
            MentionKind::Negated => &[
                "Patient denies covid-19 exposure.",
                "Negative for covid-19 on repeat testing.",
                "Covid-19 was ruled out.",
                "No evidence of coronavirus infection.",
            ],
            MentionKind::Hypothetical => &[
                "Return if covid-19 symptoms develop.",
                "Monitor for covid-19 in the coming days.",
                "Will screen for coronavirus at next visit.",
            ],
            MentionKind::Historical => &[
                "History of covid-19 last year.",
                "Previous covid-19 infection in the spring.",
                "Hx of coronavirus illness noted.",
            ],
            MentionKind::Family => &[
                "Mother tested positive for covid-19.",
                "Family member diagnosed with covid-19.",
                "Spouse has confirmed coronavirus infection.",
            ],
            MentionKind::Uncertain => &[
                "Possible covid-19 infection.",
                "Suspected covid-19 given presentation.",
                "Cannot rule out coronavirus at this time.",
            ],
            MentionKind::Unmodified => &[
                "Counseling regarding covid-19 provided.",
                "Discussed covid-19 vaccination during the visit.",
                "Reviewed covid-19 isolation guidance.",
            ],
        }
    }
}

/// Mention kinds for the `screen for` template: note that the
/// hypothetical "Will screen for…" uses `screening for`'s sibling cue —
/// the templates above only use phrases present in the default ConText
/// rule set.
const ALL_KINDS: &[MentionKind] = &[
    MentionKind::Positive,
    MentionKind::Negated,
    MentionKind::Hypothetical,
    MentionKind::Historical,
    MentionKind::Family,
    MentionKind::Uncertain,
    MentionKind::Unmodified,
];

const COMPLAINTS: &[&str] = &[
    "Cough and fever for three days.",
    "Shortness of breath since yesterday.",
    "Sore throat and fatigue.",
    "Routine follow up visit.",
];

const HPI_FILLERS: &[&str] = &[
    "Patient reports fever and cough.",
    "Symptoms began approximately four days ago.",
    "Appetite remains good.",
    "No recent travel reported.",
    "Patient works as a teacher.",
];

const PMH_FILLERS: &[&str] = &[
    "Hypertension, well controlled.",
    "Type 2 diabetes on metformin.",
    "Asthma since childhood.",
    "Unremarkable.",
];

const FAMILY_FILLERS: &[&str] = &[
    "Noncontributory.",
    "Father with hypertension.",
    "No hereditary illness reported.",
];

const ROS_FILLERS: &[&str] = &[
    "Denies chest pain.",
    "Denies nausea and vomiting.",
    "Reports mild headache.",
    "Otherwise negative.",
];

const PLAN_FILLERS: &[&str] = &[
    "Continue current medications.",
    "Rest and hydration advised.",
    "Follow up in two weeks.",
    "Labs ordered.",
];

/// One generated note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusDoc {
    /// Document id (`note_0001` …).
    pub id: String,
    /// The note text.
    pub text: String,
    /// Mention kinds planted, in order of appearance.
    pub events: Vec<MentionKind>,
    /// Gold classification derived from the planted kinds.
    pub gold: CovidStatus,
}

/// Generates `n` notes with the given seed (fully deterministic).
pub fn generate_corpus(n: usize, seed: u64) -> Vec<CorpusDoc> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| generate_doc(i, &mut rng)).collect()
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("pools are non-empty")
}

fn generate_doc(index: usize, rng: &mut StdRng) -> CorpusDoc {
    // 0–3 covid events per note; ~15% of notes have none.
    let n_events = if rng.gen_bool(0.15) {
        0
    } else {
        rng.gen_range(1..=3)
    };
    let events: Vec<MentionKind> = (0..n_events)
        .map(|_| *ALL_KINDS.choose(rng).expect("non-empty"))
        .collect();

    // Family-kind events go to the family-history section; the rest are
    // distributed over HPI and Assessment/Plan.
    let mut family_lines: Vec<String> = Vec::new();
    let mut hpi_lines: Vec<String> = Vec::new();
    let mut plan_lines: Vec<String> = Vec::new();
    let mut ordered_events: Vec<MentionKind> = Vec::new();
    for (j, kind) in events.iter().enumerate() {
        let sentence = pick(rng, kind.templates()).to_string();
        match kind {
            MentionKind::Family => family_lines.push(sentence),
            _ if j % 2 == 0 => hpi_lines.push(sentence),
            _ => plan_lines.push(sentence),
        }
        ordered_events.push(*kind);
    }

    let mut text = String::new();
    text.push_str(&format!("Chief Complaint: {}\n", pick(rng, COMPLAINTS)));
    text.push_str("History of Present Illness: ");
    text.push_str(pick(rng, HPI_FILLERS));
    for line in &hpi_lines {
        text.push(' ');
        text.push_str(line);
    }
    text.push('\n');
    text.push_str(&format!(
        "Past Medical History: {}\n",
        pick(rng, PMH_FILLERS)
    ));
    text.push_str("Family History: ");
    if family_lines.is_empty() {
        text.push_str(pick(rng, FAMILY_FILLERS));
    } else {
        text.push_str(&family_lines.join(" "));
    }
    text.push('\n');
    text.push_str(&format!("Review of Systems: {}\n", pick(rng, ROS_FILLERS)));
    text.push_str("Assessment/Plan: ");
    for line in &plan_lines {
        text.push_str(line);
        text.push(' ');
    }
    text.push_str(pick(rng, PLAN_FILLERS));
    text.push('\n');

    let gold = combine_evidence(ordered_events.iter().map(|k| k.expected_evidence()));
    CorpusDoc {
        id: format!("note_{index:04}"),
        text,
        events: ordered_events,
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_corpus(20, 7);
        let b = generate_corpus(20, 7);
        assert_eq!(a, b);
        let c = generate_corpus(20, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_covers_every_status() {
        let docs = generate_corpus(300, 42);
        for status in [
            CovidStatus::Positive,
            CovidStatus::Uncertain,
            CovidStatus::Negative,
            CovidStatus::Unknown,
        ] {
            assert!(
                docs.iter().any(|d| d.gold == status),
                "no doc with gold {status}"
            );
        }
    }

    #[test]
    fn corpus_covers_every_mention_kind() {
        let docs = generate_corpus(300, 42);
        for kind in ALL_KINDS {
            assert!(
                docs.iter().any(|d| d.events.contains(kind)),
                "no doc with kind {kind:?}"
            );
        }
    }

    #[test]
    fn notes_have_expected_structure() {
        for doc in generate_corpus(20, 1) {
            assert!(doc.text.contains("Chief Complaint:"));
            assert!(doc.text.contains("Assessment/Plan:"));
            assert!(doc.text.contains("Family History:"));
        }
    }

    #[test]
    fn gold_matches_manual_combination() {
        let docs = generate_corpus(100, 9);
        for doc in docs {
            let expected = combine_evidence(doc.events.iter().map(|k| k.expected_evidence()));
            assert_eq!(doc.gold, expected);
        }
    }

    #[test]
    fn no_mention_docs_are_unknown() {
        let docs = generate_corpus(300, 3);
        for doc in docs.iter().filter(|d| d.events.is_empty()) {
            assert_eq!(doc.gold, CovidStatus::Unknown);
            assert!(!doc.text.to_lowercase().contains("covid"));
        }
    }
}
