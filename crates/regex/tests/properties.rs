//! Property tests: the production engines must agree with the brute-force
//! oracles on random patterns and documents.
//!
//! Patterns are generated as ASTs over a small alphabet, rendered through
//! `Display`, and re-parsed — so these tests simultaneously exercise the
//! printer/parser round-trip, the compiler, the Pike VM, and the
//! all-matches simulator.

use proptest::prelude::*;
use spannerlib_regex::ast::Ast;
use spannerlib_regex::oracle::{oracle_all_matches, oracle_find_iter};
use spannerlib_regex::Regex;

/// Random pattern AST over {a, b, c}: small enough that the exponential
/// oracle stays fast, rich enough to cover alternation, repetition,
/// classes, groups, and anchors.
fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        4 => prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(Ast::Literal),
        1 => Just(Ast::AnyChar),
        1 => Just(Ast::Class(spannerlib_regex::classes::ClassSet::from_ranges([
            spannerlib_regex::classes::ClassRange::new('a', 'b')
        ]))),
        1 => Just(Ast::Empty),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::alternation),
            (
                inner.clone(),
                0u32..3,
                prop::option::of(0u32..3),
                any::<bool>()
            )
                .prop_map(|(node, min, extra, greedy)| Ast::Repeat {
                    node: Box::new(node),
                    min,
                    max: extra.map(|e| min + e),
                    greedy,
                }),
            inner.prop_map(|node| Ast::Group {
                index: 1, // renumbered below
                name: None,
                node: Box::new(node)
            }),
        ]
    })
}

/// Renumbers group indices to 1..n in traversal order (the generator
/// assigns everything index 1).
fn renumber(ast: &mut Ast, next: &mut u32) {
    match ast {
        Ast::Group { index, node, .. } => {
            *index = *next;
            *next += 1;
            renumber(node, next);
        }
        Ast::Concat(parts) | Ast::Alternation(parts) => {
            for p in parts {
                renumber(p, next);
            }
        }
        Ast::Repeat { node, .. } => renumber(node, next),
        _ => {}
    }
}

fn pattern_strategy() -> impl Strategy<Value = String> {
    ast_strategy().prop_map(|mut ast| {
        let mut next = 1;
        renumber(&mut ast, &mut next);
        ast.to_string()
    })
}

fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![Just('a'), Just('b'), Just('c'), Just(' ')],
        0..10,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Pike VM scan must equal the backtracking oracle exactly:
    /// same spans, same capture groups, same order.
    #[test]
    fn pikevm_agrees_with_backtracking_oracle(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        let re = Regex::new(&pattern).expect("generated pattern parses");
        let expected = oracle_find_iter(re.parsed(), &text);
        let actual: Vec<_> = re
            .captures_iter(&text)
            .map(|c| {
                let (s, e) = c.group(0).unwrap();
                spannerlib_regex::AllMatch {
                    start: s,
                    end: e,
                    groups: c.explicit_groups().collect(),
                }
            })
            .collect();
        prop_assert_eq!(actual, expected, "pattern {:?} text {:?}", pattern, text);
    }

    /// The all-configurations simulator must enumerate exactly the
    /// accepting parses the exhaustive oracle finds.
    #[test]
    fn allmatches_agrees_with_exhaustive_oracle(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        let re = Regex::new(&pattern).expect("generated pattern parses");
        let expected = oracle_all_matches(re.parsed(), &text);
        let actual = re.all_matches(&text);
        prop_assert_eq!(actual, expected, "pattern {:?} text {:?}", pattern, text);
    }

    /// Every findall row is a row of the all-matches spanner (the scan is
    /// a subset of the formal semantics).
    #[test]
    fn findall_is_subset_of_allmatches(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        let re = Regex::new(&pattern).expect("generated pattern parses");
        let all = re.all_matches(&text);
        for caps in re.captures_iter(&text) {
            let (s, e) = caps.group(0).unwrap();
            let row: Vec<_> = caps.explicit_groups().collect();
            prop_assert!(
                all.iter().any(|m| m.start == s && m.end == e && m.groups == row),
                "scan row ({s},{e},{row:?}) missing for pattern {:?} on {:?}",
                pattern, text
            );
        }
    }

    /// The literal prefilter must be transparent: for every pattern that
    /// gets one, prefiltered search equals the raw Pike VM search at every
    /// start offset, and the prefiltered scan still equals the
    /// backtracking oracle.
    #[test]
    fn prefilter_is_transparent(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        let re = Regex::new(&pattern).expect("generated pattern parses");
        if let Some(pf) = re.prefilter() {
            for from in (0..=text.len()).filter(|&i| text.is_char_boundary(i)) {
                let plain = spannerlib_regex::pikevm::search(re.program(), &text, from);
                let fast = pf.search(re.program(), &text, from);
                prop_assert_eq!(
                    fast, plain,
                    "prefilter diverged: pattern {:?} text {:?} from {}",
                    pattern, text, from
                );
            }
            let expected: Vec<_> = oracle_find_iter(re.parsed(), &text)
                .into_iter()
                .map(|m| (m.start, m.end))
                .collect();
            let actual: Vec<_> = re.find_iter(&text).map(|m| (m.start, m.end)).collect();
            prop_assert_eq!(actual, expected, "pattern {:?} text {:?}", pattern, text);
        }
    }

    /// Pretty-printing a parsed pattern and re-parsing it reaches a fixed
    /// point after one iteration.
    #[test]
    fn display_parse_round_trip(pattern in pattern_strategy()) {
        let first = Regex::new(&pattern).expect("generated pattern parses");
        let rendered = first.parsed().ast.to_string();
        let second = Regex::new(&rendered)
            .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}"));
        prop_assert_eq!(rendered.clone(), second.parsed().ast.to_string());
    }

    /// Matching behaviour is invariant under the print/parse round trip.
    #[test]
    fn round_trip_preserves_semantics(
        pattern in pattern_strategy(),
        text in text_strategy(),
    ) {
        let first = Regex::new(&pattern).unwrap();
        let second = Regex::new(&first.parsed().ast.to_string()).unwrap();
        let spans1: Vec<_> = first.find_iter(&text).collect();
        let spans2: Vec<_> = second.find_iter(&text).collect();
        prop_assert_eq!(spans1, spans2);
    }
}

#[test]
fn regression_empty_alternation_branch() {
    // `a|` has an empty second branch: matches "a" or "".
    let re = Regex::new("a|").unwrap();
    let spans: Vec<_> = re.find_iter("ba").map(|m| (m.start, m.end)).collect();
    assert_eq!(spans, vec![(0, 0), (1, 2), (2, 2)]);
}

#[test]
fn regression_nested_empty_star() {
    let re = Regex::new("(?:(?:)*)*").unwrap();
    assert!(re.is_match(""));
}

#[test]
fn regression_lazy_star_prefers_empty() {
    let re = Regex::new("a*?").unwrap();
    let m = re.find("aaa").unwrap();
    assert_eq!((m.start, m.end), (0, 0));
}
