//! Recursive-descent parser for regex formulas.
//!
//! Classic syntax plus the paper's *spanner variable groups*: `x{a+}`
//! binds variable `x` to the span matched by `a+`. Variable groups are
//! disambiguated from repetition braces by lookahead — `ident{...}` is a
//! variable group exactly when the brace body does **not** parse as a
//! repetition count (`{3}`, `{3,}`, `{3,5}`). This mirrors how the
//! RGXlog/SpannerLib pattern dialect reads; the corner case of a literal
//! identifier followed by a counted repetition (`ab{2}`) keeps its classic
//! meaning because `2` *is* a repetition count.

use crate::ast::{AnchorKind, Ast};
use crate::classes::{ClassRange, ClassSet};
use crate::error::RegexError;
use std::collections::HashSet;

/// Parses a pattern into an AST plus its capture-group count.
///
/// Group indices are assigned 1-based in order of the opening delimiter;
/// group 0 (the whole match) is implicit and not represented in the AST.
pub fn parse(pattern: &str) -> Result<ParsedPattern, RegexError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
        next_group: 1,
        pattern_len: pattern.len(),
        var_group_depth: 0,
    };
    let ast = p.parse_alternation()?;
    if p.pos < p.chars.len() {
        let (byte, c) = p.chars[p.pos];
        return Err(RegexError::syntax(byte, format!("unexpected {c:?}")));
    }
    let groups = ast.capture_groups();
    let mut seen = HashSet::new();
    for (_, name) in &groups {
        if let Some(n) = name {
            if !seen.insert(n.clone()) {
                return Err(RegexError::DuplicateVariable(n.clone()));
            }
        }
    }
    let group_names = {
        let mut names: Vec<Option<String>> = vec![None; groups.len()];
        for (idx, name) in groups {
            names[(idx - 1) as usize] = name;
        }
        names
    };
    Ok(ParsedPattern { ast, group_names })
}

/// Result of parsing: the AST and, for each capture group (1-based index
/// order), its optional variable name.
#[derive(Debug, Clone)]
pub struct ParsedPattern {
    /// Root of the parsed AST.
    pub ast: Ast,
    /// `group_names[i]` is the name of group `i + 1`, if any.
    pub group_names: Vec<Option<String>>,
}

impl ParsedPattern {
    /// Number of explicit capture groups.
    pub fn group_count(&self) -> usize {
        self.group_names.len()
    }
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: u32,
    pattern_len: usize,
    /// Nesting depth of spanner variable groups; inside one, `}` ends the
    /// group instead of being a literal (escape it as `\}` if needed).
    var_group_depth: u32,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).map(|&(_, c)| c)
    }

    fn byte_pos(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(b, _)| b)
            .unwrap_or(self.pattern_len)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), RegexError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(RegexError::syntax(
                self.byte_pos(),
                format!("expected {c:?}"),
            ))
        }
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        Ok(Ast::alternation(branches))
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' || (c == '}' && self.var_group_depth > 0) {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(Ast::concat(parts))
    }

    /// repeat := atom ('*'|'+'|'?'|'{m,n}') '?'?
    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => match self.try_parse_counted_repetition()? {
                Some(bounds) => bounds,
                None => return Ok(atom),
            },
            _ => return Ok(atom),
        };
        if let Some(m) = max {
            if min > m {
                return Err(RegexError::BadRepetition { min, max: m });
            }
        }
        let greedy = !self.eat('?');
        if matches!(atom, Ast::Anchor(_)) {
            return Err(RegexError::syntax(
                self.byte_pos(),
                "repetition of a zero-width assertion",
            ));
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Attempts `{m}`, `{m,}`, `{m,n}` at the current `{`. Restores the
    /// position and returns `None` when the braces are not a repetition
    /// (then the `{` is a literal brace, matching Python's leniency).
    fn try_parse_counted_repetition(&mut self) -> Result<Option<(u32, Option<u32>)>, RegexError> {
        let save = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.pos += 1;
        let min = match self.parse_number() {
            Some(n) => n,
            None => {
                self.pos = save;
                return Ok(None);
            }
        };
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                match self.parse_number() {
                    Some(n) => Some(n),
                    None => {
                        self.pos = save;
                        return Ok(None);
                    }
                }
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            self.pos = save;
            return Ok(None);
        }
        Ok(Some((min, max)))
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        let mut value: u32 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                value = value.saturating_mul(10).saturating_add(d);
                self.pos += 1;
            } else {
                break;
            }
        }
        (self.pos > start).then_some(value)
    }

    /// Checks whether the current position starts a spanner variable group
    /// `ident{body}` — an identifier immediately followed by `{` whose body
    /// is not a repetition count. Returns the identifier length in chars.
    fn peek_variable_group(&self) -> Option<usize> {
        let first = self.peek()?;
        if !(first.is_ascii_alphabetic() || first == '_') {
            return None;
        }
        let mut len = 1;
        while let Some(c) = self.peek_at(len) {
            if c.is_ascii_alphanumeric() || c == '_' {
                len += 1;
            } else {
                break;
            }
        }
        if self.peek_at(len) != Some('{') {
            return None;
        }
        // Reject if the brace body is a repetition count: scan digits
        // [, digits] '}'.
        let mut i = len + 1;
        let mut saw_digit = false;
        while let Some(c) = self.peek_at(i) {
            if c.is_ascii_digit() {
                saw_digit = true;
                i += 1;
            } else {
                break;
            }
        }
        if saw_digit {
            if self.peek_at(i) == Some(',') {
                i += 1;
                while let Some(c) = self.peek_at(i) {
                    if c.is_ascii_digit() {
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            if self.peek_at(i) == Some('}') {
                return None; // repetition applied to the last identifier char
            }
        }
        Some(len)
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        // Spanner variable group `x{...}` takes precedence at atom position.
        if let Some(name_len) = self.peek_variable_group() {
            let name: String = (0..name_len).map(|i| self.chars[self.pos + i].1).collect();
            self.pos += name_len;
            self.expect('{')?;
            let index = self.next_group;
            self.next_group += 1;
            self.var_group_depth += 1;
            let inner = self.parse_alternation()?;
            self.var_group_depth -= 1;
            if !self.eat('}') {
                return Err(RegexError::syntax(
                    self.byte_pos(),
                    format!("unclosed variable group {name:?}"),
                ));
            }
            return Ok(Ast::Group {
                index,
                name: Some(name),
                node: Box::new(inner),
            });
        }

        let start_byte = self.byte_pos();
        let c = self
            .bump()
            .ok_or_else(|| RegexError::syntax(start_byte, "unexpected end of pattern"))?;
        match c {
            '(' => self.parse_group(),
            '[' => self.parse_class(),
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::Anchor(AnchorKind::StartText)),
            '$' => Ok(Ast::Anchor(AnchorKind::EndText)),
            '\\' => self.parse_escape(start_byte),
            '*' | '+' | '?' => Err(RegexError::syntax(start_byte, "repetition with no operand")),
            ')' => Err(RegexError::syntax(start_byte, "unmatched ')'")),
            other => Ok(Ast::Literal(other)),
        }
    }

    fn parse_group(&mut self) -> Result<Ast, RegexError> {
        if self.eat('?') {
            if self.eat(':') {
                // Non-capturing group.
                let inner = self.parse_alternation()?;
                self.expect(')')?;
                return Ok(inner);
            }
            // Named group: (?P<name>...) or (?<name>...).
            self.eat('P');
            self.expect('<')?;
            let mut name = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    name.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if name.is_empty() {
                return Err(RegexError::syntax(self.byte_pos(), "empty group name"));
            }
            self.expect('>')?;
            let index = self.next_group;
            self.next_group += 1;
            let inner = self.parse_alternation()?;
            self.expect(')')?;
            return Ok(Ast::Group {
                index,
                name: Some(name),
                node: Box::new(inner),
            });
        }
        let index = self.next_group;
        self.next_group += 1;
        let inner = self.parse_alternation()?;
        self.expect(')')?;
        Ok(Ast::Group {
            index,
            name: None,
            node: Box::new(inner),
        })
    }

    fn parse_escape(&mut self, start_byte: usize) -> Result<Ast, RegexError> {
        let c = self
            .bump()
            .ok_or_else(|| RegexError::syntax(start_byte, "dangling escape"))?;
        Ok(match c {
            'd' => Ast::Class(ClassSet::digit()),
            'D' => Ast::Class(ClassSet::digit().negate()),
            'w' => Ast::Class(ClassSet::word()),
            'W' => Ast::Class(ClassSet::word().negate()),
            's' => Ast::Class(ClassSet::space()),
            'S' => Ast::Class(ClassSet::space().negate()),
            'b' => Ast::Anchor(AnchorKind::WordBoundary),
            'B' => Ast::Anchor(AnchorKind::NotWordBoundary),
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            '0' => Ast::Literal('\0'),
            c if c.is_ascii_alphanumeric() => {
                return Err(RegexError::syntax(
                    start_byte,
                    format!("unknown escape \\{c}"),
                ))
            }
            other => Ast::Literal(other),
        })
    }

    /// Parses a character class after the opening `[`.
    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let negated = self.eat('^');
        let mut set = ClassSet::empty();
        let mut first = true;
        loop {
            let item_byte = self.byte_pos();
            let c = self
                .bump()
                .ok_or_else(|| RegexError::syntax(item_byte, "unclosed character class"))?;
            if c == ']' && !first {
                break;
            }
            first = false;
            let lo = if c == '\\' {
                match self.parse_class_escape(item_byte)? {
                    ClassItem::Char(ch) => ch,
                    ClassItem::Set(s) => {
                        set = set.union(&s);
                        continue;
                    }
                }
            } else {
                c
            };
            // Possible range `lo-hi` (a trailing `-` is a literal).
            if self.peek() == Some('-') && self.peek_at(1) != Some(']') && self.peek_at(1).is_some()
            {
                self.pos += 1; // consume '-'
                let hi_byte = self.byte_pos();
                let hc = self
                    .bump()
                    .ok_or_else(|| RegexError::syntax(hi_byte, "unclosed character class"))?;
                let hi = if hc == '\\' {
                    match self.parse_class_escape(hi_byte)? {
                        ClassItem::Char(ch) => ch,
                        ClassItem::Set(_) => {
                            return Err(RegexError::syntax(
                                hi_byte,
                                "class shorthand cannot end a range",
                            ))
                        }
                    }
                } else {
                    hc
                };
                if lo > hi {
                    return Err(RegexError::syntax(
                        item_byte,
                        format!("invalid range {lo:?}-{hi:?}"),
                    ));
                }
                set = set.union(&ClassSet::from_ranges([ClassRange::new(lo, hi)]));
            } else {
                set = set.union(&ClassSet::single(lo));
            }
        }
        Ok(Ast::Class(if negated { set.negate() } else { set }))
    }

    fn parse_class_escape(&mut self, start_byte: usize) -> Result<ClassItem, RegexError> {
        let c = self
            .bump()
            .ok_or_else(|| RegexError::syntax(start_byte, "dangling escape in class"))?;
        Ok(match c {
            'd' => ClassItem::Set(ClassSet::digit()),
            'D' => ClassItem::Set(ClassSet::digit().negate()),
            'w' => ClassItem::Set(ClassSet::word()),
            'W' => ClassItem::Set(ClassSet::word().negate()),
            's' => ClassItem::Set(ClassSet::space()),
            'S' => ClassItem::Set(ClassSet::space().negate()),
            'n' => ClassItem::Char('\n'),
            't' => ClassItem::Char('\t'),
            'r' => ClassItem::Char('\r'),
            '0' => ClassItem::Char('\0'),
            other => ClassItem::Char(other),
        })
    }
}

enum ClassItem {
    Char(char),
    Set(ClassSet),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(pattern: &str) -> ParsedPattern {
        parse(pattern).unwrap_or_else(|e| panic!("pattern {pattern:?} failed: {e}"))
    }

    #[test]
    fn literals_and_concat() {
        let p = ok("abc");
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn alternation_orders_branches() {
        let p = ok("a|bc|d");
        match p.ast {
            Ast::Alternation(branches) => assert_eq!(branches.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn repetitions() {
        assert!(matches!(
            ok("a*").ast,
            Ast::Repeat {
                min: 0,
                max: None,
                greedy: true,
                ..
            }
        ));
        assert!(matches!(
            ok("a+?").ast,
            Ast::Repeat {
                min: 1,
                max: None,
                greedy: false,
                ..
            }
        ));
        assert!(matches!(
            ok("a{2,5}").ast,
            Ast::Repeat {
                min: 2,
                max: Some(5),
                ..
            }
        ));
        assert!(matches!(
            ok("a{3}").ast,
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            ok("a{3,}").ast,
            Ast::Repeat {
                min: 3,
                max: None,
                ..
            }
        ));
    }

    #[test]
    fn inverted_repetition_is_an_error() {
        assert_eq!(
            parse("a{5,2}").unwrap_err(),
            RegexError::BadRepetition { min: 5, max: 2 }
        );
    }

    #[test]
    fn spanner_variable_group_parses() {
        // The paper's §2 formula.
        let p = ok("x{a+}c+y{b+}");
        assert_eq!(p.group_count(), 2);
        assert_eq!(
            p.group_names,
            vec![Some("x".to_string()), Some("y".to_string())]
        );
    }

    #[test]
    fn counted_repetition_beats_variable_reading() {
        // `ab{2}` must stay classic: 'a' then 'b' twice — no variable `ab`.
        let p = ok("ab{2}");
        assert_eq!(p.group_count(), 0);
        match p.ast {
            Ast::Concat(parts) => {
                assert_eq!(parts[0], Ast::Literal('a'));
                assert!(matches!(
                    parts[1],
                    Ast::Repeat {
                        min: 2,
                        max: Some(2),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_group_with_digit_body_containing_letters() {
        // `v{1a}` — body is not a pure repetition count, so `v` is a variable.
        let p = ok("v{1a}");
        assert_eq!(p.group_names, vec![Some("v".to_string())]);
    }

    #[test]
    fn named_group_syntaxes() {
        for pat in ["(?P<usr>a+)", "(?<usr>a+)"] {
            let p = ok(pat);
            assert_eq!(p.group_names, vec![Some("usr".to_string())]);
        }
    }

    #[test]
    fn numbered_and_noncapturing_groups() {
        let p = ok("(a)(?:b)(c)");
        assert_eq!(p.group_count(), 2);
        assert_eq!(p.group_names, vec![None, None]);
    }

    #[test]
    fn duplicate_variables_rejected() {
        assert_eq!(
            parse("x{a}x{b}").unwrap_err(),
            RegexError::DuplicateVariable("x".to_string())
        );
    }

    #[test]
    fn classes_parse() {
        let p = ok("[a-z0-9_]");
        match p.ast {
            Ast::Class(set) => {
                assert!(set.contains('m'));
                assert!(set.contains('5'));
                assert!(set.contains('_'));
                assert!(!set.contains('-'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_class() {
        let p = ok("[^ab]");
        match p.ast {
            Ast::Class(set) => {
                assert!(!set.contains('a'));
                assert!(set.contains('c'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_with_literal_bracket_and_dash() {
        let p = ok("[]a-]");
        match p.ast {
            Ast::Class(set) => {
                assert!(set.contains(']'));
                assert!(set.contains('a'));
                assert!(set.contains('-'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perl_class_inside_class() {
        let p = ok(r"[\d_]");
        match p.ast {
            Ast::Class(set) => {
                assert!(set.contains('3'));
                assert!(set.contains('_'));
                assert!(!set.contains('a'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn escapes() {
        assert_eq!(ok(r"\.").ast, Ast::Literal('.'));
        assert_eq!(ok(r"\n").ast, Ast::Literal('\n'));
        assert!(matches!(ok(r"\d").ast, Ast::Class(_)));
        assert_eq!(ok(r"\b").ast, Ast::Anchor(AnchorKind::WordBoundary));
    }

    #[test]
    fn anchors() {
        let p = ok("^a$");
        assert_eq!(
            p.ast,
            Ast::Concat(vec![
                Ast::Anchor(AnchorKind::StartText),
                Ast::Literal('a'),
                Ast::Anchor(AnchorKind::EndText),
            ])
        );
    }

    #[test]
    fn error_positions_point_at_offender() {
        match parse("a(b").unwrap_err() {
            RegexError::Syntax { pos, .. } => assert_eq!(pos, 3),
            other => panic!("unexpected {other:?}"),
        }
        match parse("a)").unwrap_err() {
            RegexError::Syntax { pos, .. } => assert_eq!(pos, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stray_repetition_operators_rejected() {
        assert!(parse("*a").is_err());
        assert!(parse("+").is_err());
    }

    #[test]
    fn literal_brace_without_count_is_literal() {
        // `{` after a non-identifier atom with a non-count body: literal
        // braces (Python leniency). After an *identifier* the same body
        // would read as a spanner variable group — that is the dialect.
        let p = ok(".{,2}");
        match &p.ast {
            Ast::Concat(parts) => {
                assert_eq!(parts[0], Ast::AnyChar);
                assert_eq!(parts[1], Ast::Literal('{'));
            }
            other => panic!("unexpected {other:?}"),
        }
        // And the identifier case is a variable group:
        let p = ok("a{,2}");
        assert_eq!(p.group_names, vec![Some("a".to_string())]);
    }

    #[test]
    fn display_round_trip() {
        for pat in [
            "abc",
            "a|b",
            "a*b+c?",
            "(a)(?:b)",
            "[a-z]",
            "x{a+}c+y{b+}",
            r"\d\w\s",
            "^end$",
            "a{2,5}?",
        ] {
            let first = ok(pat);
            let rendered = first.ast.to_string();
            let second = parse(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of {rendered:?} (from {pat:?}) failed: {e}"));
            // Group indices may shift through (?:...) flattening, so compare
            // the structure re-rendered once more.
            assert_eq!(rendered, second.ast.to_string());
        }
    }
}
