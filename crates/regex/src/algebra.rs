//! The spanner algebra: composing regex formulas as relations of spans.
//!
//! Fagin et al. (2015) define *core spanners* as regex formulas closed
//! under union, projection, natural join, and string-equality selection.
//! This module mirrors that structure:
//!
//! * **Formula-level** combinators — [`Spanner::union`],
//!   [`Spanner::concat`], [`Spanner::star`], [`Spanner::project`] — operate
//!   on the AST (renumbering capture variables so aligned variables share
//!   slots) and recompile, so the result is again a single automaton.
//! * **Relation-level** operators — [`SpanRelation::natural_join`],
//!   [`SpanRelation::select_string_eq`], [`SpanRelation::union`],
//!   [`SpanRelation::project`] — operate on materialized results, which is
//!   how the Spannerlog engine combines IE output with relational atoms.
//!
//! Evaluation uses the formal all-matches semantics of
//! [`crate::allmatches`].

use crate::allmatches::all_matches;
use crate::ast::Ast;
use crate::compile::compile;
use crate::error::RegexError;
use crate::nfa::Program;
use crate::parser::{parse, ParsedPattern};
use rustc_hash::FxHashSet;
use std::collections::BTreeSet;

/// A byte range; `None` means the variable did not participate in the run.
pub type VarSpan = Option<(usize, usize)>;

/// A composable document spanner.
#[derive(Debug, Clone)]
pub struct Spanner {
    ast: Ast,
    vars: Vec<String>,
    program: Program,
}

impl Spanner {
    /// Builds a spanner from a pattern. Unnamed capture groups are given
    /// synthetic variable names `g1`, `g2`, … by index.
    pub fn new(pattern: &str) -> Result<Spanner, RegexError> {
        let parsed = parse(pattern)?;
        let vars: Vec<String> = parsed
            .group_names
            .iter()
            .enumerate()
            .map(|(i, n)| n.clone().unwrap_or_else(|| format!("g{}", i + 1)))
            .collect();
        Spanner::from_parts(parsed.ast, vars)
    }

    fn from_parts(ast: Ast, vars: Vec<String>) -> Result<Spanner, RegexError> {
        let mut seen = FxHashSet::default();
        for v in &vars {
            if !seen.insert(v.clone()) {
                return Err(RegexError::DuplicateVariable(v.clone()));
            }
        }
        let parsed = ParsedPattern {
            ast: ast.clone(),
            group_names: vars.iter().cloned().map(Some).collect(),
        };
        let program = compile(&parsed)?;
        Ok(Spanner { ast, vars, program })
    }

    /// The spanner's variables, in column order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The compiled automaton.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Evaluates the spanner on `text` under the all-matches semantics,
    /// returning the relation of variable assignments (deduplicated).
    pub fn evaluate(&self, text: &str) -> SpanRelation {
        let rows: BTreeSet<Vec<VarSpan>> = all_matches(&self.program, text)
            .into_iter()
            .map(|m| m.groups)
            .collect();
        SpanRelation {
            vars: self.vars.clone(),
            rows: rows.into_iter().collect(),
        }
    }

    /// Spanner union: both operands must bind exactly the same variable
    /// set. Variables of `other` are re-aligned by name so that shared
    /// variables share capture slots in the merged automaton.
    pub fn union(&self, other: &Spanner) -> Result<Spanner, RegexError> {
        let lset: BTreeSet<&String> = self.vars.iter().collect();
        let rset: BTreeSet<&String> = other.vars.iter().collect();
        if lset != rset {
            return Err(RegexError::VariableMismatch {
                op: "union",
                left: self.vars.clone(),
                right: other.vars.clone(),
            });
        }
        // Remap other's group indices onto ours, by variable name.
        let remap: Vec<u32> = other
            .vars
            .iter()
            .map(|v| (self.vars.iter().position(|x| x == v).expect("same var set") + 1) as u32)
            .collect();
        let right_ast = remap_groups(&other.ast, &remap);
        let ast = Ast::alternation(vec![self.ast.clone(), right_ast]);
        Spanner::from_parts(ast, self.vars.clone())
    }

    /// Spanner concatenation: variable sets must be disjoint.
    pub fn concat(&self, other: &Spanner) -> Result<Spanner, RegexError> {
        if self.vars.iter().any(|v| other.vars.contains(v)) {
            return Err(RegexError::VariableMismatch {
                op: "concat",
                left: self.vars.clone(),
                right: other.vars.clone(),
            });
        }
        let offset = self.vars.len() as u32;
        let remap: Vec<u32> = (1..=other.vars.len() as u32).map(|i| i + offset).collect();
        let right_ast = remap_groups(&other.ast, &remap);
        let ast = Ast::concat(vec![self.ast.clone(), right_ast]);
        let mut vars = self.vars.clone();
        vars.extend(other.vars.iter().cloned());
        Spanner::from_parts(ast, vars)
    }

    /// Kleene star of the spanner. Variables inside the star rebind per
    /// iteration; under all-matches semantics each accepting run reports
    /// the bindings of its own iterations (last write per run wins),
    /// matching the reference VSA construction.
    pub fn star(&self) -> Result<Spanner, RegexError> {
        let ast = Ast::Repeat {
            node: Box::new(self.ast.clone()),
            min: 0,
            max: None,
            greedy: true,
        };
        Spanner::from_parts(ast, self.vars.clone())
    }

    /// Projection onto `keep` (names): capture groups for the dropped
    /// variables are erased from the automaton.
    pub fn project(&self, keep: &[&str]) -> Result<Spanner, RegexError> {
        for k in keep {
            if !self.vars.iter().any(|v| v == k) {
                return Err(RegexError::UnknownVariable((*k).to_string()));
            }
        }
        let kept: Vec<String> = self
            .vars
            .iter()
            .filter(|v| keep.contains(&v.as_str()))
            .cloned()
            .collect();
        // Old index -> new index (0 = drop).
        let remap: Vec<u32> = self
            .vars
            .iter()
            .map(|v| {
                kept.iter()
                    .position(|k| k == v)
                    .map(|p| (p + 1) as u32)
                    .unwrap_or(0)
            })
            .collect();
        let ast = remap_or_erase_groups(&self.ast, &remap);
        Spanner::from_parts(ast, kept)
    }
}

/// Rewrites every `Group { index }` to `remap[index - 1]`.
fn remap_groups(ast: &Ast, remap: &[u32]) -> Ast {
    remap_or_erase_groups(
        ast, // Identity erase-map: all indices kept.
        remap,
    )
}

/// Rewrites group indices; a mapped index of 0 erases the group, splicing
/// its body in place.
fn remap_or_erase_groups(ast: &Ast, remap: &[u32]) -> Ast {
    match ast {
        Ast::Group { index, name, node } => {
            let new_index = remap[(*index - 1) as usize];
            let body = remap_or_erase_groups(node, remap);
            if new_index == 0 {
                body
            } else {
                Ast::Group {
                    index: new_index,
                    name: name.clone(),
                    node: Box::new(body),
                }
            }
        }
        Ast::Concat(parts) => Ast::Concat(
            parts
                .iter()
                .map(|p| remap_or_erase_groups(p, remap))
                .collect(),
        ),
        Ast::Alternation(parts) => Ast::Alternation(
            parts
                .iter()
                .map(|p| remap_or_erase_groups(p, remap))
                .collect(),
        ),
        Ast::Repeat {
            node,
            min,
            max,
            greedy,
        } => Ast::Repeat {
            node: Box::new(remap_or_erase_groups(node, remap)),
            min: *min,
            max: *max,
            greedy: *greedy,
        },
        other => other.clone(),
    }
}

/// A materialized relation of variable-to-span assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRelation {
    vars: Vec<String>,
    rows: Vec<Vec<VarSpan>>,
}

impl SpanRelation {
    /// Builds a relation from explicit rows (deduplicated and sorted).
    pub fn from_rows(vars: Vec<String>, rows: impl IntoIterator<Item = Vec<VarSpan>>) -> Self {
        let set: BTreeSet<Vec<VarSpan>> = rows.into_iter().collect();
        SpanRelation {
            vars,
            rows: set.into_iter().collect(),
        }
    }

    /// Column names.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Rows, sorted lexicographically.
    pub fn rows(&self) -> &[Vec<VarSpan>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Natural join on shared variables (spans must be equal; two `None`s
    /// are considered equal). Output columns: self's vars, then other's
    /// non-shared vars.
    pub fn natural_join(&self, other: &SpanRelation) -> SpanRelation {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.vars.iter().position(|w| w == v).map(|j| (i, j)))
            .collect();
        let extra: Vec<usize> = (0..other.vars.len())
            .filter(|j| !shared.iter().any(|(_, sj)| sj == j))
            .collect();
        let mut vars = self.vars.clone();
        vars.extend(extra.iter().map(|&j| other.vars[j].clone()));

        // Hash the smaller probe side by shared-key.
        let mut index: rustc_hash::FxHashMap<Vec<VarSpan>, Vec<&Vec<VarSpan>>> =
            rustc_hash::FxHashMap::default();
        for row in &other.rows {
            let key: Vec<VarSpan> = shared.iter().map(|&(_, j)| row[j]).collect();
            index.entry(key).or_default().push(row);
        }
        let mut out = Vec::new();
        for row in &self.rows {
            let key: Vec<VarSpan> = shared.iter().map(|&(i, _)| row[i]).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut r = row.clone();
                    r.extend(extra.iter().map(|&j| m[j]));
                    out.push(r);
                }
            }
        }
        SpanRelation::from_rows(vars, out)
    }

    /// Union with a relation over the same variables (aligned by name).
    pub fn union(&self, other: &SpanRelation) -> Result<SpanRelation, RegexError> {
        let lset: BTreeSet<&String> = self.vars.iter().collect();
        let rset: BTreeSet<&String> = other.vars.iter().collect();
        if lset != rset {
            return Err(RegexError::VariableMismatch {
                op: "relation union",
                left: self.vars.clone(),
                right: other.vars.clone(),
            });
        }
        let perm: Vec<usize> = self
            .vars
            .iter()
            .map(|v| other.vars.iter().position(|w| w == v).expect("same set"))
            .collect();
        let aligned = other
            .rows
            .iter()
            .map(|r| perm.iter().map(|&j| r[j]).collect());
        Ok(SpanRelation::from_rows(
            self.vars.clone(),
            self.rows.iter().cloned().chain(aligned),
        ))
    }

    /// Projection onto `keep` (names, in the given order).
    pub fn project(&self, keep: &[&str]) -> Result<SpanRelation, RegexError> {
        let idx: Vec<usize> = keep
            .iter()
            .map(|k| {
                self.vars
                    .iter()
                    .position(|v| v == k)
                    .ok_or_else(|| RegexError::UnknownVariable((*k).to_string()))
            })
            .collect::<Result<_, _>>()?;
        let rows = self
            .rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i]).collect::<Vec<_>>());
        Ok(SpanRelation::from_rows(
            keep.iter().map(|k| k.to_string()).collect(),
            rows,
        ))
    }

    /// String-equality selection ζ=: keeps rows where the spans bound to
    /// `a` and `b` cover **equal substrings** of `text` (the operator that
    /// lifts core spanners beyond regular relations).
    pub fn select_string_eq(
        &self,
        a: &str,
        b: &str,
        text: &str,
    ) -> Result<SpanRelation, RegexError> {
        let ia = self
            .vars
            .iter()
            .position(|v| v == a)
            .ok_or_else(|| RegexError::UnknownVariable(a.to_string()))?;
        let ib = self
            .vars
            .iter()
            .position(|v| v == b)
            .ok_or_else(|| RegexError::UnknownVariable(b.to_string()))?;
        let rows = self.rows.iter().filter(|r| match (r[ia], r[ib]) {
            (Some((s1, e1)), Some((s2, e2))) => text[s1..e1] == text[s2..e2],
            _ => false,
        });
        Ok(SpanRelation::from_rows(self.vars.clone(), rows.cloned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(rel: &SpanRelation, var: &str) -> Vec<(usize, usize)> {
        let i = rel.vars().iter().position(|v| v == var).unwrap();
        let mut v: Vec<(usize, usize)> = rel.rows().iter().filter_map(|r| r[i]).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn evaluate_returns_variable_columns() {
        let sp = Spanner::new("x{ab}").unwrap();
        let rel = sp.evaluate("abab");
        assert_eq!(rel.vars(), &["x".to_string()]);
        assert_eq!(spans(&rel, "x"), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn union_requires_same_vars() {
        let a = Spanner::new("x{a}").unwrap();
        let b = Spanner::new("y{b}").unwrap();
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn union_merges_results() {
        let a = Spanner::new("x{aa}").unwrap();
        let b = Spanner::new("x{bb}").unwrap();
        let u = a.union(&b).unwrap();
        let rel = u.evaluate("aabb");
        assert_eq!(spans(&rel, "x"), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn union_equals_relation_union() {
        let a = Spanner::new("x{a+}").unwrap();
        let b = Spanner::new("x{ab}").unwrap();
        let automaton = a.union(&b).unwrap().evaluate("aab");
        let relational = a.evaluate("aab").union(&b.evaluate("aab")).unwrap();
        assert_eq!(automaton, relational);
    }

    #[test]
    fn concat_requires_disjoint_vars() {
        let a = Spanner::new("x{a}").unwrap();
        assert!(a.concat(&a).is_err());
    }

    #[test]
    fn concat_sequences_patterns() {
        let a = Spanner::new("x{a+}").unwrap();
        let b = Spanner::new("y{b+}").unwrap();
        let c = a.concat(&b).unwrap();
        assert_eq!(c.vars(), &["x".to_string(), "y".to_string()]);
        let rel = c.evaluate("aabb");
        // Row with x=[0,2) y=[2,4) must exist.
        assert!(rel
            .rows()
            .iter()
            .any(|r| r[0] == Some((0, 2)) && r[1] == Some((2, 4))));
    }

    #[test]
    fn star_evaluates() {
        let a = Spanner::new("x{ab}").unwrap();
        let s = a.star().unwrap();
        let rel = s.evaluate("abab");
        // Runs exist where x is the first or second "ab" (or unbound for
        // the zero-iteration empty run).
        assert!(spans(&rel, "x").contains(&(0, 2)));
        assert!(spans(&rel, "x").contains(&(2, 4)));
        assert!(rel.rows().iter().any(|r| r[0].is_none()));
    }

    #[test]
    fn projection_drops_columns() {
        let sp = Spanner::new("x{a+}y{b+}").unwrap();
        let p = sp.project(&["y"]).unwrap();
        assert_eq!(p.vars(), &["y".to_string()]);
        let rel = p.evaluate("ab");
        assert_eq!(spans(&rel, "y"), vec![(1, 2)]);
    }

    #[test]
    fn projection_matches_relation_projection() {
        let sp = Spanner::new("x{a+}y{b+}").unwrap();
        let via_automaton = sp.project(&["y"]).unwrap().evaluate("aabb");
        let via_relation = sp.evaluate("aabb").project(&["y"]).unwrap();
        assert_eq!(via_automaton, via_relation);
    }

    #[test]
    fn projection_unknown_var_errors() {
        let sp = Spanner::new("x{a}").unwrap();
        assert!(sp.project(&["z"]).is_err());
    }

    #[test]
    fn natural_join_on_shared_span() {
        let a = SpanRelation::from_rows(
            vec!["x".into(), "y".into()],
            vec![
                vec![Some((0, 1)), Some((1, 2))],
                vec![Some((2, 3)), Some((3, 4))],
            ],
        );
        let b = SpanRelation::from_rows(
            vec!["y".into(), "z".into()],
            vec![
                vec![Some((1, 2)), Some((5, 6))],
                vec![Some((9, 9)), Some((5, 6))],
            ],
        );
        let j = a.natural_join(&b);
        assert_eq!(
            j.vars(),
            &["x".to_string(), "y".to_string(), "z".to_string()]
        );
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows()[0], vec![Some((0, 1)), Some((1, 2)), Some((5, 6))]);
    }

    #[test]
    fn join_with_no_shared_vars_is_cross_product() {
        let a = SpanRelation::from_rows(
            vec!["x".into()],
            vec![vec![Some((0, 1))], vec![Some((1, 2))]],
        );
        let b = SpanRelation::from_rows(vec!["y".into()], vec![vec![Some((2, 3))]]);
        assert_eq!(a.natural_join(&b).len(), 2);
    }

    #[test]
    fn string_eq_selection() {
        // Find pairs of equal substrings: x{.}y{.} with ζ= x,y.
        let sp = Spanner::new("x{.}.*y{.}").unwrap();
        let text = "abca";
        let rel = sp.evaluate(text);
        let eq = rel.select_string_eq("x", "y", text).unwrap();
        // Only x='a'@0, y='a'@3 qualifies among (x before y) pairs.
        assert!(eq.rows().iter().all(|r| {
            text[r[0].unwrap().0..r[0].unwrap().1] == text[r[1].unwrap().0..r[1].unwrap().1]
        }));
        assert!(eq
            .rows()
            .iter()
            .any(|r| r[0] == Some((0, 1)) && r[1] == Some((3, 4))));
    }

    #[test]
    fn relation_union_aligns_by_name() {
        let a =
            SpanRelation::from_rows(vec!["x".into(), "y".into()], vec![vec![Some((0, 1)), None]]);
        let b =
            SpanRelation::from_rows(vec!["y".into(), "x".into()], vec![vec![None, Some((2, 3))]]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        assert!(u.rows().contains(&vec![Some((2, 3)), None]));
    }
}
