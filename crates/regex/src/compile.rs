//! Continuation-passing Thompson construction: AST → [`Program`].
//!
//! `emit(node, k)` compiles `node` so that every accepting path continues
//! at state `k`. Only loops (`*`, `+`, `{m,}`) need a placeholder patch;
//! everything else falls out of the recursion. Split priority encodes
//! greediness: the primary branch of a greedy loop enters the body, of a
//! lazy loop exits it.

use crate::ast::Ast;
use crate::error::RegexError;
use crate::nfa::{Inst, Program, StateId};
use crate::parser::ParsedPattern;

/// Upper bound on compiled program size; counted repetitions expand by
/// duplication, so `a{1000}{1000}`-style blowups must be rejected rather
/// than eat memory.
const MAX_PROGRAM_SIZE: usize = 100_000;

/// Compiles a parsed pattern into an executable NFA program.
pub fn compile(parsed: &ParsedPattern) -> Result<Program, RegexError> {
    let mut c = Compiler { insts: Vec::new() };
    // Entry chain: Save(0) → body → Save(1) → Match.
    let match_state = c.push(Inst::Match)?;
    let save_end = c.push(Inst::Save {
        slot: 1,
        next: match_state,
    })?;
    let body = c.emit(&parsed.ast, save_end)?;
    let start = c.push(Inst::Save {
        slot: 0,
        next: body,
    })?;
    let program = Program {
        insts: c.insts,
        start,
        slot_count: 2 * (1 + parsed.group_names.len()),
        group_names: parsed.group_names.clone(),
    };
    debug_assert_eq!(program.validate(), Ok(()));
    Ok(program)
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<StateId, RegexError> {
        if self.insts.len() >= MAX_PROGRAM_SIZE {
            return Err(RegexError::syntax(
                0,
                format!("compiled program exceeds {MAX_PROGRAM_SIZE} states"),
            ));
        }
        self.insts.push(inst);
        Ok((self.insts.len() - 1) as StateId)
    }

    /// Compiles `ast` with continuation `k`; returns the entry state.
    fn emit(&mut self, ast: &Ast, k: StateId) -> Result<StateId, RegexError> {
        match ast {
            Ast::Empty => Ok(k),
            Ast::Literal(c) => self.push(Inst::Char { c: *c, next: k }),
            Ast::Class(set) => self.push(Inst::Class {
                set: set.clone(),
                next: k,
            }),
            Ast::AnyChar => self.push(Inst::Any { next: k }),
            Ast::Anchor(kind) => self.push(Inst::Assert {
                kind: *kind,
                next: k,
            }),
            Ast::Concat(parts) => {
                // Fold right so each part continues into the next.
                let mut cont = k;
                for part in parts.iter().rev() {
                    cont = self.emit(part, cont)?;
                }
                Ok(cont)
            }
            Ast::Alternation(branches) => {
                // Right-fold splits; earlier branches get higher priority.
                let mut entries = Vec::with_capacity(branches.len());
                for b in branches {
                    entries.push(self.emit(b, k)?);
                }
                let mut cont = *entries.last().expect("alternation is non-empty");
                for &e in entries.iter().rev().skip(1) {
                    cont = self.push(Inst::Split {
                        primary: e,
                        secondary: cont,
                    })?;
                }
                Ok(cont)
            }
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => self.emit_repeat(node, *min, *max, *greedy, k),
            Ast::Group { index, node, .. } => {
                let open_slot = (2 * index) as u16;
                let close = self.push(Inst::Save {
                    slot: open_slot + 1,
                    next: k,
                })?;
                let body = self.emit(node, close)?;
                self.push(Inst::Save {
                    slot: open_slot,
                    next: body,
                })
            }
        }
    }

    fn emit_repeat(
        &mut self,
        node: &Ast,
        min: u32,
        max: Option<u32>,
        greedy: bool,
        k: StateId,
    ) -> Result<StateId, RegexError> {
        let mut cont = match max {
            None => self.emit_star(node, greedy, k)?,
            Some(max) => {
                // (max - min) nested optional copies; skipping any one of
                // them skips all the rest, so every secondary goes to `k`.
                let mut cont = k;
                for _ in min..max {
                    let body = self.emit(node, cont)?;
                    cont = self.push(if greedy {
                        Inst::Split {
                            primary: body,
                            secondary: k,
                        }
                    } else {
                        Inst::Split {
                            primary: k,
                            secondary: body,
                        }
                    })?;
                }
                cont
            }
        };
        for _ in 0..min {
            cont = self.emit(node, cont)?;
        }
        Ok(cont)
    }

    /// `node*`: loop state with a back edge — the one place that needs a
    /// placeholder patch.
    fn emit_star(&mut self, node: &Ast, greedy: bool, k: StateId) -> Result<StateId, RegexError> {
        let loop_state = self.push(Inst::Split {
            primary: 0, // patched below
            secondary: 0,
        })?;
        let body = self.emit(node, loop_state)?;
        self.insts[loop_state as usize] = if greedy {
            Inst::Split {
                primary: body,
                secondary: k,
            }
        } else {
            Inst::Split {
                primary: k,
                secondary: body,
            }
        };
        Ok(loop_state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(pattern: &str) -> Program {
        compile(&parse(pattern).unwrap()).unwrap()
    }

    #[test]
    fn programs_validate() {
        for pat in [
            "a",
            "abc",
            "a|b|c",
            "a*",
            "a+?",
            "a{2,5}",
            "(a+)(b+)",
            "x{a+}c+y{b+}",
            "[a-z]+@[a-z]+",
            "^a$",
            "",
        ] {
            let p = prog(pat);
            assert_eq!(p.validate(), Ok(()), "pattern {pat:?}");
        }
    }

    #[test]
    fn slot_count_reflects_groups() {
        assert_eq!(prog("abc").slot_count, 2);
        assert_eq!(prog("(a)(b)").slot_count, 6);
        assert_eq!(prog("x{a+}c+y{b+}").slot_count, 6);
    }

    #[test]
    fn group_names_preserved() {
        let p = prog("x{a+}c+y{b+}");
        assert_eq!(
            p.group_names,
            vec![Some("x".to_string()), Some("y".to_string())]
        );
    }

    #[test]
    fn counted_repetition_expands() {
        // a{3} should contain three Char instructions.
        let p = prog("a{3}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char { .. }))
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn oversized_expansion_is_rejected() {
        // Nested counted repetitions expand multiplicatively: 100³ states.
        let big = "(?:(?:(?:a{100}){100}){100})";
        let parsed = parse(big).unwrap();
        assert!(compile(&parsed).is_err());
    }

    #[test]
    fn empty_pattern_compiles_to_immediate_match() {
        let p = prog("");
        // Path: Save0 → Save1 → Match, no consuming instruction.
        assert!(p
            .insts
            .iter()
            .all(|i| !matches!(i, Inst::Char { .. } | Inst::Class { .. } | Inst::Any { .. })));
    }
}
