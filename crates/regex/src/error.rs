//! Error type for pattern parsing and spanner-algebra composition.

use thiserror::Error;

/// Errors raised while parsing a pattern or composing spanners.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Syntax error in the pattern, with byte position and explanation.
    #[error("pattern syntax error at byte {pos}: {msg}")]
    Syntax {
        /// Byte offset of the offending character in the pattern.
        pos: usize,
        /// Human-readable explanation.
        msg: String,
    },

    /// A repetition like `{3,1}` whose bounds are inverted.
    #[error("invalid repetition range {{{min},{max}}}: min exceeds max")]
    BadRepetition {
        /// Lower bound of the repetition.
        min: u32,
        /// Upper bound of the repetition.
        max: u32,
    },

    /// A capture-variable name used more than once in one formula.
    #[error("duplicate capture variable {0:?}")]
    DuplicateVariable(String),

    /// Algebra operation applied to spanners with incompatible variable
    /// sets (union needs equal sets; concatenation/join preconditions
    /// differ — see the operation's documentation).
    #[error("incompatible variable sets for {op}: {left:?} vs {right:?}")]
    VariableMismatch {
        /// Name of the algebra operation.
        op: &'static str,
        /// Variables of the left operand.
        left: Vec<String>,
        /// Variables of the right operand.
        right: Vec<String>,
    },

    /// Projection onto a variable the spanner does not bind.
    #[error("unknown variable {0:?} in projection")]
    UnknownVariable(String),
}

impl RegexError {
    /// Convenience constructor for syntax errors.
    pub fn syntax(pos: usize, msg: impl Into<String>) -> Self {
        RegexError::Syntax {
            pos,
            msg: msg.into(),
        }
    }
}
