//! Character classes as sorted, disjoint ranges of `char`.
//!
//! A [`ClassSet`] is the normalized form of `[a-z0-9_]`, `\d`, `[^abc]`,
//! etc.: an ordered list of non-overlapping, non-adjacent inclusive ranges.
//! Normalization makes membership a binary search and makes set complement
//! (for `[^...]` and `\D`/`\W`/`\S`) straightforward.

/// An inclusive range of characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassRange {
    /// First character of the range.
    pub lo: char,
    /// Last character of the range (inclusive).
    pub hi: char,
}

impl ClassRange {
    /// Builds a range; panics if `lo > hi` (parser validates first).
    pub fn new(lo: char, hi: char) -> Self {
        assert!(lo <= hi, "class range lo must not exceed hi");
        ClassRange { lo, hi }
    }

    /// Single-character range.
    pub fn single(c: char) -> Self {
        ClassRange { lo: c, hi: c }
    }
}

/// A normalized set of characters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ClassSet {
    ranges: Vec<ClassRange>,
}

impl ClassSet {
    /// The empty set.
    pub fn empty() -> Self {
        ClassSet::default()
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unordered) ranges.
    pub fn from_ranges(ranges: impl IntoIterator<Item = ClassRange>) -> Self {
        let mut rs: Vec<ClassRange> = ranges.into_iter().collect();
        rs.sort();
        let mut out: Vec<ClassRange> = Vec::with_capacity(rs.len());
        for r in rs {
            match out.last_mut() {
                // Merge when overlapping or exactly adjacent.
                Some(last) if r.lo as u32 <= (last.hi as u32).saturating_add(1) => {
                    if r.hi > last.hi {
                        last.hi = r.hi;
                    }
                }
                _ => out.push(r),
            }
        }
        ClassSet { ranges: out }
    }

    /// A set containing the single character `c`.
    pub fn single(c: char) -> Self {
        ClassSet {
            ranges: vec![ClassRange::single(c)],
        }
    }

    /// The normalized ranges.
    pub fn ranges(&self) -> &[ClassRange] {
        &self.ranges
    }

    /// Whether the set contains no characters.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Membership test (binary search over the normalized ranges).
    pub fn contains(&self, c: char) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if c < r.lo {
                    std::cmp::Ordering::Greater
                } else if c > r.hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &ClassSet) -> ClassSet {
        ClassSet::from_ranges(self.ranges.iter().chain(other.ranges.iter()).copied())
    }

    /// Complement with respect to the full Unicode scalar range, skipping
    /// the surrogate gap.
    pub fn negate(&self) -> ClassSet {
        let mut out = Vec::new();
        let mut next = 0u32;
        for r in &self.ranges {
            let lo = r.lo as u32;
            if next < lo {
                push_scalar_range(&mut out, next, lo - 1);
            }
            next = (r.hi as u32) + 1;
        }
        if next <= char::MAX as u32 {
            push_scalar_range(&mut out, next, char::MAX as u32);
        }
        ClassSet::from_ranges(out)
    }

    /// `\d`: ASCII digits. (The paper's examples are ASCII; Unicode digit
    /// classes are out of scope and documented as such.)
    pub fn digit() -> Self {
        ClassSet::from_ranges([ClassRange::new('0', '9')])
    }

    /// `\w`: ASCII word characters `[A-Za-z0-9_]`.
    pub fn word() -> Self {
        ClassSet::from_ranges([
            ClassRange::new('A', 'Z'),
            ClassRange::new('a', 'z'),
            ClassRange::new('0', '9'),
            ClassRange::single('_'),
        ])
    }

    /// `\s`: ASCII whitespace `[ \t\n\r\x0b\x0c]`.
    pub fn space() -> Self {
        ClassSet::from_ranges([
            ClassRange::single(' '),
            ClassRange::new('\t', '\r'), // \t \n \x0b \x0c \r
        ])
    }
}

/// Pushes the scalar-value range `[lo, hi]` as char ranges, splitting
/// around the UTF-16 surrogate gap D800–DFFF which are not valid chars.
fn push_scalar_range(out: &mut Vec<ClassRange>, lo: u32, hi: u32) {
    const SUR_LO: u32 = 0xD800;
    const SUR_HI: u32 = 0xDFFF;
    if lo > hi {
        return;
    }
    if hi < SUR_LO || lo > SUR_HI {
        // Entirely outside the gap.
        if let (Some(l), Some(h)) = (char::from_u32(lo), char::from_u32(hi)) {
            out.push(ClassRange::new(l, h));
        }
        return;
    }
    if lo < SUR_LO {
        push_scalar_range(out, lo, SUR_LO - 1);
    }
    if hi > SUR_HI {
        push_scalar_range(out, SUR_HI + 1, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_merges_overlaps_and_adjacent() {
        let s = ClassSet::from_ranges([
            ClassRange::new('a', 'f'),
            ClassRange::new('d', 'k'),
            ClassRange::new('l', 'p'), // adjacent to 'k'
            ClassRange::single('z'),
        ]);
        assert_eq!(
            s.ranges(),
            &[ClassRange::new('a', 'p'), ClassRange::single('z')]
        );
    }

    #[test]
    fn membership() {
        let s = ClassSet::from_ranges([ClassRange::new('a', 'c'), ClassRange::new('x', 'z')]);
        for c in ['a', 'b', 'c', 'x', 'z'] {
            assert!(s.contains(c), "{c}");
        }
        for c in ['d', 'w', 'A', '0'] {
            assert!(!s.contains(c), "{c}");
        }
    }

    #[test]
    fn negation_covers_complement() {
        let s = ClassSet::from_ranges([ClassRange::new('b', 'd')]);
        let n = s.negate();
        assert!(n.contains('a'));
        assert!(!n.contains('b'));
        assert!(!n.contains('d'));
        assert!(n.contains('e'));
        assert!(n.contains('€'));
    }

    #[test]
    fn double_negation_is_identity() {
        let s = ClassSet::from_ranges([ClassRange::new('0', '9'), ClassRange::single('_')]);
        assert_eq!(s.negate().negate(), s);
    }

    #[test]
    fn negation_of_empty_is_everything() {
        let all = ClassSet::empty().negate();
        assert!(all.contains('\0'));
        assert!(all.contains(char::MAX));
        assert!(all.contains('中'));
    }

    #[test]
    fn perl_classes() {
        assert!(ClassSet::digit().contains('7'));
        assert!(!ClassSet::digit().contains('a'));
        assert!(ClassSet::word().contains('_'));
        assert!(ClassSet::word().contains('Q'));
        assert!(!ClassSet::word().contains('-'));
        assert!(ClassSet::space().contains(' '));
        assert!(ClassSet::space().contains('\n'));
        assert!(!ClassSet::space().contains('x'));
    }

    #[test]
    fn union_merges() {
        let u = ClassSet::digit().union(&ClassSet::word());
        assert_eq!(u, ClassSet::word()); // digits ⊆ word chars
    }

    #[test]
    fn negate_skips_surrogates() {
        // The complement of 'a' must not contain surrogate code points —
        // verified indirectly: every range endpoint must be a valid char,
        // and the ranges must jump over D800..DFFF.
        let n = ClassSet::single('a').negate();
        for r in n.ranges() {
            assert!(!(0xD800..=0xDFFF).contains(&(r.lo as u32)));
            assert!(!(0xD800..=0xDFFF).contains(&(r.hi as u32)));
        }
    }
}
