//! Brute-force reference matchers.
//!
//! Two independent implementations of the two matching semantics, written
//! for obviousness rather than speed, used by unit and property tests to
//! cross-check the Pike VM ([`crate::pikevm`]) and the all-configurations
//! simulator ([`crate::allmatches`]):
//!
//! * [`oracle_find_iter`] — classic recursive *backtracking* in priority
//!   order (greedy tries longer first, alternation tries branches in
//!   order), scanning left to right; this is Perl/Python semantics by
//!   construction.
//! * [`oracle_all_matches`] — exhaustive enumeration of every accepting
//!   parse of every substring.

use crate::allmatches::AllMatch;
use crate::ast::Ast;
use crate::nfa::assertion_holds;
use crate::parser::ParsedPattern;
use rustc_hash::FxHashSet;

type Caps = Vec<Option<(usize, usize)>>;

struct Text {
    chars: Vec<char>,
    /// `byte_of[i]` is the byte offset of char `i`; `byte_of[len]` = text len.
    byte_of: Vec<usize>,
}

impl Text {
    fn new(text: &str) -> Self {
        let mut chars = Vec::new();
        let mut byte_of = Vec::new();
        for (b, c) in text.char_indices() {
            byte_of.push(b);
            chars.push(c);
        }
        byte_of.push(text.len());
        Text { chars, byte_of }
    }

    fn len(&self) -> usize {
        self.chars.len()
    }

    fn at(&self, i: usize) -> Option<char> {
        self.chars.get(i).copied()
    }

    fn prev(&self, i: usize) -> Option<char> {
        i.checked_sub(1).and_then(|p| self.chars.get(p).copied())
    }

    fn assertion(&self, kind: crate::ast::AnchorKind, pos: usize) -> bool {
        assertion_holds(kind, pos, self.len(), self.prev(pos), self.at(pos))
    }
}

/// Every `(start, end, groups)` of the leftmost-first non-overlapping scan,
/// in byte offsets — reference for [`crate::Regex::find_iter`].
pub fn oracle_find_iter(parsed: &ParsedPattern, text: &str) -> Vec<AllMatch> {
    let t = Text::new(text);
    let n_groups = parsed.group_names.len();
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos <= t.len() {
        match bt_search(&t, &parsed.ast, n_groups, pos) {
            None => break,
            Some((start, end, caps)) => {
                out.push(to_bytes(&t, start, end, &caps));
                pos = if end > start { end } else { end + 1 };
            }
        }
    }
    out
}

/// Every accepting run of every substring, in byte offsets — reference for
/// [`crate::Regex::all_matches`]. Sorted and deduplicated.
pub fn oracle_all_matches(parsed: &ParsedPattern, text: &str) -> Vec<AllMatch> {
    let t = Text::new(text);
    let n_groups = parsed.group_names.len();
    let mut rows: FxHashSet<AllMatch> = FxHashSet::default();
    for start in 0..=t.len() {
        let caps: Caps = vec![None; n_groups];
        for (end, caps) in enum_match(&t, &parsed.ast, start, &caps) {
            rows.insert(to_bytes(&t, start, end, &caps));
        }
    }
    let mut rows: Vec<AllMatch> = rows.into_iter().collect();
    rows.sort();
    rows
}

fn to_bytes(t: &Text, start: usize, end: usize, caps: &Caps) -> AllMatch {
    AllMatch {
        start: t.byte_of[start],
        end: t.byte_of[end],
        groups: caps
            .iter()
            .map(|g| g.map(|(s, e)| (t.byte_of[s], t.byte_of[e])))
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Backtracking (priority) oracle
// ---------------------------------------------------------------------

/// Leftmost-first search: first start position (scanning right) at which a
/// match exists; within a start, priority order of the backtracker.
fn bt_search(t: &Text, ast: &Ast, n_groups: usize, from: usize) -> Option<(usize, usize, Caps)> {
    for start in from..=t.len() {
        let mut caps: Caps = vec![None; n_groups];
        let mut result: Option<usize> = None;
        let matched = bt(t, ast, start, &mut caps, &mut |end, _| {
            result = Some(end);
            true
        });
        if matched {
            return Some((start, result.expect("continuation ran"), caps));
        }
    }
    None
}

/// Backtracking matcher in continuation-passing style. `k` receives the
/// end position; returning `true` commits (cuts the search).
fn bt(
    t: &Text,
    ast: &Ast,
    pos: usize,
    caps: &mut Caps,
    k: &mut dyn FnMut(usize, &mut Caps) -> bool,
) -> bool {
    match ast {
        Ast::Empty => k(pos, caps),
        Ast::Literal(c) => t.at(pos) == Some(*c) && k(pos + 1, caps),
        Ast::Class(set) => t.at(pos).is_some_and(|c| set.contains(c)) && k(pos + 1, caps),
        Ast::AnyChar => t.at(pos).is_some_and(|c| c != '\n') && k(pos + 1, caps),
        Ast::Anchor(kind) => t.assertion(*kind, pos) && k(pos, caps),
        Ast::Concat(parts) => bt_seq(t, parts, pos, caps, k),
        Ast::Alternation(branches) => {
            for b in branches {
                let saved = caps.clone();
                if bt(t, b, pos, caps, k) {
                    return true;
                }
                *caps = saved;
            }
            false
        }
        Ast::Group { index, node, .. } => {
            let g = (*index - 1) as usize;
            bt(t, node, pos, caps, &mut |end, caps| {
                let old = caps[g];
                caps[g] = Some((pos, end));
                if k(end, caps) {
                    true
                } else {
                    caps[g] = old;
                    false
                }
            })
        }
        Ast::Repeat {
            node,
            min,
            max,
            greedy,
        } => bt_rep(t, node, pos, caps, *min, *max, *greedy, k),
    }
}

fn bt_seq(
    t: &Text,
    parts: &[Ast],
    pos: usize,
    caps: &mut Caps,
    k: &mut dyn FnMut(usize, &mut Caps) -> bool,
) -> bool {
    match parts.split_first() {
        None => k(pos, caps),
        Some((head, rest)) => bt(t, head, pos, caps, &mut |p, c| bt_seq(t, rest, p, c, k)),
    }
}

#[allow(clippy::too_many_arguments)]
fn bt_rep(
    t: &Text,
    node: &Ast,
    pos: usize,
    caps: &mut Caps,
    min: u32,
    max: Option<u32>,
    greedy: bool,
    k: &mut dyn FnMut(usize, &mut Caps) -> bool,
) -> bool {
    if max == Some(0) {
        return k(pos, caps);
    }
    let enter = |caps: &mut Caps, k: &mut dyn FnMut(usize, &mut Caps) -> bool| -> bool {
        bt(t, node, pos, caps, &mut |p2, c2| {
            if p2 == pos && min == 0 && max.is_none() {
                // Empty iteration with no remaining obligation and no
                // bound: looping adds nothing and would not terminate.
                return false;
            }
            bt_rep(
                t,
                node,
                p2,
                c2,
                min.saturating_sub(1),
                max.map(|m| m - 1),
                greedy,
                k,
            )
        })
    };
    if min > 0 {
        let saved = caps.clone();
        if enter(caps, k) {
            return true;
        }
        *caps = saved;
        return false;
    }
    if greedy {
        let saved = caps.clone();
        if enter(caps, k) {
            return true;
        }
        *caps = saved;
        k(pos, caps)
    } else {
        let saved = caps.clone();
        if k(pos, caps) {
            return true;
        }
        *caps = saved;
        enter(caps, k)
    }
}

// ---------------------------------------------------------------------
// All-matches oracle
// ---------------------------------------------------------------------

/// All `(end, caps)` of every accepting parse of `ast` starting at `pos`.
fn enum_match(t: &Text, ast: &Ast, pos: usize, caps: &Caps) -> Vec<(usize, Caps)> {
    let set: FxHashSet<(usize, Caps)> = enum_set(t, ast, pos, caps);
    let mut v: Vec<(usize, Caps)> = set.into_iter().collect();
    v.sort();
    v
}

fn enum_set(t: &Text, ast: &Ast, pos: usize, caps: &Caps) -> FxHashSet<(usize, Caps)> {
    let mut out = FxHashSet::default();
    match ast {
        Ast::Empty => {
            out.insert((pos, caps.clone()));
        }
        Ast::Literal(c) => {
            if t.at(pos) == Some(*c) {
                out.insert((pos + 1, caps.clone()));
            }
        }
        Ast::Class(set) => {
            if t.at(pos).is_some_and(|c| set.contains(c)) {
                out.insert((pos + 1, caps.clone()));
            }
        }
        Ast::AnyChar => {
            if t.at(pos).is_some_and(|c| c != '\n') {
                out.insert((pos + 1, caps.clone()));
            }
        }
        Ast::Anchor(kind) => {
            if t.assertion(*kind, pos) {
                out.insert((pos, caps.clone()));
            }
        }
        Ast::Concat(parts) => {
            let mut states: FxHashSet<(usize, Caps)> = FxHashSet::default();
            states.insert((pos, caps.clone()));
            for part in parts {
                let mut next = FxHashSet::default();
                for (p, c) in &states {
                    next.extend(enum_set(t, part, *p, c));
                }
                states = next;
                if states.is_empty() {
                    break;
                }
            }
            out = states;
        }
        Ast::Alternation(branches) => {
            for b in branches {
                out.extend(enum_set(t, b, pos, caps));
            }
        }
        Ast::Group { index, node, .. } => {
            let g = (*index - 1) as usize;
            for (end, mut c) in enum_set(t, node, pos, caps) {
                c[g] = Some((pos, end));
                out.insert((end, c));
            }
        }
        Ast::Repeat { node, min, max, .. } => {
            // Mandatory part: exactly `min` iterations, layer by layer.
            let mut states: FxHashSet<(usize, Caps)> = FxHashSet::default();
            states.insert((pos, caps.clone()));
            for _ in 0..*min {
                let mut next = FxHashSet::default();
                for (p, c) in &states {
                    next.extend(enum_set(t, node, *p, c));
                }
                states = next;
                if states.is_empty() {
                    return out;
                }
            }
            // Optional part: BFS up to (max - min) further iterations;
            // dedupe is sound because a revisited (pos, caps) has an
            // identical future.
            out.extend(states.iter().cloned());
            let budget = max.map(|m| m - *min);
            let mut visited = states.clone();
            let mut frontier = states;
            let mut extra = 0u32;
            while budget.is_none_or(|b| extra < b) {
                let mut next = FxHashSet::default();
                for (p, c) in &frontier {
                    for r in enum_set(t, node, *p, c) {
                        if visited.insert(r.clone()) {
                            next.insert(r);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                out.extend(next.iter().cloned());
                frontier = next;
                extra += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn find_all(pattern: &str, text: &str) -> Vec<(usize, usize)> {
        oracle_find_iter(&parse(pattern).unwrap(), text)
            .into_iter()
            .map(|m| (m.start, m.end))
            .collect()
    }

    #[test]
    fn paper_example_exact() {
        // §2: rgx over "acb aacccbbb" with α = x{a+}c+y{b+} returns
        // exactly (⟨0,1⟩, ⟨2,3⟩) and (⟨4,6⟩, ⟨9,12⟩).
        let parsed = parse("x{a+}c+y{b+}").unwrap();
        let ms = oracle_find_iter(&parsed, "acb aacccbbb");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].groups, vec![Some((0, 1)), Some((2, 3))]);
        assert_eq!(ms[1].groups, vec![Some((4, 6)), Some((9, 12))]);
    }

    #[test]
    fn scan_is_non_overlapping() {
        assert_eq!(find_all("aa", "aaaa"), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn empty_matches_advance() {
        // Python: re.findall(r'a*', 'baa') → ['', 'aa', ''].
        assert_eq!(find_all("a*", "baa"), vec![(0, 0), (1, 3), (3, 3)]);
    }

    #[test]
    fn greedy_vs_lazy() {
        assert_eq!(find_all("<.+>", "<a><b>"), vec![(0, 6)]);
        assert_eq!(find_all("<.+?>", "<a><b>"), vec![(0, 3), (3, 6)]);
    }

    #[test]
    fn nested_repetition_terminates() {
        assert_eq!(find_all("(a*)*", "aa"), vec![(0, 2), (2, 2)]);
    }

    #[test]
    fn all_matches_exhaustive_on_small_case() {
        let parsed = parse("a+").unwrap();
        let rows = oracle_all_matches(&parsed, "aa");
        let spans: Vec<(usize, usize)> = rows.iter().map(|m| (m.start, m.end)).collect();
        assert_eq!(spans, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn all_matches_with_bounded_repeat_and_empty_body() {
        // (?:a?){2} over "": the empty parse exists.
        let parsed = parse("(?:a?){2}").unwrap();
        let rows = oracle_all_matches(&parsed, "");
        assert_eq!(rows.len(), 1);
        assert_eq!((rows[0].start, rows[0].end), (0, 0));
    }

    #[test]
    fn min_repetitions_enforced() {
        let parsed = parse("a{3,}").unwrap();
        assert!(oracle_all_matches(&parsed, "aa").is_empty());
        assert_eq!(oracle_all_matches(&parsed, "aaa").len(), 1);
    }
}
