//! Abstract syntax of regex formulas.
//!
//! The AST distinguishes *capture groups* — which may carry a spanner
//! variable name, as in the paper's `x{a+}` notation — from grouping-only
//! parentheses, which the parser flattens away.

use crate::classes::ClassSet;
use std::fmt;

/// Zero-width assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnchorKind {
    /// `^` — start of the input.
    StartText,
    /// `$` — end of the input.
    EndText,
    /// `\b` — word boundary.
    WordBoundary,
    /// `\B` — not a word boundary.
    NotWordBoundary,
}

/// A node of the regex-formula AST.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// A character class (`[...]`, `\d`, …).
    Class(ClassSet),
    /// `.` — any character except `\n` (Python `re` default).
    AnyChar,
    /// A zero-width assertion.
    Anchor(AnchorKind),
    /// Concatenation of sub-patterns, in order.
    Concat(Vec<Ast>),
    /// Ordered alternation (`a|b|c`); order encodes match priority.
    Alternation(Vec<Ast>),
    /// Repetition of a sub-pattern.
    Repeat {
        /// The repeated sub-pattern.
        node: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions; `None` means unbounded.
        max: Option<u32>,
        /// Greedy (`a*`) vs lazy (`a*?`) priority.
        greedy: bool,
    },
    /// A capture group. `index` is the 1-based group number (group 0 is the
    /// implicit whole match); `name` is the spanner variable, if any.
    Group {
        /// 1-based capture index.
        index: u32,
        /// Optional spanner-variable / group name.
        name: Option<String>,
        /// The captured sub-pattern.
        node: Box<Ast>,
    },
}

impl Ast {
    /// Concatenation that collapses the trivial cases.
    pub fn concat(mut parts: Vec<Ast>) -> Ast {
        match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("len checked"),
            _ => Ast::Concat(parts),
        }
    }

    /// Alternation that collapses the single-branch case.
    pub fn alternation(mut branches: Vec<Ast>) -> Ast {
        match branches.len() {
            0 => Ast::Empty,
            1 => branches.pop().expect("len checked"),
            _ => Ast::Alternation(branches),
        }
    }

    /// Whether the pattern can match the empty string (conservative exact
    /// computation over the AST; anchors count as nullable).
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty | Ast::Anchor(_) => true,
            Ast::Literal(_) | Ast::Class(_) | Ast::AnyChar => false,
            Ast::Concat(parts) => parts.iter().all(Ast::is_nullable),
            Ast::Alternation(branches) => branches.iter().any(Ast::is_nullable),
            Ast::Repeat { node, min, .. } => *min == 0 || node.is_nullable(),
            Ast::Group { node, .. } => node.is_nullable(),
        }
    }

    /// Collects `(index, name)` of every capture group, in index order.
    pub fn capture_groups(&self) -> Vec<(u32, Option<String>)> {
        fn walk(ast: &Ast, out: &mut Vec<(u32, Option<String>)>) {
            match ast {
                Ast::Group { index, name, node } => {
                    out.push((*index, name.clone()));
                    walk(node, out);
                }
                Ast::Concat(parts) | Ast::Alternation(parts) => {
                    for p in parts {
                        walk(p, out);
                    }
                }
                Ast::Repeat { node, .. } => walk(node, out),
                _ => {}
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_by_key(|(i, _)| *i);
        out
    }
}

impl fmt::Display for Ast {
    /// Renders a pattern string that re-parses to an equivalent AST (used
    /// by round-trip tests). Literals that collide with metacharacters are
    /// escaped.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => {
                if "\\.+*?()|[]{}^$".contains(*c) {
                    write!(f, "\\{c}")
                } else {
                    write!(f, "{c}")
                }
            }
            Ast::Class(set) => {
                write!(f, "[")?;
                for r in set.ranges() {
                    if r.lo == r.hi {
                        write_class_char(f, r.lo)?;
                    } else {
                        write_class_char(f, r.lo)?;
                        write!(f, "-")?;
                        write_class_char(f, r.hi)?;
                    }
                }
                write!(f, "]")
            }
            Ast::AnyChar => write!(f, "."),
            Ast::Anchor(AnchorKind::StartText) => write!(f, "^"),
            Ast::Anchor(AnchorKind::EndText) => write!(f, "$"),
            Ast::Anchor(AnchorKind::WordBoundary) => write!(f, "\\b"),
            Ast::Anchor(AnchorKind::NotWordBoundary) => write!(f, "\\B"),
            Ast::Concat(parts) => {
                for p in parts {
                    if matches!(p, Ast::Alternation(_)) {
                        write!(f, "(?:{p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Ast::Alternation(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => {
                let needs_group = !matches!(
                    node.as_ref(),
                    Ast::Literal(_) | Ast::Class(_) | Ast::AnyChar | Ast::Group { .. }
                );
                if needs_group {
                    write!(f, "(?:{node})")?;
                } else {
                    write!(f, "{node}")?;
                }
                match (min, max) {
                    (0, None) => write!(f, "*")?,
                    (1, None) => write!(f, "+")?,
                    (0, Some(1)) => write!(f, "?")?,
                    (m, None) => write!(f, "{{{m},}}")?,
                    (m, Some(n)) if m == n => write!(f, "{{{m}}}")?,
                    (m, Some(n)) => write!(f, "{{{m},{n}}}")?,
                }
                if !greedy {
                    write!(f, "?")?;
                }
                Ok(())
            }
            Ast::Group { name, node, .. } => match name {
                Some(n) => write!(f, "(?<{n}>{node})"),
                None => write!(f, "({node})"),
            },
        }
    }
}

fn write_class_char(f: &mut fmt::Formatter<'_>, c: char) -> fmt::Result {
    if "\\]^-[".contains(c) {
        write!(f, "\\{c}")
    } else {
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_collapses() {
        assert_eq!(Ast::concat(vec![]), Ast::Empty);
        assert_eq!(Ast::concat(vec![Ast::Literal('a')]), Ast::Literal('a'));
        assert!(matches!(
            Ast::concat(vec![Ast::Literal('a'), Ast::Literal('b')]),
            Ast::Concat(_)
        ));
    }

    #[test]
    fn nullability() {
        assert!(Ast::Empty.is_nullable());
        assert!(!Ast::Literal('a').is_nullable());
        let star = Ast::Repeat {
            node: Box::new(Ast::Literal('a')),
            min: 0,
            max: None,
            greedy: true,
        };
        assert!(star.is_nullable());
        let plus = Ast::Repeat {
            node: Box::new(Ast::Literal('a')),
            min: 1,
            max: None,
            greedy: true,
        };
        assert!(!plus.is_nullable());
        assert!(Ast::Anchor(AnchorKind::StartText).is_nullable());
    }

    #[test]
    fn capture_group_listing() {
        let ast = Ast::Concat(vec![
            Ast::Group {
                index: 2,
                name: Some("y".into()),
                node: Box::new(Ast::Literal('b')),
            },
            Ast::Group {
                index: 1,
                name: Some("x".into()),
                node: Box::new(Ast::Literal('a')),
            },
        ]);
        let groups = ast.capture_groups();
        assert_eq!(
            groups,
            vec![(1, Some("x".to_string())), (2, Some("y".to_string()))]
        );
    }

    #[test]
    fn display_escapes_metacharacters() {
        assert_eq!(Ast::Literal('+').to_string(), "\\+");
        assert_eq!(Ast::Literal('a').to_string(), "a");
    }
}
