//! # spannerlib-regex
//!
//! A from-scratch regex-formula engine with **document-spanner semantics**.
//!
//! Regex formulas — regular expressions with capture variables — are the
//! canonical IE functions of the document-spanner framework (Fagin et al.,
//! *J. ACM* 2015) and of the paper's `rgxα` primitives (§2). This crate
//! implements them without depending on any external regex library, because
//! the matching semantics *is* part of the system under reproduction:
//!
//! * [`Regex::find_iter`] — **leftmost-first, non-overlapping** scanning
//!   (the semantics of Python's `re`, which the original SpannerLib wraps).
//!   The paper's worked example (§2: `x{a+}c+y{b+}` over `acb aacccbbb`
//!   yields exactly two matches) holds under this mode.
//! * [`Regex::all_matches`] — the **formal spanner semantics**: every span
//!   ⟨i, j⟩ such that the formula matches `d[i..j]` in its entirety,
//!   together with *every* capture-variable assignment of every accepting
//!   run. This is the ⟦γ⟧(d) of the theory.
//!
//! The pattern syntax is classic regex (alternation, repetition,
//! character classes, anchors, `(...)`/`(?:...)`/`(?<name>...)` groups)
//! extended with *spanner variable groups* `x{...}` as written in the
//! paper — `x{a+}c+y{b+}` binds variables `x` and `y`.
//!
//! On top of single formulas, [`algebra`] provides the spanner-algebra
//! combinators (union, concatenation, Kleene star, projection at the
//! automaton level; natural join, selection, union at the relation level)
//! that make the representation closed under the relational operators.
//!
//! Internals: patterns parse to an [`ast::Ast`], compile to a Thompson NFA
//! with capture slots ([`nfa::Program`]), and execute on a Pike VM
//! ([`pikevm`]) or an all-configurations simulator ([`allmatches`]). A
//! literal [`prefilter`] extracted from the AST lets the scanning entry
//! points launch the VM only at candidate offsets. A brute-force
//! backtracking [`oracle`] ships with the crate as the reference
//! semantics for tests.

pub mod algebra;
pub mod allmatches;
pub mod ast;
pub mod classes;
pub mod compile;
pub mod error;
pub mod nfa;
pub mod oracle;
pub mod parser;
pub mod pikevm;
pub mod prefilter;
pub mod regex;

pub use crate::regex::{Captures, Match, Regex};
pub use algebra::{SpanRelation, Spanner};
pub use allmatches::AllMatch;
pub use error::RegexError;
pub use prefilter::{Prefilter, PrefilterStats};
