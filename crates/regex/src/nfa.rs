//! Thompson NFA with capture slots — the compiled form of a regex formula.
//!
//! Every instruction carries explicit successor state ids (no fallthrough),
//! which keeps the continuation-passing compiler in [`crate::compile`]
//! free of patch-up passes except for loops. Split instructions order
//! their branches by **priority**: the first branch is preferred, which is
//! how greedy/lazy repetition and ordered alternation are encoded.

use crate::ast::AnchorKind;
use crate::classes::ClassSet;

/// Index of a state/instruction in a [`Program`].
pub type StateId = u32;

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Consume exactly the character `c`.
    Char {
        /// The expected character.
        c: char,
        /// Successor state.
        next: StateId,
    },
    /// Consume any character in `set`.
    Class {
        /// The accepting character set.
        set: ClassSet,
        /// Successor state.
        next: StateId,
    },
    /// Consume any character except `\n` (the `.` semantics of Python).
    Any {
        /// Successor state.
        next: StateId,
    },
    /// Record the current input offset into capture slot `slot`.
    Save {
        /// Slot index; group *k* uses slots `2k` (open) and `2k+1` (close).
        slot: u16,
        /// Successor state.
        next: StateId,
    },
    /// Zero-width assertion.
    Assert {
        /// The assertion to check at the current position.
        kind: AnchorKind,
        /// Successor state.
        next: StateId,
    },
    /// Nondeterministic branch; `primary` has higher priority.
    Split {
        /// Preferred branch (tried first under backtracking semantics).
        primary: StateId,
        /// Fallback branch.
        secondary: StateId,
    },
    /// Accept.
    Match,
}

impl Inst {
    /// Successor states of this instruction, in priority order.
    pub fn successors(&self) -> impl Iterator<Item = StateId> {
        let (a, b) = match *self {
            Inst::Char { next, .. }
            | Inst::Class { next, .. }
            | Inst::Any { next }
            | Inst::Save { next, .. }
            | Inst::Assert { next, .. } => (Some(next), None),
            Inst::Split { primary, secondary } => (Some(primary), Some(secondary)),
            Inst::Match => (None, None),
        };
        a.into_iter().chain(b)
    }
}

/// A compiled regex formula.
#[derive(Debug, Clone)]
pub struct Program {
    /// The instruction pool; state ids index into it.
    pub insts: Vec<Inst>,
    /// Entry state.
    pub start: StateId,
    /// Total number of capture slots, `2 * (1 + explicit groups)`.
    pub slot_count: usize,
    /// Names of explicit groups (index `i` holds group `i + 1`'s name).
    pub group_names: Vec<Option<String>>,
}

impl Program {
    /// Number of explicit capture groups.
    pub fn group_count(&self) -> usize {
        self.group_names.len()
    }

    /// The instruction at `id`.
    pub fn inst(&self, id: StateId) -> &Inst {
        &self.insts[id as usize]
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no states (never true for compiled output).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Sanity-checks that every successor id is in bounds and every save
    /// slot is within `slot_count`. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if (self.start as usize) >= self.insts.len() {
            return Err(format!("start state {} out of bounds", self.start));
        }
        for (i, inst) in self.insts.iter().enumerate() {
            for s in inst.successors() {
                if (s as usize) >= self.insts.len() {
                    return Err(format!("inst {i} points to out-of-bounds state {s}"));
                }
            }
            if let Inst::Save { slot, .. } = inst {
                if *slot as usize >= self.slot_count {
                    return Err(format!(
                        "inst {i} saves slot {slot} but slot_count is {}",
                        self.slot_count
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Evaluates a zero-width assertion at byte position `at` of `text`,
/// where `prev` is the character immediately before `at` (if any) and
/// `next` the character starting at `at` (if any).
pub fn assertion_holds(
    kind: AnchorKind,
    at: usize,
    len: usize,
    prev: Option<char>,
    next: Option<char>,
) -> bool {
    fn is_word(c: Option<char>) -> bool {
        c.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    }
    match kind {
        AnchorKind::StartText => at == 0,
        AnchorKind::EndText => at == len,
        AnchorKind::WordBoundary => is_word(prev) != is_word(next),
        AnchorKind::NotWordBoundary => is_word(prev) == is_word(next),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successors_enumerate_in_priority_order() {
        let split = Inst::Split {
            primary: 3,
            secondary: 7,
        };
        assert_eq!(split.successors().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(Inst::Match.successors().count(), 0);
        let ch = Inst::Char { c: 'a', next: 5 };
        assert_eq!(ch.successors().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn validate_catches_bad_targets() {
        let prog = Program {
            insts: vec![Inst::Char { c: 'a', next: 9 }],
            start: 0,
            slot_count: 2,
            group_names: vec![],
        };
        assert!(prog.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_slots() {
        let prog = Program {
            insts: vec![Inst::Save { slot: 4, next: 1 }, Inst::Match],
            start: 0,
            slot_count: 2,
            group_names: vec![],
        };
        assert!(prog.validate().is_err());
    }

    #[test]
    fn word_boundary_semantics() {
        use AnchorKind::*;
        // "ab cd": boundary at 0, 2, 3, 5.
        let cases = [
            (0, None, Some('a'), true),
            (1, Some('a'), Some('b'), false),
            (2, Some('b'), Some(' '), true),
            (3, Some(' '), Some('c'), true),
            (5, Some('d'), None, true),
        ];
        for (at, prev, next, expect) in cases {
            assert_eq!(
                assertion_holds(WordBoundary, at, 5, prev, next),
                expect,
                "at {at}"
            );
            assert_eq!(
                assertion_holds(NotWordBoundary, at, 5, prev, next),
                !expect,
                "at {at}"
            );
        }
    }

    #[test]
    fn text_anchors() {
        use AnchorKind::*;
        assert!(assertion_holds(StartText, 0, 3, None, Some('a')));
        assert!(!assertion_holds(StartText, 1, 3, Some('a'), Some('b')));
        assert!(assertion_holds(EndText, 3, 3, Some('c'), None));
        assert!(!assertion_holds(EndText, 2, 3, Some('b'), Some('c')));
    }
}
