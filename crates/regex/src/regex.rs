//! Public API: compiled patterns with both matching semantics.

use crate::allmatches::{all_matches, all_matches_bounded, AllMatch};
use crate::compile::compile;
use crate::error::RegexError;
use crate::nfa::Program;
use crate::parser::{parse, ParsedPattern};
use crate::pikevm;
use crate::prefilter::{self, Prefilter};

/// A compiled regex formula.
///
/// Construction parses and compiles once; matching never re-parses. The
/// two entry points correspond to the two semantics described in the crate
/// docs: [`Regex::find_iter`] (Python-style scanning, used by the `rgx` IE
/// function) and [`Regex::all_matches`] (formal spanner semantics, used by
/// `rgx_all` and the spanner algebra).
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    parsed: ParsedPattern,
    program: Program,
    /// Literal obligation extracted at compile time; lets the scanning
    /// entry points skip VM launches (see [`crate::prefilter`]).
    prefilter: Option<Prefilter>,
}

/// A single match: the byte range of group 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Match {
    /// Byte offset of the match start.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

impl Match {
    /// Extracts the matched substring.
    pub fn as_str<'t>(&self, text: &'t str) -> &'t str {
        &text[self.start..self.end]
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A match together with its capture groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Captures {
    /// `groups[0]` is the whole match; `groups[k]` is group `k`.
    groups: Vec<Option<(usize, usize)>>,
}

impl Captures {
    /// Byte range of group `k` (0 = whole match), if it participated.
    pub fn group(&self, k: usize) -> Option<(usize, usize)> {
        self.groups.get(k).copied().flatten()
    }

    /// The whole match.
    pub fn whole(&self) -> Match {
        let (start, end) = self.groups[0].expect("group 0 always set on a match");
        Match { start, end }
    }

    /// Number of groups including group 0.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no explicit groups (only group 0).
    pub fn is_empty(&self) -> bool {
        self.groups.len() <= 1
    }

    /// Iterates over the explicit groups (1..), in index order.
    pub fn explicit_groups(&self) -> impl Iterator<Item = Option<(usize, usize)>> + '_ {
        self.groups.iter().skip(1).copied()
    }
}

impl Regex {
    /// Parses and compiles `pattern`.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let parsed = parse(pattern)?;
        let program = compile(&parsed)?;
        let prefilter = Prefilter::build(&parsed.ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            parsed,
            program,
            prefilter,
        })
    }

    /// The original pattern string.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of explicit capture groups.
    pub fn group_count(&self) -> usize {
        self.program.group_count()
    }

    /// Names of the explicit groups, in index order (`None` = unnamed).
    pub fn group_names(&self) -> &[Option<String>] {
        &self.program.group_names
    }

    /// The parsed AST (used by the test oracles).
    pub fn parsed(&self) -> &ParsedPattern {
        &self.parsed
    }

    /// The compiled program (used by benches and the algebra layer).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The literal prefilter extracted from the pattern, if any (used by
    /// tests and benchmark reporting).
    pub fn prefilter(&self) -> Option<&Prefilter> {
        self.prefilter.as_ref()
    }

    /// Single scan entry point: routes through the prefilter when one
    /// exists and prefiltering is globally enabled.
    fn search_at(&self, text: &str, start: usize) -> Option<pikevm::SearchResult> {
        match self.prefilter.as_ref().filter(|_| prefilter::enabled()) {
            Some(pf) => pf.search(&self.program, text, start),
            None => pikevm::search(&self.program, text, start),
        }
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.search_at(text, 0).is_some()
    }

    /// Leftmost-first match, if any.
    pub fn find(&self, text: &str) -> Option<Match> {
        self.find_at(text, 0)
    }

    /// Leftmost-first match at or after byte `start`.
    pub fn find_at(&self, text: &str, start: usize) -> Option<Match> {
        self.search_at(text, start).map(|r| {
            let (s, e) = r.group(0).expect("group 0 set");
            Match { start: s, end: e }
        })
    }

    /// Leftmost-first captures, if any.
    pub fn captures(&self, text: &str) -> Option<Captures> {
        self.captures_at(text, 0)
    }

    /// Leftmost-first captures at or after byte `start`.
    pub fn captures_at(&self, text: &str, start: usize) -> Option<Captures> {
        self.search_at(text, start).map(|r| Captures {
            groups: (0..=self.group_count()).map(|k| r.group(k)).collect(),
        })
    }

    /// Non-overlapping leftmost-first scan (Python `re.finditer`).
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter {
            regex: self,
            text,
            pos: 0,
            done: false,
        }
    }

    /// Non-overlapping scan yielding captures.
    pub fn captures_iter<'r, 't>(&'r self, text: &'t str) -> CapturesIter<'r, 't> {
        CapturesIter {
            regex: self,
            text,
            pos: 0,
            done: false,
        }
    }

    /// Formal spanner semantics: every accepting run of every substring,
    /// sorted.
    pub fn all_matches(&self, text: &str) -> Vec<AllMatch> {
        all_matches(&self.program, text)
    }

    /// [`Regex::all_matches`] truncated after `limit` rows.
    pub fn all_matches_bounded(&self, text: &str, limit: usize) -> Vec<AllMatch> {
        all_matches_bounded(&self.program, text, limit)
    }
}

/// Iterator over non-overlapping matches.
pub struct FindIter<'r, 't> {
    regex: &'r Regex,
    text: &'t str,
    pos: usize,
    done: bool,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        let (m, next_pos, done) = step(self.regex, self.text, self.pos, self.done)?;
        self.pos = next_pos;
        self.done = done;
        Some(Match {
            start: m.whole().start,
            end: m.whole().end,
        })
    }
}

/// Iterator over non-overlapping captures.
pub struct CapturesIter<'r, 't> {
    regex: &'r Regex,
    text: &'t str,
    pos: usize,
    done: bool,
}

impl Iterator for CapturesIter<'_, '_> {
    type Item = Captures;

    fn next(&mut self) -> Option<Captures> {
        let (m, next_pos, done) = step(self.regex, self.text, self.pos, self.done)?;
        self.pos = next_pos;
        self.done = done;
        Some(m)
    }
}

/// Shared scan step: find at `pos`, compute the next scan position using
/// the empty-match advance rule (Python semantics: after an empty match,
/// skip one character).
fn step(regex: &Regex, text: &str, pos: usize, done: bool) -> Option<(Captures, usize, bool)> {
    if done {
        return None;
    }
    let caps = regex.captures_at(text, pos)?;
    let m = caps.whole();
    if m.end > m.start {
        Some((caps, m.end, false))
    } else {
        // Empty match: advance one char; flag completion at text end.
        match text[m.end..].chars().next() {
            Some(c) => Some((caps, m.end + c.len_utf8(), false)),
            None => Some((caps, m.end, true)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(pattern: &str, text: &str) -> Vec<(usize, usize)> {
        Regex::new(pattern)
            .unwrap()
            .find_iter(text)
            .map(|m| (m.start, m.end))
            .collect()
    }

    #[test]
    fn paper_worked_example_is_exact() {
        // §2: α = x{a+}c+y{b+}, d = "acb aacccbbb" — rgxα(d) returns the
        // tuples (⟨0,1⟩, ⟨2,3⟩) and (⟨4,6⟩, ⟨9,12⟩), i.e. (a, b) and
        // (aa, bbb).
        let re = Regex::new("x{a+}c+y{b+}").unwrap();
        let d = "acb aacccbbb";
        let rows: Vec<Vec<Option<(usize, usize)>>> = re
            .captures_iter(d)
            .map(|c| c.explicit_groups().collect())
            .collect();
        assert_eq!(
            rows,
            vec![
                vec![Some((0, 1)), Some((2, 3))],
                vec![Some((4, 6)), Some((9, 12))],
            ]
        );
        assert_eq!(&d[0..1], "a");
        assert_eq!(&d[2..3], "b");
        assert_eq!(&d[4..6], "aa");
        assert_eq!(&d[9..12], "bbb");
    }

    #[test]
    fn email_pattern_of_section_3() {
        // The §3.2 embedding example: user/domain extraction.
        let re = Regex::new(r"(\w+)@(\w+)\.\w+").unwrap();
        let text = "write ann@gmail.com or bob@work.org";
        let pairs: Vec<(String, String)> = re
            .captures_iter(text)
            .map(|c| {
                let (us, ue) = c.group(1).unwrap();
                let (ds, de) = c.group(2).unwrap();
                (text[us..ue].to_string(), text[ds..de].to_string())
            })
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("ann".to_string(), "gmail".to_string()),
                ("bob".to_string(), "work".to_string()),
            ]
        );
    }

    #[test]
    fn find_iter_nonoverlapping() {
        assert_eq!(spans("aa", "aaaaa"), vec![(0, 2), (2, 4)]);
    }

    #[test]
    fn empty_match_scan_matches_python() {
        // Python: [m.span() for m in re.finditer(r'a*', 'baa')]
        //         → [(0, 0), (1, 3), (3, 3)]
        assert_eq!(spans("a*", "baa"), vec![(0, 0), (1, 3), (3, 3)]);
        // Python: re.finditer(r'', 'ab') → [(0,0), (1,1), (2,2)]
        assert_eq!(spans("", "ab"), vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn empty_match_after_final_char() {
        // Python: re.finditer(r'a*', 'aa') → [(0, 2), (2, 2)]
        assert_eq!(spans("a*", "aa"), vec![(0, 2), (2, 2)]);
    }

    #[test]
    fn is_match_and_find() {
        let re = Regex::new("b+").unwrap();
        assert!(re.is_match("abc"));
        assert!(!re.is_match("acd"));
        assert_eq!(re.find("abbc"), Some(Match { start: 1, end: 3 }));
    }

    #[test]
    fn match_as_str() {
        let re = Regex::new("b+").unwrap();
        let m = re.find("abbc").unwrap();
        assert_eq!(m.as_str("abbc"), "bb");
    }

    #[test]
    fn group_names_surface() {
        let re = Regex::new("x{a}(b)(?<z>c)").unwrap();
        assert_eq!(
            re.group_names(),
            &[Some("x".to_string()), None, Some("z".to_string())]
        );
        assert_eq!(re.group_count(), 3);
    }

    #[test]
    fn syntax_errors_propagate() {
        assert!(Regex::new("a(").is_err());
        assert!(Regex::new("[a").is_err());
    }

    #[test]
    fn all_matches_contains_every_findall_row() {
        let re = Regex::new("x{a+}c+y{b+}").unwrap();
        let d = "acb aacccbbb";
        let all = re.all_matches(d);
        for caps in re.captures_iter(d) {
            let row: Vec<Option<(usize, usize)>> = caps.explicit_groups().collect();
            let (s, e) = caps.group(0).unwrap();
            assert!(
                all.iter()
                    .any(|m| m.start == s && m.end == e && m.groups == row),
                "findall row {row:?} missing from all_matches"
            );
        }
    }
}
