//! Literal prefiltering: skip the Pike VM when a cheap substring scan
//! proves no match can exist.
//!
//! [`Prefilter::build`] walks the parsed [`Ast`] and extracts either a
//! **required prefix** — a literal every match must start with — or a
//! **required infix** — a literal every match must contain somewhere. At
//! search time the prefix variant launches the VM *anchored* at each
//! prefix occurrence (located with `str::find`, which runs a fast
//! substring algorithm instead of the `O(n · m)` VM scan); the infix
//! variant rejects a document outright when the literal is absent.
//!
//! Correctness: a prefilter never changes results, it only skips VM work
//! that provably cannot produce a match. The leftmost-first contract is
//! preserved by the prefix variant because every match start is a prefix
//! occurrence, so the first occurrence at which an anchored run succeeds
//! *is* the leftmost match, and the anchored VM keeps Perl priority among
//! the matches starting there (property-tested against the backtracking
//! oracle in `tests/properties.rs`). Patterns that can match the empty
//! string match *everywhere* and therefore never get a prefilter.
//!
//! Process-wide counters record how many searches consulted a prefilter
//! and how many were pruned without launching the VM at all; the engine's
//! trace layer surfaces both in evaluation profiles, and
//! [`set_enabled`]`(false)` turns prefiltering off globally so benchmarks
//! can A/B it.

use crate::ast::Ast;
use crate::nfa::Program;
use crate::pikevm::{self, SearchResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Longest literal we bother materializing for a counted repetition, so
/// `a{1000000}` doesn't allocate a megabyte of needle.
const MAX_REPEAT_LITERAL: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(true);
static SEARCHES: AtomicU64 = AtomicU64::new(0);
static PRUNED: AtomicU64 = AtomicU64::new(0);

/// Globally enables or disables prefiltering (on by default).
///
/// Disabling never changes match results — only how they are computed —
/// so the toggle exists purely for benchmarking and debugging.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether prefiltering is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Snapshot of the process-wide prefilter counters.
///
/// Monotonically increasing; consumers diff two snapshots to attribute
/// activity to one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Searches that consulted a prefilter.
    pub searches: u64,
    /// Searches the prefilter answered without launching the VM at all.
    pub pruned: u64,
}

/// Reads the current counter values.
pub fn stats() -> PrefilterStats {
    PrefilterStats {
        searches: SEARCHES.load(Ordering::Relaxed),
        pruned: PRUNED.load(Ordering::Relaxed),
    }
}

/// A literal obligation extracted from a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prefilter {
    /// Every match starts with this non-empty literal.
    Prefix(String),
    /// Every match contains this non-empty literal.
    Infix(String),
}

impl Prefilter {
    /// Extracts a prefilter from a parsed pattern, preferring the
    /// stronger prefix form. Returns `None` when the pattern carries no
    /// useful literal obligation (e.g. `[ab]+`, `.*`, or anything
    /// nullable).
    pub fn build(ast: &Ast) -> Option<Prefilter> {
        // An empty-capable pattern matches at every position; no literal
        // scan can rule any position out.
        if ast.is_nullable() {
            return None;
        }
        let (prefix, _) = prefix_of(ast);
        if !prefix.is_empty() {
            return Some(Prefilter::Prefix(prefix));
        }
        required_infix(ast).map(Prefilter::Infix)
    }

    /// The literal this prefilter scans for.
    pub fn literal(&self) -> &str {
        match self {
            Prefilter::Prefix(s) | Prefilter::Infix(s) => s,
        }
    }

    /// Prefiltered equivalent of [`pikevm::search`]: same result, less
    /// VM work. Updates the process-wide counters.
    pub fn search(&self, program: &Program, text: &str, from: usize) -> Option<SearchResult> {
        SEARCHES.fetch_add(1, Ordering::Relaxed);
        match self {
            Prefilter::Prefix(lit) => {
                // Candidate starts are exactly the occurrences of the
                // prefix; `str::find` locates them far faster than
                // seeding the VM at every position.
                let step = lit.chars().next().map_or(1, char::len_utf8);
                let mut at = from;
                let mut launched = false;
                loop {
                    let Some(off) = text[at..].find(lit.as_str()) else {
                        if !launched {
                            PRUNED.fetch_add(1, Ordering::Relaxed);
                        }
                        return None;
                    };
                    let pos = at + off;
                    launched = true;
                    if let Some(r) = pikevm::search_anchored(program, text, pos) {
                        return Some(r);
                    }
                    // Occurrences may overlap; resume one char past this
                    // candidate's start.
                    at = pos + step;
                }
            }
            Prefilter::Infix(lit) => {
                if text[from..].contains(lit.as_str()) {
                    pikevm::search(program, text, from)
                } else {
                    PRUNED.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        }
    }
}

/// Returns `(literal, exact)` where every match of `ast` *consumes* text
/// starting with `literal`, and `exact` means the node consumes exactly
/// `literal` in every match (so concatenation may keep accumulating past
/// it). Anchors are zero-width: they consume exactly `""`.
fn prefix_of(ast: &Ast) -> (String, bool) {
    match ast {
        Ast::Empty | Ast::Anchor(_) => (String::new(), true),
        Ast::Literal(c) => (c.to_string(), true),
        Ast::Class(_) | Ast::AnyChar => (String::new(), false),
        Ast::Concat(parts) => {
            let mut acc = String::new();
            for p in parts {
                let (pre, exact) = prefix_of(p);
                acc.push_str(&pre);
                if !exact {
                    return (acc, false);
                }
            }
            (acc, true)
        }
        Ast::Alternation(branches) => {
            let mut iter = branches.iter();
            let Some(first) = iter.next() else {
                return (String::new(), true);
            };
            let mut acc = prefix_of(first).0;
            for b in iter {
                let p = prefix_of(b).0;
                acc.truncate(common_prefix_len(&acc, &p));
                if acc.is_empty() {
                    break;
                }
            }
            (acc, false)
        }
        Ast::Repeat { node, min, max, .. } => {
            if *min == 0 {
                // The whole repeat may be skipped; it guarantees nothing
                // and what follows is not pinned to the match start.
                return (String::new(), false);
            }
            let (pre, exact) = prefix_of(node);
            if exact && !pre.is_empty() {
                // The node consumes exactly `pre`, so at least `min`
                // copies appear back to back (capped to keep the needle
                // small).
                let copies = (*min as usize).min((MAX_REPEAT_LITERAL / pre.len()).max(1));
                let lit = pre.repeat(copies);
                (lit, *max == Some(*min) && copies == *min as usize)
            } else {
                (pre, exact && *max == Some(*min))
            }
        }
        Ast::Group { node, .. } => prefix_of(node),
    }
}

/// Length of the longest common prefix of `a` and `b`, in bytes, falling
/// on a char boundary of both.
fn common_prefix_len(a: &str, b: &str) -> usize {
    a.char_indices()
        .zip(b.chars())
        .find(|((_, ca), cb)| ca != cb)
        .map_or_else(|| a.len().min(b.len()), |((i, _), _)| i)
}

/// If `ast` consumes exactly one string in every match, returns it.
fn exact_literal(ast: &Ast) -> Option<String> {
    let (lit, exact) = prefix_of(ast);
    exact.then_some(lit)
}

/// The longest single literal that must appear in every match, if any.
///
/// Concatenations fuse adjacent exact-literal parts into runs (so
/// `x(ab){2}y` yields `"xababy"`); alternations contribute nothing
/// (branches need not share an infix).
fn required_infix(ast: &Ast) -> Option<String> {
    match ast {
        Ast::Empty | Ast::Anchor(_) | Ast::Class(_) | Ast::AnyChar | Ast::Alternation(_) => None,
        Ast::Literal(c) => Some(c.to_string()),
        Ast::Group { node, .. } => required_infix(node),
        Ast::Repeat { node, min, .. } => {
            if *min >= 1 {
                required_infix(node)
            } else {
                None
            }
        }
        Ast::Concat(parts) => {
            let mut best: Option<String> = None;
            let mut run = String::new();
            for p in parts {
                match exact_literal(p) {
                    Some(s) => run.push_str(&s),
                    None => {
                        consider(&mut best, std::mem::take(&mut run));
                        if let Some(inner) = required_infix(p) {
                            consider(&mut best, inner);
                        }
                    }
                }
            }
            consider(&mut best, run);
            best
        }
    }
}

/// Keeps `cand` if it is longer than the current best.
fn consider(best: &mut Option<String>, cand: String) {
    if !cand.is_empty() && best.as_ref().is_none_or(|b| cand.len() > b.len()) {
        *best = Some(cand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn build(pattern: &str) -> Option<Prefilter> {
        Prefilter::build(&parse(pattern).unwrap().ast)
    }

    #[test]
    fn extracts_literal_prefixes() {
        assert_eq!(build("abc+"), Some(Prefilter::Prefix("abc".into())));
        assert_eq!(build("x{foo}bar"), Some(Prefilter::Prefix("foobar".into())));
        assert_eq!(
            build("^error: .*"),
            Some(Prefilter::Prefix("error: ".into()))
        );
        // Common prefix across alternation branches.
        assert_eq!(build("(?:abd|abc)x"), Some(Prefilter::Prefix("ab".into())));
        // Counted repetition of an exact literal expands.
        assert_eq!(build("(?:ab){2}c"), Some(Prefilter::Prefix("ababc".into())));
        // A `+` guarantees one copy of its body.
        assert_eq!(build("(?:ab)+"), Some(Prefilter::Prefix("ab".into())));
    }

    #[test]
    fn falls_back_to_infix_literals() {
        assert_eq!(build("[ab]foo"), Some(Prefilter::Infix("foo".into())));
        assert_eq!(build(r"\d+-\d+"), Some(Prefilter::Infix("-".into())));
        // The longest run wins.
        assert_eq!(build(".ab.cdef."), Some(Prefilter::Infix("cdef".into())));
    }

    #[test]
    fn nullable_and_literal_free_patterns_get_none() {
        assert_eq!(build("a*"), None);
        assert_eq!(build("(abc)?"), None);
        assert_eq!(build("[ab]+"), None);
        assert_eq!(build(".*"), None);
        assert_eq!(build("a|"), None); // empty branch ⇒ nullable
    }

    #[test]
    fn counted_repetition_needle_is_capped() {
        let Some(Prefilter::Prefix(lit)) = build("(?:ab){1000}") else {
            panic!("expected prefix prefilter");
        };
        assert!(lit.len() <= MAX_REPEAT_LITERAL);
        assert!(lit.starts_with("abab"));
    }

    #[test]
    fn prefiltered_search_agrees_with_plain_search() {
        let cases = [
            ("abc", "xxabcyy"),
            ("abc", "no such thing"),
            ("ab+c", "zzabbbczz"),
            ("x{a+}c+y{b+}", "acb aacccbbb"),
            ("(?:abd|abc)x", "ab abd abcx"),
            ("[ab]foo", "zz bfoo afoo"),
            ("[ab]foo", "zz zz zz"),
            ("é+!", "caféé!"),
        ];
        for (pattern, text) in cases {
            let parsed = parse(pattern).unwrap();
            let program = compile(&parsed).unwrap();
            let pf = Prefilter::build(&parsed.ast)
                .unwrap_or_else(|| panic!("{pattern:?} should have a prefilter"));
            for from in (0..=text.len()).filter(|&i| text.is_char_boundary(i)) {
                assert_eq!(
                    pf.search(&program, text, from),
                    pikevm::search(&program, text, from),
                    "pattern {pattern:?} text {text:?} from {from}"
                );
            }
        }
    }

    #[test]
    fn counters_track_pruned_searches() {
        let parsed = parse("needle[0-9]").unwrap();
        let program = compile(&parsed).unwrap();
        let pf = Prefilter::build(&parsed.ast).unwrap();
        let before = stats();
        assert!(pf.search(&program, "no match here", 0).is_none());
        let after = stats();
        // Other tests run concurrently, so assert deltas as lower bounds.
        assert!(after.searches > before.searches);
        assert!(after.pruned > before.pruned);
    }
}
