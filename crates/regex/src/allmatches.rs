//! All-matches enumeration: the formal document-spanner semantics.
//!
//! For a regex formula γ and document d, the spanner ⟦γ⟧(d) of the theory
//! (Fagin et al. 2015) contains one row per *accepting run*: every span
//! ⟨i, j⟩ such that γ matches `d[i..j]` exactly, with every distinct
//! capture-variable assignment witnessing it. [`all_matches`] enumerates
//! that set — unlike the Pike VM, which keeps only the single
//! highest-priority match per scan position.
//!
//! The simulation keeps, per input position, the set of distinct
//! configurations `(state, slots)`. This can grow combinatorially for
//! adversarial patterns (the spanner can genuinely have exponentially many
//! rows, e.g. `x{a*}y{a*}` over `aⁿ` has Θ(n²) rows), so callers can bound
//! the output with [`all_matches_bounded`].

use crate::nfa::{assertion_holds, Inst, Program, StateId};
use rustc_hash::FxHashSet;

/// One row of the spanner result.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllMatch {
    /// Byte offset where the matched substring starts.
    pub start: usize,
    /// Byte offset one past the matched substring's end.
    pub end: usize,
    /// Byte ranges of the explicit capture groups (index 0 = group 1).
    pub groups: Vec<Option<(usize, usize)>>,
}

/// Enumerates every match of `program` over `text` under spanner
/// semantics, sorted by `(start, end, groups)`.
pub fn all_matches(program: &Program, text: &str) -> Vec<AllMatch> {
    all_matches_bounded(program, text, usize::MAX)
}

/// Like [`all_matches`] but stops after `limit` rows have been collected
/// (the rows collected so far are returned, sorted).
pub fn all_matches_bounded(program: &Program, text: &str, limit: usize) -> Vec<AllMatch> {
    let mut out: FxHashSet<AllMatch> = FxHashSet::default();
    let boundaries: Vec<usize> = text
        .char_indices()
        .map(|(i, _)| i)
        .chain(std::iter::once(text.len()))
        .collect();
    'starts: for &start in &boundaries {
        for m in matches_from(program, text, start) {
            out.insert(m);
            if out.len() >= limit {
                break 'starts;
            }
        }
    }
    let mut rows: Vec<AllMatch> = out.into_iter().collect();
    rows.sort();
    rows
}

/// Configuration of the all-runs simulation.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Config {
    pc: StateId,
    slots: Vec<Option<u32>>,
}

/// Enumerates every accepting run that starts at byte `start`.
fn matches_from(program: &Program, text: &str, start: usize) -> Vec<AllMatch> {
    let mut results = Vec::new();
    let len = text.len();
    let mut prev_char = if start == 0 {
        None
    } else {
        text[..start].chars().next_back()
    };
    let mut iter = text[start..].char_indices();
    let mut at = start;
    let mut cur_char = iter.next().map(|(_, c)| c);

    let mut configs: Vec<Config> = Vec::new();
    let mut seen: FxHashSet<Config> = FxHashSet::default();
    let init = Config {
        pc: program.start,
        slots: vec![None; program.slot_count],
    };
    close(
        program,
        init,
        at,
        len,
        prev_char,
        cur_char,
        &mut configs,
        &mut seen,
    );

    loop {
        // Record accepting configurations at this position.
        for c in &configs {
            if matches!(program.inst(c.pc), Inst::Match) {
                results.push(config_to_match(program, c, start, at));
            }
        }
        let Some(ch) = cur_char else { break };
        let next_at = at + ch.len_utf8();
        let next_char = iter.next().map(|(_, c)| c);

        let mut next_configs: Vec<Config> = Vec::new();
        let mut next_seen: FxHashSet<Config> = FxHashSet::default();
        for c in configs.drain(..) {
            let advance = match program.inst(c.pc) {
                Inst::Char { c: want, next } => (ch == *want).then_some(*next),
                Inst::Class { set, next } => set.contains(ch).then_some(*next),
                Inst::Any { next } => (ch != '\n').then_some(*next),
                _ => None,
            };
            if let Some(next_pc) = advance {
                let cfg = Config {
                    pc: next_pc,
                    slots: c.slots,
                };
                close(
                    program,
                    cfg,
                    next_at,
                    len,
                    cur_char,
                    next_char,
                    &mut next_configs,
                    &mut next_seen,
                );
            }
        }
        configs = next_configs;
        if configs.is_empty() {
            break;
        }
        prev_char = cur_char;
        let _ = prev_char; // tracked for symmetry; closure takes explicit args
        cur_char = next_char;
        at = next_at;
    }
    results
}

/// Epsilon closure that keeps *all* distinct `(state, slots)`
/// configurations rather than just the highest-priority one per state.
#[allow(clippy::too_many_arguments)]
fn close(
    program: &Program,
    config: Config,
    at: usize,
    len: usize,
    prev: Option<char>,
    next: Option<char>,
    out: &mut Vec<Config>,
    seen: &mut FxHashSet<Config>,
) {
    if !seen.insert(config.clone()) {
        return;
    }
    match program.inst(config.pc) {
        Inst::Split { primary, secondary } => {
            close(
                program,
                Config {
                    pc: *primary,
                    slots: config.slots.clone(),
                },
                at,
                len,
                prev,
                next,
                out,
                seen,
            );
            close(
                program,
                Config {
                    pc: *secondary,
                    slots: config.slots,
                },
                at,
                len,
                prev,
                next,
                out,
                seen,
            );
        }
        Inst::Save { slot, next: n } => {
            let mut slots = config.slots;
            slots[*slot as usize] = Some(at as u32);
            close(
                program,
                Config { pc: *n, slots },
                at,
                len,
                prev,
                next,
                out,
                seen,
            );
        }
        Inst::Assert { kind, next: n } => {
            if assertion_holds(*kind, at, len, prev, next) {
                close(
                    program,
                    Config {
                        pc: *n,
                        slots: config.slots,
                    },
                    at,
                    len,
                    prev,
                    next,
                    out,
                    seen,
                );
            }
        }
        Inst::Char { .. } | Inst::Class { .. } | Inst::Any { .. } | Inst::Match => {
            out.push(config);
        }
    }
}

fn config_to_match(program: &Program, c: &Config, start: usize, end: usize) -> AllMatch {
    let groups = (1..=program.group_count())
        .map(|k| {
            let s = c.slots[2 * k]?;
            let e = c.slots[2 * k + 1]?;
            Some((s as usize, e as usize))
        })
        .collect();
    AllMatch { start, end, groups }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn all(pattern: &str, text: &str) -> Vec<AllMatch> {
        let program = compile(&parse(pattern).unwrap()).unwrap();
        all_matches(&program, text)
    }

    #[test]
    fn enumerates_every_span() {
        let ms = all("a+", "aaa");
        let spans: Vec<(usize, usize)> = ms.iter().map(|m| (m.start, m.end)).collect();
        assert_eq!(spans, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn paper_example_all_matches_superset() {
        // The findall semantics returns 2 matches (§2); the spanner
        // semantics additionally contains every other accepting run.
        let ms = all("x{a+}c+y{b+}", "acb aacccbbb");
        // The two findall rows must be present with the right captures.
        let has = |x: (usize, usize), y: (usize, usize)| {
            ms.iter()
                .any(|m| m.groups[0] == Some(x) && m.groups[1] == Some(y))
        };
        assert!(has((0, 1), (2, 3)));
        assert!(has((4, 6), (9, 12)));
        // An overlapping run the Pike VM never reports: x = second 'a'.
        assert!(has((5, 6), (9, 10)));
    }

    #[test]
    fn quadratically_many_rows() {
        // x{a*}y{a*} anchored to full document aⁿ: every split point.
        let ms = all("^x{a*}y{a*}$", "aaaa");
        assert_eq!(ms.len(), 5); // split at 0..=4
        for m in &ms {
            let (xs, xe) = m.groups[0].unwrap();
            let (ys, ye) = m.groups[1].unwrap();
            assert_eq!(xs, 0);
            assert_eq!(xe, ys);
            assert_eq!(ye, 4);
        }
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let ms = all("", "ab");
        let spans: Vec<(usize, usize)> = ms.iter().map(|m| (m.start, m.end)).collect();
        assert_eq!(spans, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn bounded_enumeration_stops_early() {
        let program = compile(&parse("a*").unwrap()).unwrap();
        let ms = all_matches_bounded(&program, &"a".repeat(100), 10);
        assert_eq!(ms.len(), 10);
    }

    #[test]
    fn alternation_yields_all_branch_runs() {
        // (a|ab) over "ab" from position 0: both runs accept.
        let ms = all("v{a|ab}", "ab");
        let vs: Vec<(usize, usize)> = ms.iter().map(|m| m.groups[0].unwrap()).collect();
        assert!(vs.contains(&(0, 1)));
        assert!(vs.contains(&(0, 2)));
    }

    #[test]
    fn anchored_pattern_restricts_starts() {
        let ms = all("^a", "aaa");
        assert_eq!(ms.len(), 1);
        assert_eq!((ms[0].start, ms[0].end), (0, 1));
    }

    #[test]
    fn rows_are_sorted_and_distinct() {
        let ms = all("a|a", "aa");
        // Duplicate runs collapse (set semantics).
        assert_eq!(ms.len(), 2);
        assert!(ms.windows(2).all(|w| w[0] < w[1]));
    }
}
