//! Pike VM: leftmost-first (Perl/Python) matching in `O(n · m)` time.
//!
//! Thread lists keep **priority order**: threads created earlier in a step
//! outrank later ones, `Split` pushes its primary branch first, and new
//! scan-start threads are appended last. When a thread reaches `Match`,
//! every lower-priority thread is discarded — exactly the set of
//! alternatives a backtracking engine would never explore — while
//! higher-priority threads keep running and may supersede the match.
//! The result is the match Python's `re` would produce.

use crate::nfa::{assertion_holds, Inst, Program, StateId};
use std::rc::Rc;

/// Capture slots of one thread. `Rc` keeps thread forking cheap; a `Save`
/// clones only when the slots are shared (copy-on-write).
type Slots = Rc<Vec<Option<u32>>>;

/// A successful search: the final capture slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Slot vector; slots `2k`/`2k+1` delimit group `k` (group 0 is the
    /// whole match and is always present on success).
    pub slots: Vec<Option<u32>>,
}

impl SearchResult {
    /// Byte range of group `k`, if it participated in the match.
    pub fn group(&self, k: usize) -> Option<(usize, usize)> {
        let start = (*self.slots.get(2 * k)?)?;
        let end = (*self.slots.get(2 * k + 1)?)?;
        Some((start as usize, end as usize))
    }
}

struct Thread {
    pc: StateId,
    slots: Slots,
}

/// One scan step's worth of threads plus the per-step dedupe set.
struct ThreadList {
    threads: Vec<Thread>,
    seen: Vec<bool>,
}

impl ThreadList {
    fn new(n_states: usize) -> Self {
        ThreadList {
            threads: Vec::new(),
            seen: vec![false; n_states],
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
    }
}

/// Executes `program` over `text` starting the scan at byte `from`.
///
/// Returns the leftmost-first match at or after `from`, or `None`.
pub fn search(program: &Program, text: &str, from: usize) -> Option<SearchResult> {
    search_impl(program, text, from, false)
}

/// Executes `program` over `text` with the match **anchored** at byte `at`:
/// only matches starting exactly at `at` are found, with the same Perl
/// priority among them as [`search`] would apply.
///
/// The prefilter uses this to launch the VM only at candidate offsets; it
/// returns as soon as the thread list drains, so a failed launch costs
/// `O(m)` in the pattern rather than `O(n · m)` in the text.
pub fn search_anchored(program: &Program, text: &str, at: usize) -> Option<SearchResult> {
    search_impl(program, text, at, true)
}

fn search_impl(program: &Program, text: &str, from: usize, anchored: bool) -> Option<SearchResult> {
    debug_assert!(text.is_char_boundary(from));
    let mut clist = ThreadList::new(program.len());
    let mut nlist = ThreadList::new(program.len());
    let mut matched: Option<Slots> = None;

    // Step positions: every char boundary from `from` to text.len(),
    // inclusive. `chars[k]` is the character consumed at step k.
    let tail = &text[from..];
    let mut prev_char: Option<char> = if from == 0 {
        None
    } else {
        text[..from].chars().next_back()
    };

    let mut iter = tail.char_indices();
    let mut at = from;
    let mut cur_char = iter.next().map(|(_, c)| c);
    loop {
        // Seed a new scan start unless a match was already found (leftmost
        // priority: existing threads started earlier, so they come first).
        // Anchored runs seed once, at `from` only.
        if matched.is_none() && (!anchored || at == from) {
            let slots = Rc::new(vec![None; program.slot_count]);
            add_thread(
                program,
                &mut clist,
                program.start,
                slots,
                at,
                text.len(),
                prev_char,
                cur_char,
            );
        }
        // An empty thread list means done when no new seeds can revive it:
        // after a match in the unanchored case, always in the anchored one.
        if clist.threads.is_empty() && (matched.is_some() || anchored) {
            break;
        }

        let next_at = at + cur_char.map_or(1, char::len_utf8);
        let next_char = iter.next().map(|(_, c)| c);
        for i in 0..clist.threads.len() {
            let pc = clist.threads[i].pc;
            match program.inst(pc) {
                Inst::Char { c, next } => {
                    if cur_char == Some(*c) {
                        let slots = clist.threads[i].slots.clone();
                        add_thread(
                            program,
                            &mut nlist,
                            *next,
                            slots,
                            next_at,
                            text.len(),
                            cur_char,
                            next_char,
                        );
                    }
                }
                Inst::Class { set, next } => {
                    if cur_char.is_some_and(|c| set.contains(c)) {
                        let slots = clist.threads[i].slots.clone();
                        add_thread(
                            program,
                            &mut nlist,
                            *next,
                            slots,
                            next_at,
                            text.len(),
                            cur_char,
                            next_char,
                        );
                    }
                }
                Inst::Any { next } => {
                    if cur_char.is_some_and(|c| c != '\n') {
                        let slots = clist.threads[i].slots.clone();
                        add_thread(
                            program,
                            &mut nlist,
                            *next,
                            slots,
                            next_at,
                            text.len(),
                            cur_char,
                            next_char,
                        );
                    }
                }
                Inst::Match => {
                    matched = Some(clist.threads[i].slots.clone());
                    // Lower-priority threads are alternatives a backtracker
                    // would never reach; drop them permanently.
                    break;
                }
                // Saves/Splits/Asserts were resolved by add_thread.
                Inst::Save { .. } | Inst::Split { .. } | Inst::Assert { .. } => unreachable!(),
            }
        }

        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();

        if cur_char.is_none() {
            break;
        }
        prev_char = cur_char;
        cur_char = next_char;
        at = next_at;
        if clist.threads.is_empty() && (matched.is_some() || anchored) {
            break;
        }
    }

    matched.map(|slots| SearchResult {
        slots: slots.as_ref().clone(),
    })
}

/// Adds `pc`'s epsilon closure to `list` in priority order, resolving
/// `Split`/`Save`/`Assert` eagerly so the main loop only sees consuming
/// instructions and `Match`.
#[allow(clippy::too_many_arguments)]
fn add_thread(
    program: &Program,
    list: &mut ThreadList,
    pc: StateId,
    slots: Slots,
    at: usize,
    len: usize,
    prev: Option<char>,
    next: Option<char>,
) {
    if list.seen[pc as usize] {
        return;
    }
    list.seen[pc as usize] = true;
    match program.inst(pc) {
        Inst::Split { primary, secondary } => {
            add_thread(program, list, *primary, slots.clone(), at, len, prev, next);
            add_thread(program, list, *secondary, slots, at, len, prev, next);
        }
        Inst::Save { slot, next: n } => {
            let mut new_slots = slots.as_ref().clone();
            new_slots[*slot as usize] = Some(at as u32);
            add_thread(program, list, *n, Rc::new(new_slots), at, len, prev, next);
        }
        Inst::Assert { kind, next: n } => {
            if assertion_holds(*kind, at, len, prev, next) {
                add_thread(program, list, *n, slots, at, len, prev, next);
            }
        }
        Inst::Char { .. } | Inst::Class { .. } | Inst::Any { .. } | Inst::Match => {
            list.threads.push(Thread { pc, slots });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn find(pattern: &str, text: &str) -> Option<(usize, usize)> {
        let program = compile(&parse(pattern).unwrap()).unwrap();
        search(&program, text, 0).map(|r| r.group(0).unwrap())
    }

    fn groups(pattern: &str, text: &str) -> Vec<Option<(usize, usize)>> {
        let program = compile(&parse(pattern).unwrap()).unwrap();
        let r = search(&program, text, 0).unwrap();
        (0..=program.group_count()).map(|k| r.group(k)).collect()
    }

    #[test]
    fn literal_match() {
        assert_eq!(find("abc", "xxabcyy"), Some((2, 5)));
        assert_eq!(find("abc", "ab"), None);
    }

    #[test]
    fn leftmost_priority() {
        // Both "aa" at 0 and "aa" at 1 exist; leftmost wins.
        assert_eq!(find("aa", "aaa"), Some((0, 2)));
    }

    #[test]
    fn greedy_takes_longest_at_leftmost() {
        assert_eq!(find("a+", "xaaay"), Some((1, 4)));
    }

    #[test]
    fn lazy_takes_shortest() {
        assert_eq!(find("a+?", "xaaay"), Some((1, 2)));
    }

    #[test]
    fn alternation_prefers_first_branch() {
        // Perl semantics: "a|ab" on "ab" matches "a", not the longer "ab".
        assert_eq!(find("a|ab", "ab"), Some((0, 1)));
        assert_eq!(find("ab|a", "ab"), Some((0, 2)));
    }

    #[test]
    fn captures_from_paper_example_first_match() {
        // §2: α = x{a+}c+y{b+} over "acb aacccbbb"; first match groups.
        let g = groups("x{a+}c+y{b+}", "acb aacccbbb");
        assert_eq!(g[0], Some((0, 3)));
        assert_eq!(g[1], Some((0, 1))); // x ↦ "a"
        assert_eq!(g[2], Some((2, 3))); // y ↦ "b"
    }

    #[test]
    fn unmatched_group_is_none() {
        let g = groups("(a)|(b)", "b");
        assert_eq!(g[0], Some((0, 1)));
        assert_eq!(g[1], None);
        assert_eq!(g[2], Some((0, 1)));
    }

    #[test]
    fn repeated_group_keeps_last_iteration() {
        // Python: re.search(r'(ab)+', 'abab').group(1) == 'ab' at (2, 4).
        let g = groups("(ab)+", "abab");
        assert_eq!(g[0], Some((0, 4)));
        assert_eq!(g[1], Some((2, 4)));
    }

    #[test]
    fn empty_pattern_matches_empty_at_start() {
        assert_eq!(find("", "abc"), Some((0, 0)));
        assert_eq!(find("", ""), Some((0, 0)));
    }

    #[test]
    fn anchors_constrain() {
        assert_eq!(find("^b", "abc"), None);
        assert_eq!(find("^a", "abc"), Some((0, 1)));
        assert_eq!(find("c$", "abc"), Some((2, 3)));
        assert_eq!(find("b$", "abc"), None);
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(find(r"\bcat\b", "a cat sat"), Some((2, 5)));
        assert_eq!(find(r"\bcat\b", "concatenate"), None);
        assert_eq!(find(r"\Bcat\B", "concatenate"), Some((3, 6)));
    }

    #[test]
    fn dot_excludes_newline() {
        assert_eq!(find("a.c", "a\nc"), None);
        assert_eq!(find("a.c", "axc"), Some((0, 3)));
    }

    #[test]
    fn search_from_offset() {
        let program = compile(&parse("a").unwrap()).unwrap();
        let r = search(&program, "a..a", 1).unwrap();
        assert_eq!(r.group(0), Some((3, 4)));
    }

    #[test]
    fn empty_star_loop_terminates() {
        // (a*)* can epsilon-loop; the seen-set must break the cycle.
        assert_eq!(find("(a*)*", "b"), Some((0, 0)));
        assert_eq!(find("(a*)+", "aab"), Some((0, 2)));
    }

    #[test]
    fn unicode_text() {
        assert_eq!(find("é+", "caféé!"), Some((3, 7)));
        let g = groups("x{é+}", "caféé!");
        assert_eq!(g[1], Some((3, 7)));
    }

    #[test]
    fn anchored_search_only_matches_at_the_given_offset() {
        let program = compile(&parse("ab+").unwrap()).unwrap();
        // Unanchored finds the match at 2; anchored at 0 does not.
        assert!(search(&program, "xxabby", 0).is_some());
        assert_eq!(search_anchored(&program, "xxabby", 0), None);
        let r = search_anchored(&program, "xxabby", 2).unwrap();
        assert_eq!(r.group(0), Some((2, 5)));
    }

    #[test]
    fn anchored_search_keeps_priority_and_assertions() {
        // Greedy priority at the anchor point matches the unanchored run.
        let program = compile(&parse("a+").unwrap()).unwrap();
        let r = search_anchored(&program, "xaaay", 1).unwrap();
        assert_eq!(r.group(0), Some((1, 4)));
        // Assertions are evaluated relative to the real text, not the
        // anchor: `^` fails mid-text even when anchored there.
        let program = compile(&parse("^a").unwrap()).unwrap();
        assert_eq!(search_anchored(&program, "ba", 1), None);
        let program = compile(&parse(r"\ba").unwrap()).unwrap();
        assert!(search_anchored(&program, "b a", 2).is_some());
    }

    #[test]
    fn anchored_empty_match() {
        let program = compile(&parse("a*").unwrap()).unwrap();
        let r = search_anchored(&program, "bbb", 1).unwrap();
        assert_eq!(r.group(0), Some((1, 1)));
    }

    #[test]
    fn counted_repetition_bounds() {
        assert_eq!(find("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(find("a{2,3}?", "aaaa"), Some((0, 2)));
        assert_eq!(find("a{5}", "aaaa"), None);
    }
}
