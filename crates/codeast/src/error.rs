//! Error type for lexing, parsing, and pattern compilation.

use thiserror::Error;

/// Errors raised by the minilang front end and pattern engine.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum CodeAstError {
    /// Lexical error with byte position.
    #[error("lex error at byte {pos}: {msg}")]
    Lex {
        /// Byte offset of the offending character.
        pos: usize,
        /// Explanation.
        msg: String,
    },

    /// Parse error with byte position.
    #[error("parse error at byte {pos}: {msg}")]
    Parse {
        /// Byte offset of the offending token.
        pos: usize,
        /// Explanation.
        msg: String,
    },

    /// Malformed AST pattern.
    #[error("bad pattern {pattern:?}: {msg}")]
    Pattern {
        /// The pattern source.
        pattern: String,
        /// Explanation.
        msg: String,
    },
}
