//! Minilang recursive-descent parser.

use crate::ast::{Node, NodeKind};
use crate::error::CodeAstError;
use crate::lexer::{lex, SpannedTok, Tok};

/// Parses a minilang source file into a [`NodeKind::Program`] node.
pub fn parse_source(source: &str) -> Result<Node, CodeAstError> {
    let tokens = lex(source)?;
    let mut p = P {
        tokens,
        pos: 0,
        src_len: source.len(),
    };
    let mut children = Vec::new();
    while !p.at_end() {
        children.push(p.item()?);
    }
    Ok(Node {
        kind: NodeKind::Program,
        name: None,
        start: 0,
        end: source.len(),
        children,
    })
}

struct P {
    tokens: Vec<SpannedTok>,
    pos: usize,
    src_len: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.start)
            .unwrap_or(self.src_len)
    }

    fn prev_end(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.tokens.get(i))
            .map(|t| t.end)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> CodeAstError {
        CodeAstError::Parse {
            pos: self.here(),
            msg: msg.into(),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), CodeAstError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize, usize), CodeAstError> {
        match self.tokens.get(self.pos) {
            Some(SpannedTok {
                tok: Tok::Ident(name),
                start,
                end,
            }) => {
                let out = (name.clone(), *start, *end);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn item(&mut self) -> Result<Node, CodeAstError> {
        match self.peek() {
            Some(Tok::Class) => self.class_decl(),
            Some(Tok::Fn) => self.func_decl(),
            _ => self.statement(),
        }
    }

    fn class_decl(&mut self) -> Result<Node, CodeAstError> {
        let start = self.here();
        self.expect(&Tok::Class, "'class'")?;
        let (name, ..) = self.ident("class name")?;
        self.expect(&Tok::LBrace, "'{'")?;
        let mut children = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated class body"));
            }
            children.push(self.item()?);
        }
        Ok(Node {
            kind: NodeKind::ClassDecl,
            name: Some(name),
            start,
            end: self.prev_end(),
            children,
        })
    }

    fn func_decl(&mut self) -> Result<Node, CodeAstError> {
        let start = self.here();
        self.expect(&Tok::Fn, "'fn'")?;
        let (name, ..) = self.ident("function name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut children = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let (pname, pstart, pend) = self.ident("parameter name")?;
                children.push(Node {
                    kind: NodeKind::Param,
                    name: Some(pname),
                    start: pstart,
                    end: pend,
                    children: Vec::new(),
                });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        children.push(self.block()?);
        Ok(Node {
            kind: NodeKind::FuncDecl,
            name: Some(name),
            start,
            end: self.prev_end(),
            children,
        })
    }

    fn block(&mut self) -> Result<Node, CodeAstError> {
        let start = self.here();
        self.expect(&Tok::LBrace, "'{'")?;
        let mut children = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            children.push(self.item()?);
        }
        Ok(Node {
            kind: NodeKind::Block,
            name: None,
            start,
            end: self.prev_end(),
            children,
        })
    }

    fn statement(&mut self) -> Result<Node, CodeAstError> {
        let start = self.here();
        match self.peek() {
            Some(Tok::Let) => {
                self.pos += 1;
                let (name, ..) = self.ident("variable name")?;
                self.expect(&Tok::Assign, "'='")?;
                let value = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Node {
                    kind: NodeKind::Let,
                    name: Some(name),
                    start,
                    end: self.prev_end(),
                    children: vec![value],
                })
            }
            Some(Tok::Return) => {
                self.pos += 1;
                let children = if self.peek() == Some(&Tok::Semi) {
                    Vec::new()
                } else {
                    vec![self.expr()?]
                };
                self.expect(&Tok::Semi, "';'")?;
                Ok(Node {
                    kind: NodeKind::Return,
                    name: None,
                    start,
                    end: self.prev_end(),
                    children,
                })
            }
            Some(Tok::If) => {
                self.pos += 1;
                let cond = self.expr()?;
                let then = self.block()?;
                let mut children = vec![cond, then];
                if self.eat(&Tok::Else) {
                    children.push(self.block()?);
                }
                Ok(Node {
                    kind: NodeKind::If,
                    name: None,
                    start,
                    end: self.prev_end(),
                    children,
                })
            }
            Some(Tok::While) => {
                self.pos += 1;
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Node {
                    kind: NodeKind::While,
                    name: None,
                    start,
                    end: self.prev_end(),
                    children: vec![cond, body],
                })
            }
            _ => {
                let e = self.expr()?;
                self.expect(&Tok::Semi, "';'")?;
                Ok(Node {
                    kind: NodeKind::ExprStmt,
                    name: None,
                    start,
                    end: self.prev_end(),
                    children: vec![e],
                })
            }
        }
    }

    /// expr := primary (op primary)* — flat left-associative fold; the
    /// pattern matcher does not need precedence, only structure and
    /// spans.
    fn expr(&mut self) -> Result<Node, CodeAstError> {
        let mut left = self.primary()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let op = op.clone();
            self.pos += 1;
            let right = self.primary()?;
            let (start, end) = (left.start, right.end);
            left = Node {
                kind: NodeKind::BinOp,
                name: Some(op),
                start,
                end,
                children: vec![left, right],
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Node, CodeAstError> {
        let start = self.here();
        match self.tokens.get(self.pos).cloned() {
            Some(SpannedTok {
                tok: Tok::Number(text),
                end,
                ..
            }) => {
                self.pos += 1;
                Ok(Node {
                    kind: NodeKind::Number,
                    name: Some(text),
                    start,
                    end,
                    children: Vec::new(),
                })
            }
            Some(SpannedTok {
                tok: Tok::Str(text),
                end,
                ..
            }) => {
                self.pos += 1;
                Ok(Node {
                    kind: NodeKind::Str,
                    name: Some(text),
                    start,
                    end,
                    children: Vec::new(),
                })
            }
            Some(SpannedTok {
                tok: Tok::Ident(name),
                end,
                ..
            }) => {
                self.pos += 1;
                // Dotted path (obj.method) folds into the callee name.
                let mut full = name;
                let mut end = end;
                while self.eat(&Tok::Dot) {
                    let (next, _, nend) = self.ident("member name")?;
                    full = format!("{full}.{next}");
                    end = nend;
                }
                if self.eat(&Tok::LParen) {
                    let mut children = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            children.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen, "')'")?;
                    return Ok(Node {
                        kind: NodeKind::Call,
                        name: Some(full),
                        start,
                        end: self.prev_end(),
                        children,
                    });
                }
                Ok(Node {
                    kind: NodeKind::Ident,
                    name: Some(full),
                    start,
                    end,
                    children: Vec::new(),
                })
            }
            Some(SpannedTok {
                tok: Tok::LParen, ..
            }) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(inner)
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
class Triage {
  fn score(patient, history) {
    let s = base(patient);
    if s > 2 {
      return s + adjust(history);
    }
    return s;
  }
}
fn base(p) { return 1; }
fn caller() { let t = Triage.score(p, h); audit(t); }
";

    #[test]
    fn parses_program_shape() {
        let program = parse_source(SRC).unwrap();
        assert_eq!(program.kind, NodeKind::Program);
        assert_eq!(program.children.len(), 3);
        assert_eq!(program.children[0].kind, NodeKind::ClassDecl);
        assert_eq!(program.children[0].name.as_deref(), Some("Triage"));
    }

    #[test]
    fn function_declarations_with_spans() {
        let program = parse_source(SRC).unwrap();
        let funcs = program.find_kind(NodeKind::FuncDecl);
        let names: Vec<&str> = funcs.iter().map(|f| f.name.as_deref().unwrap()).collect();
        assert_eq!(names, vec!["score", "base", "caller"]);
        // Spans cover the full declaration text.
        assert!(funcs[0].text(SRC).starts_with("fn score(patient, history)"));
        assert!(funcs[0].text(SRC).ends_with("}"));
        assert!(funcs[1].text(SRC).contains("return 1;"));
    }

    #[test]
    fn calls_capture_callee_names() {
        let program = parse_source(SRC).unwrap();
        let calls = program.find_kind(NodeKind::Call);
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_deref().unwrap()).collect();
        assert_eq!(names, vec!["base", "adjust", "Triage.score", "audit"]);
    }

    #[test]
    fn params_are_children() {
        let program = parse_source(SRC).unwrap();
        let score = &program.find_kind(NodeKind::FuncDecl)[0];
        let params: Vec<&str> = score
            .children
            .iter()
            .filter(|c| c.kind == NodeKind::Param)
            .map(|c| c.name.as_deref().unwrap())
            .collect();
        assert_eq!(params, vec!["patient", "history"]);
    }

    #[test]
    fn control_flow_nodes() {
        let program = parse_source(SRC).unwrap();
        assert_eq!(program.find_kind(NodeKind::If).len(), 1);
        assert_eq!(program.find_kind(NodeKind::Return).len(), 3);
        assert_eq!(program.find_kind(NodeKind::Let).len(), 2);
    }

    #[test]
    fn binop_structure() {
        let program = parse_source("fn f() { return 1 + 2 * 3; }").unwrap();
        // Flat left-assoc: ((1+2)*3).
        let bin = &program.find_kind(NodeKind::BinOp);
        assert_eq!(bin.len(), 2);
        assert_eq!(bin[0].name.as_deref(), Some("*"));
    }

    #[test]
    fn while_and_else() {
        let program =
            parse_source("fn f(x) { while x < 3 { x; } if x { y; } else { z; } }").unwrap();
        assert_eq!(program.find_kind(NodeKind::While).len(), 1);
        let ifs = program.find_kind(NodeKind::If);
        assert_eq!(ifs[0].children.len(), 3); // cond, then, else
    }

    #[test]
    fn errors_carry_positions() {
        match parse_source("fn f( { }").unwrap_err() {
            CodeAstError::Parse { pos, .. } => assert!(pos > 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_source("class X {").is_err());
        assert!(parse_source("let x = ;").is_err());
    }

    #[test]
    fn empty_source() {
        let program = parse_source("").unwrap();
        assert!(program.children.is_empty());
    }
}
