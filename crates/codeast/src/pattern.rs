//! XPath-like AST path patterns.
//!
//! The paper's §4.1 uses `.*.(FuncDecl|ClassDecl)` — "all function and
//! class definitions, nested in the AST". The grammar:
//!
//! ```text
//! pattern := step ('.' step)*
//! step    := '*'                      # any chain of descendants (≥ 0)
//!          | kind                     # one node of this kind
//!          | '(' kind ('|' kind)* ')' # one node of any listed kind
//! kind    := NodeKind name, optional '[name]' filter, e.g. FuncDecl[score]
//! ```
//!
//! A leading `.` anchors at the root's children (the paper's patterns
//! start with `.`); since `*` matches zero or more levels, `.*.X`
//! effectively finds every `X` at any depth.

use crate::ast::{Node, NodeKind};
use crate::error::CodeAstError;

/// One pattern step.
#[derive(Debug, Clone, PartialEq)]
enum StepPat {
    /// `*`: zero or more intermediate nodes.
    Descend,
    /// A node whose kind is one of `kinds` (and name matches, if given).
    Kinds {
        kinds: Vec<NodeKind>,
        name: Option<String>,
    },
}

/// A compiled pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct AstPattern {
    steps: Vec<StepPat>,
    source: String,
}

impl AstPattern {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<AstPattern, CodeAstError> {
        let err = |msg: &str| CodeAstError::Pattern {
            pattern: pattern.to_string(),
            msg: msg.to_string(),
        };
        let trimmed = pattern.trim();
        let body = trimmed.strip_prefix('.').unwrap_or(trimmed);
        if body.is_empty() {
            return Err(err("empty pattern"));
        }
        let mut steps = Vec::new();
        for raw in body.split('.') {
            let raw = raw.trim();
            if raw.is_empty() {
                return Err(err("empty step (double dot?)"));
            }
            if raw == "*" {
                steps.push(StepPat::Descend);
                continue;
            }
            let (kinds_part, name) = match raw.find('[') {
                Some(i) => {
                    let close = raw.rfind(']').ok_or_else(|| err("missing ']'"))?;
                    (
                        raw[..i].trim().to_string(),
                        Some(raw[i + 1..close].trim().to_string()),
                    )
                }
                None => (raw.to_string(), None),
            };
            let inner = kinds_part
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .unwrap_or(&kinds_part);
            let mut kinds = Vec::new();
            for k in inner.split('|') {
                let k = k.trim();
                let kind = NodeKind::from_pattern_name(k).ok_or_else(|| CodeAstError::Pattern {
                    pattern: pattern.to_string(),
                    msg: format!("unknown node kind {k:?}"),
                })?;
                kinds.push(kind);
            }
            if kinds.is_empty() {
                return Err(err("step lists no kinds"));
            }
            steps.push(StepPat::Kinds { kinds, name });
        }
        Ok(AstPattern {
            steps,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// All nodes matched by the pattern, starting from `root`'s children
    /// (the root `Program` is the implicit context node).
    pub fn find<'n>(&self, root: &'n Node) -> Vec<&'n Node> {
        let mut out = Vec::new();
        for child in &root.children {
            self.match_at(child, 0, &mut out);
        }
        // A leading `*` may also match the root itself (zero descent from
        // context); mirror XPath's descendant-or-self by trying the root.
        self.match_at(root, 0, &mut out);
        // Dedupe by identity (a node can be reached via both paths).
        let mut seen = std::collections::HashSet::new();
        out.retain(|n| seen.insert(*n as *const Node));
        out.sort_by_key(|n| (n.start, n.end));
        out
    }

    fn match_at<'n>(&self, node: &'n Node, step: usize, out: &mut Vec<&'n Node>) {
        match self.steps.get(step) {
            None => {}
            Some(StepPat::Descend) => {
                if step + 1 == self.steps.len() {
                    // Trailing `*`: every descendant-or-self matches.
                    for n in node.walk() {
                        out.push(n);
                    }
                    return;
                }
                // Zero levels: try next step at this node.
                self.match_at(node, step + 1, out);
                // One+ levels: stay on this step for children.
                for child in &node.children {
                    self.match_at(child, step, out);
                }
            }
            Some(StepPat::Kinds { kinds, name }) => {
                let kind_ok = kinds.contains(&node.kind);
                let name_ok = name
                    .as_ref()
                    .is_none_or(|want| node.name.as_deref() == Some(want.as_str()));
                if kind_ok && name_ok {
                    if step + 1 == self.steps.len() {
                        out.push(node);
                    } else {
                        for child in &node.children {
                            self.match_at(child, step + 1, out);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    const SRC: &str = "\
class Triage {
  fn score(patient) { return base(patient); }
  fn audit(entry) { log(entry); }
}
fn base(p) { return 1; }
";

    fn names(pattern: &str) -> Vec<String> {
        let root = parse_source(SRC).unwrap();
        AstPattern::new(pattern)
            .unwrap()
            .find(&root)
            .iter()
            .filter_map(|n| n.name.clone())
            .collect()
    }

    #[test]
    fn paper_pattern_finds_all_declarations() {
        // The exact pattern from §4.1.
        assert_eq!(
            names(".*.(FuncDecl|ClassDecl)"),
            vec!["Triage", "score", "audit", "base"]
        );
    }

    #[test]
    fn single_kind_at_depth() {
        assert_eq!(names(".*.Call"), vec!["base", "log"]);
    }

    #[test]
    fn name_filter() {
        assert_eq!(names(".*.FuncDecl[score]"), vec!["score"]);
        assert!(names(".*.FuncDecl[nope]").is_empty());
    }

    #[test]
    fn anchored_path_without_star() {
        // ClassDecl children of the program, then their FuncDecl children.
        assert_eq!(names("ClassDecl.FuncDecl"), vec!["score", "audit"]);
        // Top-level functions only.
        assert_eq!(names("FuncDecl"), vec!["base"]);
    }

    #[test]
    fn nested_star_between_kinds() {
        assert_eq!(names("ClassDecl.*.Call"), vec!["base", "log"]);
    }

    #[test]
    fn spans_are_sorted_and_unique() {
        let root = parse_source(SRC).unwrap();
        let pat = AstPattern::new(".*.FuncDecl").unwrap();
        let nodes = pat.find(&root);
        let spans: Vec<(usize, usize)> = nodes.iter().map(|n| (n.start, n.end)).collect();
        let mut sorted = spans.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(spans, sorted);
    }

    #[test]
    fn bad_patterns_rejected() {
        assert!(AstPattern::new("").is_err());
        assert!(AstPattern::new(".*.Bogus").is_err());
        assert!(AstPattern::new("..FuncDecl").is_err());
        assert!(AstPattern::new(".*.FuncDecl[unclosed").is_err());
    }

    #[test]
    fn source_is_preserved() {
        let p = AstPattern::new(".*.Call").unwrap();
        assert_eq!(p.source(), ".*.Call");
    }
}
