//! Minilang lexer.

use crate::error::CodeAstError;

/// Token kinds of minilang.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `class`
    Class,
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// Identifier.
    Ident(String),
    /// Number literal (kept as text; minilang is untyped).
    Number(String),
    /// String literal (raw contents).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Assign,
    /// An operator (`+ - * / < > <= >= == != && ||`).
    Op(String),
    /// `.` member access.
    Dot,
}

/// A token with its byte range.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Tokenizes minilang source. `//` comments run to end of line.
pub fn lex(source: &str) -> Result<Vec<SpannedTok>, CodeAstError> {
    let mut out = Vec::new();
    let bytes: Vec<(usize, char)> = source.char_indices().collect();
    let n = bytes.len();
    let mut i = 0;
    while i < n {
        let (start, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1].1 == '/' {
            while i < n && bytes[i].1 != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < n && (bytes[j].1.is_alphanumeric() || bytes[j].1 == '_') {
                j += 1;
            }
            let end = if j < n { bytes[j].0 } else { source.len() };
            let text = &source[start..end];
            let tok = match text {
                "class" => Tok::Class,
                "fn" => Tok::Fn,
                "let" => Tok::Let,
                "return" => Tok::Return,
                "if" => Tok::If,
                "else" => Tok::Else,
                "while" => Tok::While,
                _ => Tok::Ident(text.to_string()),
            };
            out.push(SpannedTok { tok, start, end });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (bytes[j].1.is_ascii_digit() || bytes[j].1 == '.') {
                j += 1;
            }
            let end = if j < n { bytes[j].0 } else { source.len() };
            out.push(SpannedTok {
                tok: Tok::Number(source[start..end].to_string()),
                start,
                end,
            });
            i = j;
            continue;
        }
        if c == '"' {
            let mut j = i + 1;
            let mut value = String::new();
            loop {
                if j >= n {
                    return Err(CodeAstError::Lex {
                        pos: start,
                        msg: "unterminated string".into(),
                    });
                }
                let ch = bytes[j].1;
                if ch == '"' {
                    break;
                }
                if ch == '\\' && j + 1 < n {
                    value.push(bytes[j + 1].1);
                    j += 2;
                } else {
                    value.push(ch);
                    j += 1;
                }
            }
            let end = if j + 1 < n {
                bytes[j + 1].0
            } else {
                source.len()
            };
            out.push(SpannedTok {
                tok: Tok::Str(value),
                start,
                end,
            });
            i = j + 1;
            continue;
        }
        // Two-character operators first.
        if i + 1 < n {
            let pair: String = [c, bytes[i + 1].1].iter().collect();
            if ["==", "!=", "<=", ">=", "&&", "||"].contains(&pair.as_str()) {
                let end = if i + 2 < n {
                    bytes[i + 2].0
                } else {
                    source.len()
                };
                out.push(SpannedTok {
                    tok: Tok::Op(pair),
                    start,
                    end,
                });
                i += 2;
                continue;
            }
        }
        let end = if i + 1 < n {
            bytes[i + 1].0
        } else {
            source.len()
        };
        let tok = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            '=' => Tok::Assign,
            '.' => Tok::Dot,
            '+' | '-' | '*' | '/' | '<' | '>' | '%' => Tok::Op(c.to_string()),
            other => {
                return Err(CodeAstError::Lex {
                    pos: start,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        };
        out.push(SpannedTok { tok, start, end });
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fn foo class Bar let x"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::Class,
                Tok::Ident("Bar".into()),
                Tok::Let,
                Tok::Ident("x".into())
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("== != <= >= && || + <"),
            vec![
                Tok::Op("==".into()),
                Tok::Op("!=".into()),
                Tok::Op("<=".into()),
                Tok::Op(">=".into()),
                Tok::Op("&&".into()),
                Tok::Op("||".into()),
                Tok::Op("+".into()),
                Tok::Op("<".into()),
            ]
        );
    }

    #[test]
    fn strings_and_numbers() {
        assert_eq!(
            kinds(r#""hi \"x\"" 3.25 42"#),
            vec![
                Tok::Str("hi \"x\"".into()),
                Tok::Number("3.25".into()),
                Tok::Number("42".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a // b c\n d"),
            vec![Tok::Ident("a".into()), Tok::Ident("d".into())]
        );
    }

    #[test]
    fn spans_are_byte_ranges() {
        let toks = lex("fn foo").unwrap();
        assert_eq!((toks[0].start, toks[0].end), (0, 2));
        assert_eq!((toks[1].start, toks[1].end), (3, 6));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unknown_character_errors() {
        assert!(lex("a @ b").is_err());
    }
}
