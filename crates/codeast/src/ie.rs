//! IE-function wrappers — "wrap Python's AST library into an IE function
//! AST" (paper §5, End-to-End Task).
//!
//! [`register_ast_functions`] installs on a [`Session`]:
//!
//! * `ast(pattern, doc) -> (span)` — spans of AST nodes matching the
//!   XPath-like pattern (the paper's `AST('.*.(FuncDecl|ClassDecl)', c)`);
//! * `ast_name(decl) -> (name)` — the declared name of a
//!   function/class whose source is the given span or string;
//! * `ast_calls(doc) -> (caller_span, callee_name)` — one row per call
//!   site, attributing each call to its enclosing function declaration
//!   (the paper's `mentions` relation).
//!
//! Inputs accept strings or spans; span inputs keep outputs anchored in
//! the original document (file), which is what lets `contains(pos, s)`
//! joins work across rules.

use crate::ast::NodeKind;
use crate::parser::parse_source;
use crate::pattern::AstPattern;
use spannerlib_core::{Span, Value};
use spannerlog_engine::{EngineError, Session};

fn ie_err(function: &str, msg: impl Into<String>) -> EngineError {
    EngineError::IeRuntime {
        function: function.to_string(),
        msg: msg.into(),
    }
}

/// Registers the AST IE functions on a session.
pub fn register_ast_functions(session: &mut Session) {
    // ast(pattern, doc) -> (span)
    session.register("ast", Some(2), |args, ctx| {
        let pattern_src = args[0]
            .as_str()
            .ok_or_else(|| ie_err("ast", "pattern must be a string"))?;
        let pattern = AstPattern::new(pattern_src).map_err(|e| ie_err("ast", e.to_string()))?;
        let mut arg = ctx.text_arg(&args[1])?;
        let source = arg.shared_text();
        let root = parse_source(&source).map_err(|e| ie_err("ast", e.to_string()))?;
        let mut rows = Vec::new();
        for n in pattern.find(&root) {
            // Lazy: interning happens only once a node span is minted.
            let (doc, base) = arg.doc_base(ctx);
            rows.push(vec![Value::Span(Span::new(
                doc,
                base + n.start,
                base + n.end,
            ))]);
        }
        Ok(rows)
    });

    // ast_name(decl) -> (name)
    session.register("ast_name", Some(1), |args, ctx| {
        // Scalar output: the text is read but never interned.
        let arg = ctx.text_arg(&args[0])?;
        let source = arg.shared_text();
        let root = parse_source(&source).map_err(|e| ie_err("ast_name", e.to_string()))?;
        // The span is expected to cover exactly one declaration; take the
        // first declaration found (depth-first).
        let name = root
            .walk()
            .into_iter()
            .find(|n| matches!(n.kind, NodeKind::FuncDecl | NodeKind::ClassDecl))
            .and_then(|n| n.name.clone());
        Ok(match name {
            Some(n) => vec![vec![Value::str(n)]],
            None => vec![],
        })
    });

    // ast_calls(doc) -> (caller_span, callee_name)
    session.register("ast_calls", Some(1), |args, ctx| {
        let mut arg = ctx.text_arg(&args[0])?;
        let source = arg.shared_text();
        let root = parse_source(&source).map_err(|e| ie_err("ast_calls", e.to_string()))?;
        let mut rows = Vec::new();
        for func in root.find_kind(NodeKind::FuncDecl) {
            for call in func.find_kind(NodeKind::Call) {
                let callee = call.name.clone().unwrap_or_default();
                // Method-style callee `X.y` attributes to `y` as well.
                let short = callee.rsplit('.').next().unwrap_or(&callee).to_string();
                let (doc, base) = arg.doc_base(ctx);
                rows.push(vec![
                    Value::Span(Span::new(doc, base + func.start, base + func.end)),
                    Value::str(short),
                ]);
            }
        }
        rows.dedup();
        Ok(rows)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const CODE: &str = "\
class Triage {
  fn score(patient) { return base(patient); }
}
fn base(p) { return 1; }
fn report(x) { let s = Triage.score(x); print(s); }
";

    fn session_with_files() -> Session {
        let mut session = Session::new();
        register_ast_functions(&mut session);
        session.run("new Files(str, str)").unwrap();
        session
            .add_fact("Files", [Value::str("triage.ml"), Value::str(CODE)])
            .unwrap();
        session
    }

    #[test]
    fn ast_pattern_rule_extracts_declarations() {
        let mut session = session_with_files();
        session
            .run(r#"Scope(s) <- Files(f, c), ast(".*.(FuncDecl|ClassDecl)", c) -> (s)"#)
            .unwrap();
        let rel = session.relation("Scope").unwrap();
        assert_eq!(rel.len(), 4); // Triage, score, base, report
    }

    #[test]
    fn ast_name_resolves_declaration_names() {
        let mut session = session_with_files();
        session
            .run(
                r#"
                Decl(s) <- Files(f, c), ast(".*.FuncDecl", c) -> (s)
                Named(n) <- Decl(s), ast_name(s) -> (n)
            "#,
            )
            .unwrap();
        let out = session.export("?Named(n)").unwrap();
        let names: Vec<String> = out
            .iter_rows()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["base", "report", "score"]);
    }

    #[test]
    fn ast_calls_attributes_callers() {
        let mut session = session_with_files();
        session
            .run(
                r#"
                Mention(m, name) <- Files(f, c), ast_calls(c) -> (m, name)
                CallerOfScore(n) <- Mention(m, "score"), ast_name(m) -> (n)
            "#,
            )
            .unwrap();
        let out = session.export("?CallerOfScore(n)").unwrap();
        let names: Vec<String> = out
            .iter_rows()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["report"]);
    }

    #[test]
    fn paper_scope_of_rule_with_cursor() {
        // scope_of(pos, s): the declaration containing the cursor.
        let mut session = session_with_files();
        let doc = session.intern(CODE);
        let cursor_at = CODE.find("return base").unwrap();
        let pos = session.make_span(doc, cursor_at, cursor_at + 1).unwrap();
        session
            .declare(
                "Cursor",
                spannerlib_core::Schema::new(vec![spannerlib_core::ValueType::Span]),
            )
            .unwrap();
        session.add_fact("Cursor", [Value::Span(pos)]).unwrap();
        session
            .run(
                r#"
                ScopeOf(pos, s) <- Files(f, c), Cursor(pos),
                                   ast(".*.FuncDecl", c) -> (s),
                                   contained_in(pos, s)
                TightScope(n) <- ScopeOf(pos, s), ast_name(s) -> (n)
            "#,
            )
            .unwrap();
        let out = session.export("?TightScope(n)").unwrap();
        let names: Vec<String> = out
            .iter_rows()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        // The cursor is inside `score` (nested in class Triage).
        assert_eq!(names, vec!["score"]);
    }

    #[test]
    fn bad_pattern_surfaces_as_ie_error() {
        let mut session = session_with_files();
        session
            .run(r#"S(s) <- Files(f, c), ast(".*.Bogus", c) -> (s)"#)
            .unwrap();
        assert!(session.export("?S(s)").is_err());
    }
}
