//! # spannerlib-codeast
//!
//! A code-AST substrate for the paper's §4.1 code-documentation task —
//! the stand-in for "wrapping Python's AST library into an IE function".
//!
//! Three pieces:
//!
//! * **minilang** — a small imperative language (classes, functions,
//!   statements, call expressions) with a hand-written lexer and
//!   recursive-descent parser producing a *span-carrying* AST
//!   ([`ast::Node`]): every node knows its byte range in the source, so
//!   AST queries produce document spans directly.
//! * **pattern matching** — the XPath-like path patterns the paper uses:
//!   `.*.(FuncDecl|ClassDecl)` returns all function and class
//!   declarations nested anywhere ([`pattern::AstPattern`]); name filters
//!   (`FuncDecl[score]`) narrow by identifier.
//! * **IE functions** — [`ie::register_ast_functions`] installs `ast`,
//!   `ast_name`, and `ast_calls` on a Spannerlog [`Session`], which is
//!   exactly the set the paper's `scope_of` / `document` rules consume.
//!
//! [`Session`]: spannerlog_engine::Session

pub mod ast;
pub mod error;
pub mod ie;
pub mod lexer;
pub mod parser;
pub mod pattern;

pub use ast::{Node, NodeKind};
pub use error::CodeAstError;
pub use parser::parse_source;
pub use pattern::AstPattern;
