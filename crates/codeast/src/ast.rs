//! The span-carrying AST.
//!
//! Nodes form a uniform tree — kind, optional name, byte span, children —
//! rather than a typed enum per production, because the consumer is the
//! *pattern matcher*, which needs uniform traversal, and the IE layer,
//! which needs spans. (Python's `ast` walked through `ast.walk` has the
//! same shape.)

use std::fmt;

/// Node kinds of minilang.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Whole file.
    Program,
    /// `class Name { … }`
    ClassDecl,
    /// `fn name(params) { … }`
    FuncDecl,
    /// A function parameter.
    Param,
    /// `{ … }`
    Block,
    /// `let x = expr;`
    Let,
    /// `return expr;`
    Return,
    /// `if cond { … } else { … }`
    If,
    /// `while cond { … }`
    While,
    /// An expression statement.
    ExprStmt,
    /// `callee(args)` — `name` holds the callee.
    Call,
    /// An identifier expression.
    Ident,
    /// A number literal.
    Number,
    /// A string literal.
    Str,
    /// A binary operation — `name` holds the operator.
    BinOp,
}

impl NodeKind {
    /// The pattern-language name of the kind (`FuncDecl`, `Call`, …).
    pub fn pattern_name(&self) -> &'static str {
        match self {
            NodeKind::Program => "Program",
            NodeKind::ClassDecl => "ClassDecl",
            NodeKind::FuncDecl => "FuncDecl",
            NodeKind::Param => "Param",
            NodeKind::Block => "Block",
            NodeKind::Let => "Let",
            NodeKind::Return => "Return",
            NodeKind::If => "If",
            NodeKind::While => "While",
            NodeKind::ExprStmt => "ExprStmt",
            NodeKind::Call => "Call",
            NodeKind::Ident => "Ident",
            NodeKind::Number => "Number",
            NodeKind::Str => "Str",
            NodeKind::BinOp => "BinOp",
        }
    }

    /// Parses a pattern-language name.
    pub fn from_pattern_name(name: &str) -> Option<NodeKind> {
        Some(match name {
            "Program" => NodeKind::Program,
            "ClassDecl" => NodeKind::ClassDecl,
            "FuncDecl" => NodeKind::FuncDecl,
            "Param" => NodeKind::Param,
            "Block" => NodeKind::Block,
            "Let" => NodeKind::Let,
            "Return" => NodeKind::Return,
            "If" => NodeKind::If,
            "While" => NodeKind::While,
            "ExprStmt" => NodeKind::ExprStmt,
            "Call" => NodeKind::Call,
            "Ident" => NodeKind::Ident,
            "Number" => NodeKind::Number,
            "Str" => NodeKind::Str,
            "BinOp" => NodeKind::BinOp,
            _ => return None,
        })
    }
}

/// An AST node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Kind of node.
    pub kind: NodeKind,
    /// Name, where meaningful: declaration names, callee names,
    /// identifier text, binary operators.
    pub name: Option<String>,
    /// Byte offset where the node's source starts.
    pub start: usize,
    /// Byte offset one past the node's source end.
    pub end: usize,
    /// Children in source order.
    pub children: Vec<Node>,
}

impl Node {
    /// The node's source text.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// Depth-first pre-order traversal over the subtree (including
    /// `self`).
    pub fn walk(&self) -> Vec<&Node> {
        let mut out = Vec::new();
        fn go<'n>(n: &'n Node, out: &mut Vec<&'n Node>) {
            out.push(n);
            for c in &n.children {
                go(c, out);
            }
        }
        go(self, &mut out);
        out
    }

    /// All nodes of `kind` in the subtree.
    pub fn find_kind(&self, kind: NodeKind) -> Vec<&Node> {
        self.walk().into_iter().filter(|n| n.kind == kind).collect()
    }

    /// Whether this node's span contains byte `pos`.
    pub fn contains_pos(&self, pos: usize) -> bool {
        self.start <= pos && pos < self.end
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind.pattern_name())?;
        if let Some(n) = &self.name {
            write!(f, "[{n}]")?;
        }
        write!(f, "@{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(kind: NodeKind, start: usize, end: usize) -> Node {
        Node {
            kind,
            name: None,
            start,
            end,
            children: Vec::new(),
        }
    }

    #[test]
    fn pattern_names_round_trip() {
        for kind in [
            NodeKind::Program,
            NodeKind::ClassDecl,
            NodeKind::FuncDecl,
            NodeKind::Call,
            NodeKind::BinOp,
        ] {
            assert_eq!(NodeKind::from_pattern_name(kind.pattern_name()), Some(kind));
        }
        assert_eq!(NodeKind::from_pattern_name("Nope"), None);
    }

    #[test]
    fn walk_is_preorder() {
        let tree = Node {
            kind: NodeKind::Program,
            name: None,
            start: 0,
            end: 10,
            children: vec![
                Node {
                    kind: NodeKind::FuncDecl,
                    name: Some("f".into()),
                    start: 0,
                    end: 5,
                    children: vec![leaf(NodeKind::Block, 2, 5)],
                },
                leaf(NodeKind::ExprStmt, 6, 10),
            ],
        };
        let kinds: Vec<NodeKind> = tree.walk().iter().map(|n| n.kind).collect();
        assert_eq!(
            kinds,
            vec![
                NodeKind::Program,
                NodeKind::FuncDecl,
                NodeKind::Block,
                NodeKind::ExprStmt
            ]
        );
        assert_eq!(tree.find_kind(NodeKind::Block).len(), 1);
    }

    #[test]
    fn position_containment() {
        let n = leaf(NodeKind::Ident, 3, 7);
        assert!(n.contains_pos(3));
        assert!(n.contains_pos(6));
        assert!(!n.contains_pos(7));
    }
}
