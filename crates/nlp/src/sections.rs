//! Clinical note section detection.
//!
//! Notes are organized into titled sections ("Past Medical History:",
//! "Assessment/Plan:" …) and the case-study pipeline treats concept
//! mentions differently per section — e.g. a COVID mention under *family
//! history* does not make the patient positive. A section starts at a
//! recognized header and runs until the next header or end of note.

use rustc_hash::FxHashMap;

/// A detected section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Normalized section category (e.g. `"past_medical_history"`).
    pub category: String,
    /// Byte offset of the header start.
    pub header_start: usize,
    /// Byte offset one past the header (including the colon).
    pub header_end: usize,
    /// Byte offset one past the section body (start of next header or
    /// end of text).
    pub body_end: usize,
}

impl Section {
    /// The body text (after the header).
    pub fn body<'t>(&self, source: &'t str) -> &'t str {
        &source[self.header_end..self.body_end]
    }
}

/// Default clinical header → category mapping, after the medSpaCy
/// sectionizer's common set.
pub fn default_headers() -> Vec<(&'static str, &'static str)> {
    vec![
        ("chief complaint", "chief_complaint"),
        ("history of present illness", "history_of_present_illness"),
        ("hpi", "history_of_present_illness"),
        ("past medical history", "past_medical_history"),
        ("pmh", "past_medical_history"),
        ("family history", "family_history"),
        ("fh", "family_history"),
        ("social history", "social_history"),
        ("medications", "medications"),
        ("allergies", "allergies"),
        ("review of systems", "review_of_systems"),
        ("ros", "review_of_systems"),
        ("physical exam", "physical_exam"),
        ("vital signs", "vital_signs"),
        ("labs", "labs"),
        ("laboratory data", "labs"),
        ("imaging", "imaging"),
        ("assessment", "assessment_plan"),
        ("assessment and plan", "assessment_plan"),
        ("assessment/plan", "assessment_plan"),
        ("plan", "assessment_plan"),
        ("impression", "assessment_plan"),
        ("diagnosis", "diagnosis"),
        ("discharge instructions", "discharge_instructions"),
        ("follow up", "follow_up"),
        ("followup", "follow_up"),
    ]
}

/// Detects sections using the default header table.
pub fn detect_sections(text: &str) -> Vec<Section> {
    detect_sections_with(text, &default_headers())
}

/// Detects sections with a custom header table. Headers match at line
/// starts, case-insensitively, and must be followed by `:`.
pub fn detect_sections_with(text: &str, headers: &[(&str, &str)]) -> Vec<Section> {
    let by_lower: FxHashMap<String, String> = headers
        .iter()
        .map(|(h, c)| (h.to_lowercase(), c.to_string()))
        .collect();
    let max_header_words = headers
        .iter()
        .map(|(h, _)| h.split_whitespace().count())
        .max()
        .unwrap_or(1);

    let mut found: Vec<(usize, usize, String)> = Vec::new(); // (start, end incl ':', category)
    let mut line_start = 0usize;
    for line in text.split_inclusive('\n') {
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        if let Some(colon_rel) = trimmed.find(':') {
            let candidate = &trimmed[..colon_rel];
            if candidate.split_whitespace().count() <= max_header_words {
                let key = candidate.trim().to_lowercase();
                if let Some(category) = by_lower.get(&key) {
                    let start = line_start + indent;
                    let end = line_start + indent + colon_rel + 1;
                    found.push((start, end, category.clone()));
                }
            }
        }
        line_start += line.len();
    }

    let mut sections = Vec::with_capacity(found.len());
    for (i, (start, end, category)) in found.iter().enumerate() {
        let body_end = found
            .get(i + 1)
            .map(|(next_start, _, _)| *next_start)
            .unwrap_or(text.len());
        sections.push(Section {
            category: category.clone(),
            header_start: *start,
            header_end: *end,
            body_end,
        });
    }
    sections
}

/// The category of the section containing byte offset `pos`, if any.
pub fn section_at(sections: &[Section], pos: usize) -> Option<&Section> {
    sections
        .iter()
        .find(|s| s.header_start <= pos && pos < s.body_end)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOTE: &str = "Chief Complaint: cough and fever\n\
                        History of Present Illness: Patient reports cough.\n\
                        Family History: Mother had covid-19.\n\
                        Assessment/Plan: test for covid-19.\n";

    #[test]
    fn detects_headers_in_order() {
        let sections = detect_sections(NOTE);
        let cats: Vec<&str> = sections.iter().map(|s| s.category.as_str()).collect();
        assert_eq!(
            cats,
            vec![
                "chief_complaint",
                "history_of_present_illness",
                "family_history",
                "assessment_plan"
            ]
        );
    }

    #[test]
    fn bodies_span_to_next_header() {
        let sections = detect_sections(NOTE);
        assert!(sections[0].body(NOTE).contains("cough and fever"));
        assert!(!sections[0].body(NOTE).contains("History of Present"));
        assert!(sections[3].body(NOTE).contains("test for covid-19"));
    }

    #[test]
    fn case_insensitive_headers() {
        let text = "FAMILY HISTORY: none\n";
        let sections = detect_sections(text);
        assert_eq!(sections[0].category, "family_history");
    }

    #[test]
    fn section_lookup_by_position() {
        let sections = detect_sections(NOTE);
        let fam_pos = NOTE.find("Mother").unwrap();
        assert_eq!(
            section_at(&sections, fam_pos).unwrap().category,
            "family_history"
        );
        // Position before any header.
        assert_eq!(
            section_at(&sections, 0).unwrap().category,
            "chief_complaint"
        );
    }

    #[test]
    fn long_lines_with_colons_are_not_headers() {
        let text = "The ratio was 3:1 in this cohort of notes\n";
        assert!(detect_sections(text).is_empty());
    }

    #[test]
    fn abbreviated_headers() {
        let text = "PMH: diabetes\nROS: negative\n";
        let sections = detect_sections(text);
        assert_eq!(sections[0].category, "past_medical_history");
        assert_eq!(sections[1].category, "review_of_systems");
    }

    #[test]
    fn custom_header_table() {
        let text = "Findings: all clear\n";
        let sections = detect_sections_with(text, &[("findings", "findings")]);
        assert_eq!(sections[0].category, "findings");
    }
}
