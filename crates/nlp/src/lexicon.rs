//! Shared word lists ("data as code").
//!
//! These tables play the role spaCy's bundled language data plays for the
//! original pipeline: closed-class word lists for the POS tagger, an
//! abbreviation list for the sentence splitter, and irregular-form tables
//! for the lemmatizer.

/// Abbreviations that do not end a sentence despite a trailing period.
pub const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "st", "jr", "sr", "vs", "etc", "e.g", "i.e", "fig", "al",
    "pt", "pts", "dx", "hx", "tx", "rx", "sx", "fx", "wt", "ht", "temp", "resp", "approx", "appt",
    "dept", "est", "min", "max", "mon", "tue", "wed", "thu", "fri", "sat", "sun", "jan", "feb",
    "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct", "nov", "dec", "no", "neg", "pos",
];

/// Determiners.
pub const DETERMINERS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "each", "every", "some", "any", "no",
    "his", "her", "its", "their", "our", "my", "your",
];

/// Pronouns.
pub const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "us",
    "them",
    "who",
    "whom",
    "which",
    "what",
    "himself",
    "herself",
    "itself",
    "themselves",
    "patient",
];

/// Prepositions.
pub const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "without", "from", "to", "into", "onto", "over",
    "under", "between", "among", "through", "during", "before", "after", "about", "against", "per",
    "via", "within",
];

/// Conjunctions.
pub const CONJUNCTIONS: &[&str] = &[
    "and", "or", "but", "nor", "so", "yet", "because", "although", "while", "if", "unless",
    "since", "whereas", "however",
];

/// Common verbs (clinical register included).
pub const COMMON_VERBS: &[&str] = &[
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "has",
    "have",
    "had",
    "do",
    "does",
    "did",
    "will",
    "would",
    "can",
    "could",
    "shall",
    "should",
    "may",
    "might",
    "must",
    "denies",
    "deny",
    "denied",
    "reports",
    "report",
    "reported",
    "presents",
    "present",
    "presented",
    "tested",
    "tests",
    "test",
    "admitted",
    "admit",
    "admits",
    "discharged",
    "discharge",
    "complains",
    "complained",
    "states",
    "stated",
    "exhibits",
    "exhibited",
    "shows",
    "showed",
    "confirmed",
    "confirms",
    "confirm",
    "suspected",
    "suspects",
    "suspect",
    "ruled",
    "rules",
    "rule",
    "received",
    "receives",
    "receive",
    "developed",
    "develops",
    "develop",
    "noted",
    "notes",
    "note",
    "observed",
    "observes",
    "observe",
    "feels",
    "felt",
    "feel",
    "appears",
    "appeared",
    "appear",
    "remains",
    "remained",
    "remain",
    "improved",
    "improves",
    "improve",
    "worsened",
    "worsens",
    "worsen",
    "screened",
    "screens",
    "screen",
    "treated",
    "treats",
    "treat",
    "exposed",
    "advised",
    "advises",
    "advise",
    "recommended",
    "recommends",
    "recommend",
    "scheduled",
    "schedules",
    "schedule",
    "requires",
    "required",
    "require",
];

/// Common adjectives (clinical register included).
pub const COMMON_ADJECTIVES: &[&str] = &[
    "positive",
    "negative",
    "acute",
    "chronic",
    "severe",
    "mild",
    "moderate",
    "stable",
    "unstable",
    "normal",
    "abnormal",
    "elevated",
    "high",
    "low",
    "recent",
    "prior",
    "previous",
    "current",
    "new",
    "old",
    "asymptomatic",
    "symptomatic",
    "afebrile",
    "febrile",
    "intact",
    "alert",
    "oriented",
    "clear",
    "unremarkable",
    "remarkable",
    "significant",
    "likely",
    "unlikely",
    "possible",
    "probable",
    "presumptive",
    "pending",
    "confirmed",
    "suspected",
    "good",
    "poor",
    "well",
    "sick",
    "healthy",
    "ill",
];

/// Common adverbs.
pub const COMMON_ADVERBS: &[&str] = &[
    "not",
    "very",
    "quite",
    "too",
    "also",
    "only",
    "just",
    "still",
    "already",
    "currently",
    "recently",
    "previously",
    "again",
    "never",
    "always",
    "often",
    "sometimes",
    "rarely",
    "here",
    "there",
    "now",
    "then",
    "today",
    "yesterday",
    "tomorrow",
    "daily",
    "twice",
];

/// Irregular plural → singular pairs for the lemmatizer.
pub const IRREGULAR_NOUNS: &[(&str, &str)] = &[
    ("children", "child"),
    ("men", "man"),
    ("women", "woman"),
    ("people", "person"),
    ("feet", "foot"),
    ("teeth", "tooth"),
    ("mice", "mouse"),
    ("criteria", "criterion"),
    ("phenomena", "phenomenon"),
    ("diagnoses", "diagnosis"),
    ("prognoses", "prognosis"),
    ("analyses", "analysis"),
    ("bacteria", "bacterium"),
    ("fungi", "fungus"),
    ("nuclei", "nucleus"),
    ("stimuli", "stimulus"),
];

/// Irregular verb form → lemma pairs for the lemmatizer.
pub const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("is", "be"),
    ("are", "be"),
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("being", "be"),
    ("am", "be"),
    ("has", "have"),
    ("had", "have"),
    ("having", "have"),
    ("does", "do"),
    ("did", "do"),
    ("done", "do"),
    ("goes", "go"),
    ("went", "go"),
    ("gone", "go"),
    ("took", "take"),
    ("taken", "take"),
    ("gave", "give"),
    ("given", "give"),
    ("felt", "feel"),
    ("saw", "see"),
    ("seen", "see"),
    ("came", "come"),
    ("said", "say"),
    ("made", "make"),
    ("found", "find"),
    ("got", "get"),
    ("gotten", "get"),
    ("ran", "run"),
    ("began", "begin"),
    ("begun", "begin"),
    ("wrote", "write"),
    ("written", "write"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_lowercase() {
        for w in DETERMINERS
            .iter()
            .chain(PRONOUNS)
            .chain(PREPOSITIONS)
            .chain(CONJUNCTIONS)
            .chain(COMMON_VERBS)
            .chain(COMMON_ADJECTIVES)
            .chain(COMMON_ADVERBS)
            .chain(ABBREVIATIONS)
        {
            assert_eq!(*w, w.to_lowercase(), "entry {w:?} must be lowercase");
        }
    }

    #[test]
    fn irregular_tables_are_lowercase_pairs() {
        for (a, b) in IRREGULAR_NOUNS.iter().chain(IRREGULAR_VERBS) {
            assert_eq!(*a, a.to_lowercase());
            assert_eq!(*b, b.to_lowercase());
        }
    }

    #[test]
    fn no_duplicate_abbreviations() {
        let mut seen = std::collections::HashSet::new();
        for a in ABBREVIATIONS {
            assert!(seen.insert(a), "duplicate abbreviation {a:?}");
        }
    }
}
