//! Span-carrying tokenizer.
//!
//! Deterministic rules, adequate for clinical prose: maximal runs of
//! alphabetic characters are words (internal apostrophes and hyphens
//! stay inside the token, as in `patient's` and `COVID-19` — the latter
//! mixes digits and is still one token), digit runs are numbers, and any
//! other non-whitespace character is a single punctuation token.

use std::fmt;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic (possibly with internal `'`/`-`/digits) word.
    Word,
    /// Pure digit run (possibly with internal `.` or `,`).
    Number,
    /// A single punctuation character.
    Punct,
}

/// A token: byte range plus classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// Classification.
    pub kind: TokenKind,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'t>(&self, source: &'t str) -> &'t str {
        &source[self.start..self.end]
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the token is empty (never produced by [`tokenize`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Whether `c` may continue a word token once one has started.
fn continues_word(c: char, next: Option<char>) -> bool {
    if c.is_alphanumeric() {
        return true;
    }
    // Internal apostrophe/hyphen: only when followed by a letter/digit,
    // so trailing punctuation is not swallowed ("end-" vs "COVID-19").
    (c == '\'' || c == '-') && next.is_some_and(|n| n.is_alphanumeric())
}

/// Whether `c` may continue a number token.
fn continues_number(c: char, next: Option<char>) -> bool {
    if c.is_ascii_digit() {
        return true;
    }
    (c == '.' || c == ',') && next.is_some_and(|n| n.is_ascii_digit())
}

/// Tokenizes `text` into words, numbers, and punctuation.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut i = 0;
    while i < n {
        let (start, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphabetic() {
            let mut j = i + 1;
            while j < n {
                let next = chars.get(j + 1).map(|&(_, ch)| ch);
                if continues_word(chars[j].1, next) {
                    j += 1;
                } else {
                    break;
                }
            }
            let end = chars.get(j).map_or(text.len(), |&(b, _)| b);
            tokens.push(Token {
                start,
                end,
                kind: TokenKind::Word,
            });
            i = j;
        } else if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let next = chars.get(j + 1).map(|&(_, ch)| ch);
                if continues_number(chars[j].1, next) {
                    j += 1;
                } else {
                    break;
                }
            }
            let end = chars.get(j).map_or(text.len(), |&(b, _)| b);
            tokens.push(Token {
                start,
                end,
                kind: TokenKind::Number,
            });
            i = j;
        } else {
            let end = chars.get(i + 1).map_or(text.len(), |&(b, _)| b);
            tokens.push(Token {
                start,
                end,
                kind: TokenKind::Punct,
            });
            i += 1;
        }
    }
    tokens
}

/// Lowercased text of each token — the normalization used by the phrase
/// matcher and ConText.
pub fn lowered(tokens: &[Token], source: &str) -> Vec<String> {
    tokens
        .iter()
        .map(|t| t.text(source).to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(source: &str) -> Vec<&str> {
        tokenize(source).iter().map(|t| t.text(source)).collect()
    }

    #[test]
    fn words_numbers_punct() {
        assert_eq!(
            texts("Pt tested positive, 2 times."),
            vec!["Pt", "tested", "positive", ",", "2", "times", "."]
        );
    }

    #[test]
    fn internal_apostrophe_and_hyphen() {
        assert_eq!(texts("patient's"), vec!["patient's"]);
        assert_eq!(texts("COVID-19"), vec!["COVID-19"]);
        // Trailing hyphen is punctuation.
        assert_eq!(texts("end- stop"), vec!["end", "-", "stop"]);
    }

    #[test]
    fn numbers_with_decimals() {
        assert_eq!(texts("temp 38.5 today"), vec!["temp", "38.5", "today"]);
        // Trailing dot is sentence punctuation, not part of the number.
        assert_eq!(texts("count 12."), vec!["count", "12", "."]);
    }

    #[test]
    fn offsets_are_byte_accurate() {
        let src = "ab  cd";
        let toks = tokenize(src);
        assert_eq!((toks[0].start, toks[0].end), (0, 2));
        assert_eq!((toks[1].start, toks[1].end), (4, 6));
    }

    #[test]
    fn unicode_words() {
        let src = "naïve café";
        assert_eq!(texts(src), vec!["naïve", "café"]);
        let toks = tokenize(src);
        assert_eq!(toks[0].text(src), "naïve");
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn lowered_normalizes() {
        let src = "COVID Positive";
        let toks = tokenize(src);
        assert_eq!(lowered(&toks, src), vec!["covid", "positive"]);
    }
}
