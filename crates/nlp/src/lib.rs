//! # spannerlib-nlp
//!
//! A deterministic, rule-based NLP substrate — the stand-in for
//! spaCy/medSpaCy in the paper's §4.2 case study.
//!
//! The COVID-19 surveillance pipeline the paper rewrites (Chapman et al.
//! 2020) is built from rule-based components: a tokenizer, a sentence
//! splitter, a phrase matcher for *target* concepts, the **ConText**
//! algorithm for assertion modifiers (negation, hypothetical, family
//! history, …), a clinical *section* detector, and a document classifier.
//! This crate implements each of those from scratch:
//!
//! | module | role | spaCy analogue |
//! |---|---|---|
//! | [`tokenizer`] | span-carrying word/number/punct tokens | `Tokenizer` |
//! | [`sentences`] | abbreviation-aware sentence splitting | `Sentencizer` |
//! | [`pos`] | lexicon + suffix-rule part-of-speech tags | `Tagger` |
//! | [`lemma`] | rule + exception-table lemmatizer | `Lemmatizer` |
//! | [`matcher`] | case-insensitive multi-token phrase matching | `PhraseMatcher` |
//! | [`context`] | the ConText assertion algorithm | `medspacy_context` |
//! | [`sections`] | clinical note section detection | `medspacy_sections` |
//!
//! Everything operates on **byte-offset spans** compatible with
//! [`spannerlib_core::Span`], so outputs flow directly into Spannerlog
//! relations.

pub mod context;
pub mod lemma;
pub mod lexicon;
pub mod matcher;
pub mod pos;
pub mod sections;
pub mod sentences;
pub mod tokenizer;

pub use context::{
    ContextEngine, ContextModifier, ModifierCategory, ModifierDirection, ModifierRule,
};
pub use matcher::{PhraseMatch, PhraseMatcher};
pub use pos::{tag_tokens, PosTag};
pub use sections::{detect_sections, Section};
pub use sentences::split_sentences;
pub use tokenizer::{tokenize, Token, TokenKind};
