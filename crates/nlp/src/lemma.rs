//! Rule + exception-table lemmatization.
//!
//! English inflectional morphology handled with ordered suffix rules and
//! the irregular tables from [`crate::lexicon`]. Deterministic; no POS
//! disambiguation is attempted beyond an optional tag hint.

use crate::lexicon::{IRREGULAR_NOUNS, IRREGULAR_VERBS};
use crate::pos::PosTag;

/// Lemmatizes a lowercase word, optionally guided by its POS tag.
pub fn lemmatize(word: &str, tag: Option<PosTag>) -> String {
    let w = word.to_lowercase();

    // Irregulars first.
    if !matches!(tag, Some(PosTag::Noun)) {
        if let Some((_, lemma)) = IRREGULAR_VERBS.iter().find(|(form, _)| *form == w) {
            return lemma.to_string();
        }
    }
    if !matches!(tag, Some(PosTag::Verb)) {
        if let Some((_, lemma)) = IRREGULAR_NOUNS.iter().find(|(form, _)| *form == w) {
            return lemma.to_string();
        }
    }

    // Verbal endings.
    if matches!(tag, Some(PosTag::Verb) | None) {
        if let Some(stem) = strip_ing(&w) {
            return stem;
        }
        if let Some(stem) = strip_ed(&w) {
            return stem;
        }
    }

    // Plural / 3rd-person -s endings.
    if let Some(stem) = strip_s(&w) {
        return stem;
    }
    w
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u')
}

fn strip_ing(w: &str) -> Option<String> {
    let stem = w.strip_suffix("ing")?;
    if stem.len() < 2 {
        return None;
    }
    // doubling: running → run
    let bytes: Vec<char> = stem.chars().collect();
    let n = bytes.len();
    if n >= 2
        && bytes[n - 1] == bytes[n - 2]
        && !is_vowel(bytes[n - 1])
        && bytes[n - 1] != 'l'
        && bytes[n - 1] != 's'
    {
        return Some(stem[..stem.len() - 1].to_string());
    }
    // e-restoration: taking → take (stem ends in single consonant after vowel)
    if n >= 2
        && !is_vowel(bytes[n - 1])
        && is_vowel(bytes[n - 2])
        && !stem.ends_with('w')
        && !stem.ends_with('x')
        && !stem.ends_with('y')
    {
        return Some(format!("{stem}e"));
    }
    Some(stem.to_string())
}

fn strip_ed(w: &str) -> Option<String> {
    let stem = w.strip_suffix("ed")?;
    if stem.len() < 2 {
        return None;
    }
    let bytes: Vec<char> = stem.chars().collect();
    let n = bytes.len();
    // tried → try
    if let Some(prefix) = stem.strip_suffix('i') {
        if !prefix.is_empty() {
            return Some(format!("{prefix}y"));
        }
    }
    // admitted → admit
    if n >= 2
        && bytes[n - 1] == bytes[n - 2]
        && !is_vowel(bytes[n - 1])
        && bytes[n - 1] != 'l'
        && bytes[n - 1] != 's'
    {
        return Some(stem[..stem.len() - 1].to_string());
    }
    // confirmed → confirm; noted → note (e-restoration when CVC-ish)
    if n >= 3 && !is_vowel(bytes[n - 1]) && is_vowel(bytes[n - 2]) && !is_vowel(bytes[n - 3]) {
        return Some(format!("{stem}e"));
    }
    Some(stem.to_string())
}

fn strip_s(w: &str) -> Option<String> {
    if w.len() < 3
        || !w.ends_with('s')
        || w.ends_with("ss")
        || w.ends_with("us")
        || w.ends_with("is")
    {
        return None;
    }
    // -ies → -y
    if let Some(prefix) = w.strip_suffix("ies") {
        if prefix.len() >= 2 {
            return Some(format!("{prefix}y"));
        }
    }
    // -xes/-ches/-shes/-sses/-zes → strip "es"
    for suf in ["xes", "ches", "shes", "sses", "zes"] {
        if let Some(prefix) = w.strip_suffix("es") {
            if w.ends_with(suf) {
                return Some(prefix.to_string());
            }
        }
    }
    Some(w[..w.len() - 1].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_verbs() {
        assert_eq!(lemmatize("was", None), "be");
        assert_eq!(lemmatize("has", None), "have");
        assert_eq!(lemmatize("felt", None), "feel");
    }

    #[test]
    fn irregular_nouns() {
        assert_eq!(lemmatize("diagnoses", Some(PosTag::Noun)), "diagnosis");
        assert_eq!(lemmatize("children", None), "child");
        assert_eq!(lemmatize("criteria", None), "criterion");
    }

    #[test]
    fn ing_forms() {
        assert_eq!(lemmatize("running", Some(PosTag::Verb)), "run");
        assert_eq!(lemmatize("taking", Some(PosTag::Verb)), "take");
        assert_eq!(lemmatize("coughing", Some(PosTag::Verb)), "cough");
    }

    #[test]
    fn ed_forms() {
        assert_eq!(lemmatize("tried", Some(PosTag::Verb)), "try");
        assert_eq!(lemmatize("admitted", Some(PosTag::Verb)), "admit");
        assert_eq!(lemmatize("confirmed", Some(PosTag::Verb)), "confirm");
        assert_eq!(lemmatize("noted", Some(PosTag::Verb)), "note");
    }

    #[test]
    fn plurals() {
        assert_eq!(lemmatize("symptoms", Some(PosTag::Noun)), "symptom");
        assert_eq!(lemmatize("studies", Some(PosTag::Noun)), "study");
        assert_eq!(lemmatize("boxes", Some(PosTag::Noun)), "box");
        // -ss and -us endings are not plural.
        assert_eq!(lemmatize("illness", Some(PosTag::Noun)), "illness");
        assert_eq!(lemmatize("status", Some(PosTag::Noun)), "status");
    }

    #[test]
    fn tag_hint_disambiguates_irregulars() {
        // "felt" as a noun (the fabric) should not map to "feel".
        assert_eq!(lemmatize("felt", Some(PosTag::Noun)), "felt");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(lemmatize("is", Some(PosTag::Noun)), "is");
        assert_eq!(lemmatize("as", None), "as");
    }
}
