//! Rule-based part-of-speech tagging.
//!
//! Lexicon lookups for closed classes, suffix heuristics for open
//! classes, and a small set of contextual repair rules (a word after a
//! determiner is nominal, etc.). This mirrors the pre-statistical tagger
//! design (Brill-style), which is deterministic and dependency-free —
//! adequate for the pipeline's needs (the case study uses POS only for
//! filtering candidate targets).

use crate::lexicon::*;
use crate::tokenizer::{Token, TokenKind};

/// Part-of-speech tags (coarse universal-style set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Noun (default open-class fallback).
    Noun,
    /// Verb.
    Verb,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Pronoun.
    Pron,
    /// Determiner.
    Det,
    /// Preposition / adposition.
    Prep,
    /// Conjunction.
    Conj,
    /// Numeral.
    Num,
    /// Punctuation.
    Punct,
}

impl PosTag {
    /// Canonical lowercase name (used when exporting to relations).
    pub fn name(&self) -> &'static str {
        match self {
            PosTag::Noun => "noun",
            PosTag::Verb => "verb",
            PosTag::Adj => "adj",
            PosTag::Adv => "adv",
            PosTag::Pron => "pron",
            PosTag::Det => "det",
            PosTag::Prep => "prep",
            PosTag::Conj => "conj",
            PosTag::Num => "num",
            PosTag::Punct => "punct",
        }
    }
}

fn lexicon_tag(word: &str) -> Option<PosTag> {
    if DETERMINERS.contains(&word) {
        Some(PosTag::Det)
    } else if PRONOUNS.contains(&word) {
        Some(PosTag::Pron)
    } else if PREPOSITIONS.contains(&word) {
        Some(PosTag::Prep)
    } else if CONJUNCTIONS.contains(&word) {
        Some(PosTag::Conj)
    } else if COMMON_VERBS.contains(&word) {
        Some(PosTag::Verb)
    } else if COMMON_ADJECTIVES.contains(&word) {
        Some(PosTag::Adj)
    } else if COMMON_ADVERBS.contains(&word) {
        Some(PosTag::Adv)
    } else {
        None
    }
}

fn suffix_tag(word: &str) -> PosTag {
    const ADJ_SUFFIXES: &[&str] = &[
        "ous", "ful", "ive", "able", "ible", "al", "ic", "ish", "less", "ary", "ory",
    ];
    const ADV_SUFFIXES: &[&str] = &["ly"];
    const VERB_SUFFIXES: &[&str] = &["ize", "ise", "ate", "ify"];
    const NOUN_SUFFIXES: &[&str] = &[
        "tion", "sion", "ment", "ness", "ity", "ism", "ist", "ance", "ence", "itis", "osis",
        "emia", "pathy", "ology",
    ];
    for s in ADV_SUFFIXES {
        if word.len() > s.len() + 2 && word.ends_with(s) {
            return PosTag::Adv;
        }
    }
    for s in NOUN_SUFFIXES {
        if word.len() > s.len() + 1 && word.ends_with(s) {
            return PosTag::Noun;
        }
    }
    for s in ADJ_SUFFIXES {
        if word.len() > s.len() + 2 && word.ends_with(s) {
            return PosTag::Adj;
        }
    }
    for s in VERB_SUFFIXES {
        if word.len() > s.len() + 1 && word.ends_with(s) {
            return PosTag::Verb;
        }
    }
    // -ing / -ed: verbal forms.
    if word.len() > 4 && (word.ends_with("ing") || word.ends_with("ed")) {
        return PosTag::Verb;
    }
    PosTag::Noun
}

/// Tags a token sequence (parallel vector).
pub fn tag_tokens(tokens: &[Token], source: &str) -> Vec<PosTag> {
    let mut tags: Vec<PosTag> = tokens
        .iter()
        .map(|t| match t.kind {
            TokenKind::Punct => PosTag::Punct,
            TokenKind::Number => PosTag::Num,
            TokenKind::Word => {
                let w = t.text(source).to_lowercase();
                lexicon_tag(&w).unwrap_or_else(|| suffix_tag(&w))
            }
        })
        .collect();

    // Contextual repair: efter a determiner, a "verb" reading of an
    // ambiguous open-class word is almost always nominal ("the tests").
    for i in 1..tags.len() {
        if tags[i] == PosTag::Verb && tags[i - 1] == PosTag::Det {
            tags[i] = PosTag::Noun;
        }
    }
    // An adjective directly before punctuation or end after a copula
    // stays; a noun before a noun could be adjectival — left as-is (the
    // pipeline never needs that distinction).
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn tags(src: &str) -> Vec<PosTag> {
        tag_tokens(&tokenize(src), src)
    }

    #[test]
    fn closed_classes_from_lexicon() {
        assert_eq!(
            tags("the patient was in bed"),
            vec![
                PosTag::Det,
                PosTag::Pron, // "patient" listed as pronoun-ish referent in lexicon
                PosTag::Verb,
                PosTag::Prep,
                PosTag::Noun
            ]
        );
    }

    #[test]
    fn suffix_heuristics() {
        assert_eq!(tags("infection")[0], PosTag::Noun);
        assert_eq!(tags("quickly")[0], PosTag::Adv);
        assert_eq!(tags("respiratory")[0], PosTag::Adj);
        assert_eq!(tags("stabilize")[0], PosTag::Verb);
        assert_eq!(tags("coughing")[0], PosTag::Verb);
    }

    #[test]
    fn numbers_and_punctuation() {
        let t = tags("38.5 !");
        assert_eq!(t, vec![PosTag::Num, PosTag::Punct]);
    }

    #[test]
    fn determiner_repair_rule() {
        // "tests" is in the verb lexicon; after "the" it must be a noun.
        let t = tags("the tests");
        assert_eq!(t, vec![PosTag::Det, PosTag::Noun]);
        let t = tags("he tests");
        assert_eq!(t[1], PosTag::Verb);
    }

    #[test]
    fn default_is_noun() {
        assert_eq!(tags("zyzzyva")[0], PosTag::Noun);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PosTag::Noun.name(), "noun");
        assert_eq!(PosTag::Punct.name(), "punct");
    }
}
