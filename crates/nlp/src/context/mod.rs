//! The ConText algorithm (Harkema et al., *J. Biomedical Informatics*
//! 2009) — assertion classification for clinical concepts.
//!
//! Given target concept spans inside a sentence, ConText decides whether
//! each is **negated** ("denies fever"), **hypothetical** ("if symptoms
//! develop"), **historical** ("history of pneumonia"), experienced by
//! someone else (**family** — "mother tested positive"), **uncertain**
//! ("possible covid"), or positively asserted ("confirmed covid-19").
//!
//! Mechanics: *modifier cues* are matched in the sentence; each cue
//! projects a **scope** forward and/or backward, truncated by
//! termination cues (`but`, `however`, …), a token window, and the
//! sentence boundary. Targets inside the scope acquire the cue's
//! category. This is the algorithm medSpaCy's `ConText` component
//! implements, reproduced here over byte-offset spans.

mod rules;

pub use rules::default_rules;

use crate::matcher::PhraseMatcher;
use crate::tokenizer::{tokenize, Token};

/// Assertion categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModifierCategory {
    /// Explicitly absent ("no", "denies", "ruled out").
    NegatedExistence,
    /// Explicitly present ("confirmed", "positive for").
    PositiveExistence,
    /// Conditional / future ("if", "should", "return if").
    Hypothetical,
    /// Past, not current ("history of", "in 2019").
    Historical,
    /// Someone other than the patient ("mother", "family member").
    FamilyExperiencer,
    /// Hedged ("possible", "cannot rule out").
    Uncertain,
}

impl ModifierCategory {
    /// Stable lowercase name (for relations and CSV files).
    pub fn name(&self) -> &'static str {
        match self {
            ModifierCategory::NegatedExistence => "negated",
            ModifierCategory::PositiveExistence => "positive",
            ModifierCategory::Hypothetical => "hypothetical",
            ModifierCategory::Historical => "historical",
            ModifierCategory::FamilyExperiencer => "family",
            ModifierCategory::Uncertain => "uncertain",
        }
    }

    /// Parses a stable name back into a category.
    pub fn from_name(name: &str) -> Option<ModifierCategory> {
        Some(match name {
            "negated" => ModifierCategory::NegatedExistence,
            "positive" => ModifierCategory::PositiveExistence,
            "hypothetical" => ModifierCategory::Hypothetical,
            "historical" => ModifierCategory::Historical,
            "family" => ModifierCategory::FamilyExperiencer,
            "uncertain" => ModifierCategory::Uncertain,
            _ => return None,
        })
    }
}

/// Scope direction of a modifier cue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModifierDirection {
    /// Modifies targets after the cue.
    Forward,
    /// Modifies targets before the cue.
    Backward,
    /// Both directions.
    Bidirectional,
    /// Not a modifier: terminates open scopes ("but", "however").
    Terminate,
    /// A *pseudo* cue (NegEx-style): matches so that it suppresses any
    /// shorter cue it contains ("history of present illness" blocks
    /// "history of"), but asserts nothing itself.
    Pseudo,
}

/// One cue phrase with its behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModifierRule {
    /// The cue phrase (matched case-insensitively, token-aligned).
    pub phrase: String,
    /// Category asserted on targets in scope.
    pub category: ModifierCategory,
    /// Scope direction.
    pub direction: ModifierDirection,
    /// Maximum scope length in *tokens* (`None` = to sentence edge).
    pub max_scope: Option<usize>,
}

impl ModifierRule {
    /// Convenience constructor.
    pub fn new(
        phrase: &str,
        category: ModifierCategory,
        direction: ModifierDirection,
        max_scope: Option<usize>,
    ) -> Self {
        ModifierRule {
            phrase: phrase.to_string(),
            category,
            direction,
            max_scope,
        }
    }
}

/// A cue occurrence with its resolved scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextModifier {
    /// Byte range of the cue phrase.
    pub cue: (usize, usize),
    /// Category asserted.
    pub category: ModifierCategory,
    /// Byte range the cue governs.
    pub scope: (usize, usize),
}

/// Assertion result for one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetAssertion {
    /// Byte range of the target concept.
    pub target: (usize, usize),
    /// Categories asserted by in-scope cues (sorted, deduplicated).
    pub categories: Vec<ModifierCategory>,
}

impl TargetAssertion {
    /// Whether a category was asserted.
    pub fn has(&self, c: ModifierCategory) -> bool {
        self.categories.contains(&c)
    }
}

/// A compiled ConText engine.
#[derive(Debug, Clone)]
pub struct ContextEngine {
    rules: Vec<ModifierRule>,
    matcher: PhraseMatcher,
}

impl Default for ContextEngine {
    fn default() -> Self {
        ContextEngine::new(default_rules())
    }
}

impl ContextEngine {
    /// Compiles a rule set.
    pub fn new(rules: Vec<ModifierRule>) -> Self {
        let mut matcher = PhraseMatcher::new();
        for (i, rule) in rules.iter().enumerate() {
            matcher.add(&i.to_string(), &rule.phrase);
        }
        ContextEngine { rules, matcher }
    }

    /// The rule set.
    pub fn rules(&self) -> &[ModifierRule] {
        &self.rules
    }

    /// Resolves modifier cues and scopes within one sentence
    /// (`sentence` is a byte range of `text`).
    pub fn modifiers_in_sentence(
        &self,
        text: &str,
        sentence: (usize, usize),
    ) -> Vec<ContextModifier> {
        let (s_start, s_end) = sentence;
        let sent_text = &text[s_start..s_end];
        let tokens: Vec<Token> = tokenize(sent_text);

        // Cue and termination occurrences, in token space.
        struct Cue {
            rule: usize,
            start_tok: usize,
            end_tok: usize,
            start: usize,
            end: usize,
        }
        let mut cues: Vec<Cue> = Vec::new();
        let mut terminators: Vec<usize> = Vec::new(); // token indices
        let mut pseudo_ranges: Vec<(usize, usize)> = Vec::new();
        for m in self.matcher.find(&tokens, sent_text) {
            let rule_idx: usize = m.label.parse().expect("labels are indices");
            let start_tok = tokens
                .iter()
                .position(|t| t.start == m.start)
                .expect("match starts on a token");
            let end_tok = tokens
                .iter()
                .position(|t| t.end == m.end)
                .expect("match ends on a token");
            if self.rules[rule_idx].direction == ModifierDirection::Terminate {
                terminators.push(start_tok);
            } else if self.rules[rule_idx].direction == ModifierDirection::Pseudo {
                pseudo_ranges.push((m.start, m.end));
            } else {
                cues.push(Cue {
                    rule: rule_idx,
                    start_tok,
                    end_tok,
                    start: m.start,
                    end: m.end,
                });
            }
        }

        // ConText precedence: a cue strictly contained in a longer cue —
        // or in a pseudo cue — is subsumed by it ("evidence of" inside
        // "no evidence of"; "history of" inside the pseudo
        // "history of present illness").
        let ranges: Vec<(usize, usize)> = cues
            .iter()
            .map(|c| (c.start, c.end))
            .chain(pseudo_ranges.iter().copied())
            .collect();
        cues.retain(|c| {
            !ranges
                .iter()
                .any(|&(s, e)| (s < c.start || e > c.end) && s <= c.start && c.end <= e)
        });

        let mut out = Vec::new();
        for cue in &cues {
            let rule = &self.rules[cue.rule];
            let window = rule.max_scope.unwrap_or(usize::MAX);

            let forward = |out: &mut Vec<ContextModifier>| {
                let mut end_tok = tokens.len().saturating_sub(1);
                // Truncate at the first terminator after the cue.
                if let Some(&t) = terminators.iter().filter(|&&t| t > cue.end_tok).min() {
                    end_tok = end_tok.min(t.saturating_sub(1));
                }
                // Truncate at the window.
                end_tok = end_tok.min(cue.end_tok.saturating_add(window));
                if end_tok <= cue.end_tok && cue.end_tok + 1 > tokens.len() - 1 {
                    // Cue at sentence end: empty forward scope.
                }
                if cue.end_tok < tokens.len() - 1 && end_tok > cue.end_tok {
                    out.push(ContextModifier {
                        cue: (s_start + cue.start, s_start + cue.end),
                        category: rule.category,
                        scope: (
                            s_start + tokens[cue.end_tok + 1].start,
                            s_start + tokens[end_tok].end,
                        ),
                    });
                }
            };
            let backward = |out: &mut Vec<ContextModifier>| {
                let mut start_tok = 0usize;
                if let Some(&t) = terminators.iter().filter(|&&t| t < cue.start_tok).max() {
                    start_tok = start_tok.max(t + 1);
                }
                start_tok = start_tok.max(cue.start_tok.saturating_sub(window));
                if cue.start_tok > 0 && start_tok < cue.start_tok {
                    out.push(ContextModifier {
                        cue: (s_start + cue.start, s_start + cue.end),
                        category: rule.category,
                        scope: (
                            s_start + tokens[start_tok].start,
                            s_start + tokens[cue.start_tok - 1].end,
                        ),
                    });
                }
            };

            match rule.direction {
                ModifierDirection::Forward => forward(&mut out),
                ModifierDirection::Backward => backward(&mut out),
                ModifierDirection::Bidirectional => {
                    forward(&mut out);
                    backward(&mut out);
                }
                ModifierDirection::Terminate | ModifierDirection::Pseudo => {
                    unreachable!("filtered above")
                }
            }
        }
        out
    }

    /// Asserts categories for each target span of one sentence.
    pub fn assert_targets(
        &self,
        text: &str,
        sentence: (usize, usize),
        targets: &[(usize, usize)],
    ) -> Vec<TargetAssertion> {
        let modifiers = self.modifiers_in_sentence(text, sentence);
        targets
            .iter()
            .map(|&(t_start, t_end)| {
                let mut categories: Vec<ModifierCategory> = modifiers
                    .iter()
                    .filter(|m| {
                        let (s, e) = m.scope;
                        // Target must overlap the scope and not be the cue
                        // itself.
                        t_start < e && s < t_end && !(t_start >= m.cue.0 && t_end <= m.cue.1)
                    })
                    .map(|m| m.category)
                    .collect();
                categories.sort();
                categories.dedup();
                TargetAssertion {
                    target: (t_start, t_end),
                    categories,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ContextEngine {
        ContextEngine::default()
    }

    /// Helper: assert categories for the given target substring within
    /// the (single-sentence) text.
    fn categories(text: &str, target: &str) -> Vec<ModifierCategory> {
        let start = text.find(target).expect("target present");
        let assertion =
            engine().assert_targets(text, (0, text.len()), &[(start, start + target.len())]);
        assertion[0].categories.clone()
    }

    #[test]
    fn forward_negation() {
        assert_eq!(
            categories("Patient denies fever", "fever"),
            vec![ModifierCategory::NegatedExistence]
        );
        assert_eq!(
            categories("no evidence of covid-19", "covid-19"),
            vec![ModifierCategory::NegatedExistence]
        );
    }

    #[test]
    fn backward_negation() {
        assert_eq!(
            categories("covid-19 was ruled out", "covid-19"),
            vec![ModifierCategory::NegatedExistence]
        );
    }

    #[test]
    fn termination_cuts_scope() {
        // "but" terminates the negation before "cough".
        assert_eq!(
            categories("denies fever but reports cough", "cough"),
            vec![]
        );
        assert_eq!(
            categories("denies fever but reports cough", "fever"),
            vec![ModifierCategory::NegatedExistence]
        );
    }

    #[test]
    fn hypothetical_and_family() {
        assert_eq!(
            categories("return if fever develops", "fever"),
            vec![ModifierCategory::Hypothetical]
        );
        assert_eq!(
            categories("mother tested positive for covid-19", "covid-19"),
            vec![
                ModifierCategory::PositiveExistence,
                ModifierCategory::FamilyExperiencer
            ]
        );
    }

    #[test]
    fn historical() {
        assert_eq!(
            categories("history of pneumonia noted", "pneumonia"),
            vec![ModifierCategory::Historical]
        );
    }

    #[test]
    fn uncertainty() {
        assert_eq!(
            categories("possible covid-19 infection", "covid-19"),
            vec![ModifierCategory::Uncertain]
        );
    }

    #[test]
    fn positive_existence() {
        assert_eq!(
            categories("confirmed covid-19 infection", "covid-19"),
            vec![ModifierCategory::PositiveExistence]
        );
    }

    #[test]
    fn unmodified_target_has_no_categories() {
        assert_eq!(categories("patient has covid-19", "covid-19"), vec![]);
    }

    #[test]
    fn cue_does_not_modify_itself() {
        // "positive" appears as both cue and (part of) target elsewhere;
        // ensure a target equal to the cue span is skipped.
        let text = "positive";
        let out = engine().assert_targets(text, (0, text.len()), &[(0, text.len())]);
        assert!(out[0].categories.is_empty());
    }

    #[test]
    fn scope_respects_sentence_bounds() {
        // Two sentences; negation in the first must not leak.
        let text = "Patient denies fever. Reports covid-19 today.";
        let second = text.find("Reports").unwrap();
        let target = text.find("covid-19").unwrap();
        let out = engine().assert_targets(
            text,
            (second, text.len()),
            &[(target, target + "covid-19".len())],
        );
        assert!(out[0].categories.is_empty());
    }

    #[test]
    fn window_limits_scope() {
        let rules = vec![ModifierRule::new(
            "no",
            ModifierCategory::NegatedExistence,
            ModifierDirection::Forward,
            Some(2),
        )];
        let eng = ContextEngine::new(rules);
        let text = "no cough wheeze or fever";
        let fever = text.find("fever").unwrap();
        let cough = text.find("cough").unwrap();
        let out = eng.assert_targets(
            text,
            (0, text.len()),
            &[(cough, cough + 5), (fever, fever + 5)],
        );
        assert_eq!(out[0].categories, vec![ModifierCategory::NegatedExistence]);
        assert!(out[1].categories.is_empty(), "beyond the 2-token window");
    }

    #[test]
    fn modifiers_report_cue_and_scope() {
        let text = "denies fever today";
        let mods = engine().modifiers_in_sentence(text, (0, text.len()));
        assert_eq!(mods.len(), 1);
        assert_eq!(&text[mods[0].cue.0..mods[0].cue.1], "denies");
        assert_eq!(&text[mods[0].scope.0..mods[0].scope.1], "fever today");
    }
}
