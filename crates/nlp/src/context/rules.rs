//! The default ConText rule set.
//!
//! Cue lexicon distilled from the public NegEx/ConText term lists
//! (Chapman et al.) and the medSpaCy defaults, restricted to the cues the
//! synthetic corpus generator can produce plus common clinical phrasing.

use super::{ModifierCategory, ModifierDirection, ModifierRule};

fn rule(
    phrase: &str,
    category: ModifierCategory,
    direction: ModifierDirection,
    max_scope: Option<usize>,
) -> ModifierRule {
    ModifierRule::new(phrase, category, direction, max_scope)
}

/// Builds the default rule set.
pub fn default_rules() -> Vec<ModifierRule> {
    use ModifierCategory::*;
    use ModifierDirection::*;

    let mut rules = Vec::new();

    // --- Negated existence: forward cues -----------------------------
    for phrase in [
        "no",
        "not",
        "denies",
        "denied",
        "negative for",
        "no evidence of",
        "no signs of",
        "no sign of",
        "without",
        "absence of",
        "free of",
        "never had",
        "fails to reveal",
        "test negative",
        "tested negative for",
        "screen negative for",
        "rules out",
        "ruled out for",
        "declines",
        "no new",
        "resolved without",
        "unremarkable for",
    ] {
        rules.push(rule(phrase, NegatedExistence, Forward, Some(10)));
    }
    // --- Negated existence: backward cues ----------------------------
    for phrase in [
        "was ruled out",
        "is ruled out",
        "ruled out",
        "unlikely",
        "not detected",
        "was negative",
        "is negative",
        "came back negative",
    ] {
        rules.push(rule(phrase, NegatedExistence, Backward, Some(10)));
    }

    // --- Positive existence ------------------------------------------
    for phrase in [
        "confirmed",
        "positive for",
        "diagnosed with",
        "diagnosis of",
        "tested positive for",
        "test positive for",
        "consistent with",
        "evidence of",
        "presents with",
        "presented with",
        "acute",
    ] {
        rules.push(rule(phrase, PositiveExistence, Forward, Some(10)));
    }
    for phrase in [
        "was positive",
        "is positive",
        "came back positive",
        "was confirmed",
        "is confirmed",
        "detected",
        "was detected",
    ] {
        rules.push(rule(phrase, PositiveExistence, Backward, Some(10)));
    }

    // --- Hypothetical --------------------------------------------------
    for phrase in [
        "if",
        "return if",
        "should",
        "in case of",
        "monitor for",
        "watch for",
        "precautions for",
        "screening for",
        "to be tested for",
        "risk of",
        "risk for",
        "concern for possible exposure to",
        "pending",
    ] {
        rules.push(rule(phrase, Hypothetical, Forward, Some(12)));
    }
    for phrase in ["is pending", "results pending", "will be tested"] {
        rules.push(rule(phrase, Hypothetical, Backward, Some(10)));
    }

    // --- Historical -----------------------------------------------------
    for phrase in [
        "history of",
        "hx of",
        "past medical history of",
        "previous",
        "prior",
        "in the past",
        "years ago",
        "last year",
        "childhood",
        "previously had",
        "resolved",
    ] {
        rules.push(rule(phrase, Historical, Forward, Some(10)));
    }
    for phrase in [
        "in the past",
        "years ago",
        "last year",
        "as a child",
        "has resolved",
    ] {
        rules.push(rule(phrase, Historical, Backward, Some(10)));
    }

    // --- Family experiencer ---------------------------------------------
    for phrase in [
        "mother",
        "father",
        "brother",
        "sister",
        "son",
        "daughter",
        "wife",
        "husband",
        "grandmother",
        "grandfather",
        "aunt",
        "uncle",
        "cousin",
        "family member",
        "family members",
        "roommate",
        "coworker",
        "co-worker",
        "neighbor",
        "spouse",
        "partner",
        "household contact",
    ] {
        rules.push(rule(phrase, FamilyExperiencer, Forward, Some(12)));
    }

    // --- Uncertain -------------------------------------------------------
    for phrase in [
        "possible",
        "possibly",
        "probable",
        "presumed",
        "suspected",
        "suspicious for",
        "may have",
        "might have",
        "cannot rule out",
        "can't rule out",
        "questionable",
        "equivocal",
        "vs",
        "differential includes",
    ] {
        rules.push(rule(phrase, Uncertain, Forward, Some(10)));
    }
    for phrase in [
        "is suspected",
        "was suspected",
        "is questionable",
        "not excluded",
    ] {
        rules.push(rule(phrase, Uncertain, Backward, Some(10)));
    }

    // --- Pseudo cues: block false cue matches inside fixed phrases ----
    for phrase in [
        "history of present illness",
        "hx of present illness",
        "no increase",
        "no change",
        "not certain whether",
        "not certain if",
        "gram negative",
        "without difficulty",
    ] {
        // Category is irrelevant for pseudo cues; reuse Uncertain.
        rules.push(rule(phrase, Uncertain, Pseudo, None));
    }

    // --- Termination (pseudo-category; direction carries the meaning) ---
    for phrase in [
        "but",
        "however",
        "although",
        "though",
        "aside from",
        "except",
        "apart from",
        "other than",
        "which",
        "who",
        "secondary to",
    ] {
        // Category is irrelevant for terminators; reuse Uncertain.
        rules.push(rule(phrase, Uncertain, Terminate, None));
    }

    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_set_is_nontrivial() {
        let rules = default_rules();
        assert!(rules.len() > 90, "got {}", rules.len());
    }

    #[test]
    fn every_category_is_covered() {
        use ModifierCategory::*;
        let rules = default_rules();
        for cat in [
            NegatedExistence,
            PositiveExistence,
            Hypothetical,
            Historical,
            FamilyExperiencer,
            Uncertain,
        ] {
            assert!(
                rules
                    .iter()
                    .any(|r| r.category == cat && r.direction != ModifierDirection::Terminate),
                "no rule for {cat:?}"
            );
        }
    }

    #[test]
    fn has_pseudo_cues() {
        assert!(default_rules()
            .iter()
            .any(|r| r.direction == ModifierDirection::Pseudo));
    }

    #[test]
    fn has_terminators() {
        assert!(default_rules()
            .iter()
            .any(|r| r.direction == ModifierDirection::Terminate));
    }

    #[test]
    fn phrases_are_lowercase() {
        for r in default_rules() {
            assert_eq!(r.phrase, r.phrase.to_lowercase());
        }
    }
}
