//! Abbreviation-aware sentence splitting.
//!
//! Clinical notes mix prose with line-oriented structure, so the splitter
//! breaks on sentence punctuation (`.` `!` `?`) — unless the period
//! belongs to a known abbreviation or a decimal — and additionally on
//! blank lines and bullet-ish newlines, which is how medSpaCy's
//! `PyRuSH`-style splitters behave on notes.

use crate::lexicon::ABBREVIATIONS;
use crate::tokenizer::{tokenize, TokenKind};

/// A sentence: a byte range of the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sentence {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Sentence {
    /// The sentence text.
    pub fn text<'t>(&self, source: &'t str) -> &'t str {
        &source[self.start..self.end]
    }
}

/// Splits `text` into sentences (trimmed, never empty).
pub fn split_sentences(text: &str) -> Vec<Sentence> {
    let tokens = tokenize(text);
    let mut boundaries: Vec<usize> = Vec::new(); // byte offsets *after* which a sentence ends

    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Punct {
            continue;
        }
        let c = tok.text(text);
        if c != "." && c != "!" && c != "?" {
            continue;
        }
        if c == "." {
            // Abbreviation? look at the previous token.
            if let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) {
                if prev.end == tok.start && prev.kind == TokenKind::Word {
                    let w = prev.text(text).to_lowercase();
                    if ABBREVIATIONS.contains(&w.as_str()) {
                        continue;
                    }
                    // Single-letter initials ("J. Smith").
                    if w.chars().count() == 1 {
                        continue;
                    }
                }
            }
        }
        // Consume any immediately following closing quotes/brackets.
        let mut end = tok.end;
        let mut j = i + 1;
        while let Some(next) = tokens.get(j) {
            if next.start == end && matches!(next.text(text), "\"" | "'" | ")" | "]") {
                end = next.end;
                j += 1;
            } else {
                break;
            }
        }
        boundaries.push(end);
    }

    // Blank lines always split.
    let mut search_from = 0;
    while let Some(rel) = text[search_from..].find("\n\n") {
        boundaries.push(search_from + rel);
        search_from += rel + 2;
    }
    // Newlines followed by a bullet or header-ish char split too.
    for (i, _) in text.match_indices('\n') {
        let rest = text[i + 1..].trim_start_matches([' ', '\t']);
        if rest.starts_with(['-', '*', '•'])
            || rest.starts_with(char::is_uppercase) && text[..i].ends_with(':')
        {
            boundaries.push(i);
        }
    }

    boundaries.sort_unstable();
    boundaries.dedup();

    let mut sentences = Vec::new();
    let mut start = 0usize;
    for &b in &boundaries {
        push_trimmed(text, start, b, &mut sentences);
        start = b;
    }
    push_trimmed(text, start, text.len(), &mut sentences);
    sentences
}

fn push_trimmed(text: &str, start: usize, end: usize, out: &mut Vec<Sentence>) {
    if start >= end {
        return;
    }
    let slice = &text[start..end];
    let leading = slice.len() - slice.trim_start().len();
    let trailing = slice.len() - slice.trim_end().len();
    let (s, e) = (start + leading, end - trailing);
    if s < e {
        out.push(Sentence { start: s, end: e });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<&str> {
        split_sentences(src).iter().map(|s| s.text(src)).collect()
    }

    #[test]
    fn splits_on_terminal_punctuation() {
        assert_eq!(
            texts("First sentence. Second one! Third?"),
            vec!["First sentence.", "Second one!", "Third?"]
        );
    }

    #[test]
    fn keeps_abbreviations_together() {
        assert_eq!(
            texts("Seen by Dr. Smith today. Follow up later."),
            vec!["Seen by Dr. Smith today.", "Follow up later."]
        );
    }

    #[test]
    fn keeps_decimals_together() {
        assert_eq!(
            texts("Temp was 38.5 today. Stable."),
            vec!["Temp was 38.5 today.", "Stable."]
        );
    }

    #[test]
    fn blank_lines_split() {
        assert_eq!(
            texts("First block\n\nSecond block"),
            vec!["First block", "Second block"]
        );
    }

    #[test]
    fn single_initial_does_not_split() {
        assert_eq!(texts("Seen by J. Smith."), vec!["Seen by J. Smith."]);
    }

    #[test]
    fn offsets_are_trimmed() {
        let src = "  Hello there.  Next.";
        let ss = split_sentences(src);
        assert_eq!(ss[0].text(src), "Hello there.");
        assert_eq!(ss[1].text(src), "Next.");
        assert_eq!(ss[0].start, 2);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n\n  ").is_empty());
    }

    #[test]
    fn closing_quote_stays_with_sentence() {
        assert_eq!(
            texts("He said \"stop.\" Then left."),
            vec!["He said \"stop.\"", "Then left."]
        );
    }
}
