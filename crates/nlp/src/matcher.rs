//! Case-insensitive multi-token phrase matching.
//!
//! The pipeline's *target matcher*: given a lexicon of phrases (each
//! carrying a label), find every occurrence over the token sequence.
//! Matching is token-aligned — `"covid"` does not match inside
//! `"covidiom"` — and longest-match-wins among overlapping phrases with
//! the same start, which is how medSpaCy's `TargetMatcher` resolves
//! overlaps.

use crate::tokenizer::{lowered, Token};
use rustc_hash::FxHashMap;

/// A phrase occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhraseMatch {
    /// Byte offset of the first matched token.
    pub start: usize,
    /// Byte offset one past the last matched token.
    pub end: usize,
    /// Label of the matched phrase.
    pub label: String,
    /// The canonical (lexicon) form of the phrase.
    pub phrase: String,
}

/// A compiled phrase lexicon.
#[derive(Debug, Clone, Default)]
pub struct PhraseMatcher {
    /// First-token → list of (token sequence, label, canonical phrase).
    by_first: FxHashMap<String, Vec<(Vec<String>, String, String)>>,
}

impl PhraseMatcher {
    /// An empty matcher.
    pub fn new() -> Self {
        PhraseMatcher::default()
    }

    /// Adds a phrase under a label. Phrases are tokenized on whitespace
    /// and matched case-insensitively.
    pub fn add(&mut self, label: &str, phrase: &str) {
        let tokens: Vec<String> = phrase
            .split_whitespace()
            .map(|w| w.to_lowercase())
            .collect();
        if tokens.is_empty() {
            return;
        }
        self.by_first.entry(tokens[0].clone()).or_default().push((
            tokens,
            label.to_string(),
            phrase.to_string(),
        ));
    }

    /// Adds many phrases under one label.
    pub fn add_all<'p>(&mut self, label: &str, phrases: impl IntoIterator<Item = &'p str>) {
        for p in phrases {
            self.add(label, p);
        }
    }

    /// Number of phrases loaded.
    pub fn len(&self) -> usize {
        self.by_first.values().map(Vec::len).sum()
    }

    /// Whether no phrases are loaded.
    pub fn is_empty(&self) -> bool {
        self.by_first.is_empty()
    }

    /// Finds all phrase occurrences over a tokenized text. Matches with
    /// the same start keep only the longest; matches starting inside a
    /// previous match are allowed (ConText needs nested cues).
    pub fn find(&self, tokens: &[Token], source: &str) -> Vec<PhraseMatch> {
        let lower = lowered(tokens, source);
        let mut out = Vec::new();
        for i in 0..tokens.len() {
            let Some(candidates) = self.by_first.get(lower[i].as_str()) else {
                continue;
            };
            let mut best: Option<(usize, &str, &str)> = None; // (token_len, label, phrase)
            for (seq, label, phrase) in candidates {
                if i + seq.len() > tokens.len() {
                    continue;
                }
                if seq
                    .iter()
                    .zip(&lower[i..i + seq.len()])
                    .all(|(a, b)| a == b)
                {
                    match best {
                        Some((blen, _, _)) if blen >= seq.len() => {}
                        _ => best = Some((seq.len(), label, phrase)),
                    }
                }
            }
            if let Some((len, label, phrase)) = best {
                out.push(PhraseMatch {
                    start: tokens[i].start,
                    end: tokens[i + len - 1].end,
                    label: label.to_string(),
                    phrase: phrase.to_string(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn matcher() -> PhraseMatcher {
        let mut m = PhraseMatcher::new();
        m.add("COVID", "covid-19");
        m.add("COVID", "covid");
        m.add("COVID", "coronavirus");
        m.add("FEVER", "fever");
        m.add("FEVER", "high fever");
        m
    }

    fn find(src: &str) -> Vec<(String, String)> {
        let tokens = tokenize(src);
        matcher()
            .find(&tokens, src)
            .into_iter()
            .map(|m| (m.label, src[m.start..m.end].to_string()))
            .collect()
    }

    #[test]
    fn single_and_multi_token_phrases() {
        // Nested matches at distinct starts are all reported ("fever"
        // inside "high fever") — ConText relies on that.
        assert_eq!(
            find("Patient has COVID-19 and high fever."),
            vec![
                ("COVID".to_string(), "COVID-19".to_string()),
                ("FEVER".to_string(), "high fever".to_string()),
                ("FEVER".to_string(), "fever".to_string()),
            ]
        );
    }

    #[test]
    fn longest_match_wins_at_same_start() {
        // "high fever" beats "fever" when starting at "high"; the bare
        // "fever" token still matches at its own start.
        let matches = find("high fever");
        assert_eq!(matches[0].1, "high fever");
        assert_eq!(matches[1].1, "fever");
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(find("CORONAVIRUS detected")[0].0, "COVID");
    }

    #[test]
    fn token_aligned_no_substring_matches() {
        assert!(find("covidiom is not a disease").is_empty());
    }

    #[test]
    fn byte_offsets_correct() {
        let src = "note: covid positive";
        let tokens = tokenize(src);
        let m = &matcher().find(&tokens, src)[0];
        assert_eq!(&src[m.start..m.end], "covid");
        assert_eq!(m.start, 6);
    }

    #[test]
    fn empty_matcher_finds_nothing() {
        let m = PhraseMatcher::new();
        assert!(m.is_empty());
        let src = "anything";
        assert!(m.find(&tokenize(src), src).is_empty());
    }

    #[test]
    fn phrase_count() {
        assert_eq!(matcher().len(), 5);
    }
}
