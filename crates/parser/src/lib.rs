//! # spannerlog-parser
//!
//! Lexer, AST, and parser for **Spannerlog** — the paper's Datalog variant
//! over strings and spans with IE atoms (§2).
//!
//! The concrete syntax follows the paper's examples, ASCII-fied the same
//! way the original implementation does (`<-` for ←, `->` for ↦):
//!
//! ```text
//! # declarations give relations a typed schema
//! new Texts(str, str)
//!
//! # facts are ground atoms
//! Texts("2024-01-01", "reach me at ann@gmail.com")
//!
//! # rules; IE atoms call registered IE functions
//! R(usr, dom) <- Texts(d, t), rgx("(\w+)@(\w+)\.\w+", t) -> (usr, dom).
//!
//! # aggregation in the head (paper §3.1)
//! Summary(d, lex_concat(str(u))) <- Texts(d, t), R(u, dom)
//!
//! # queries: constants and wildcards filter, variables project
//! ?R(usr, "gmail")
//! ```
//!
//! Beyond the paper's core we also parse stratified **negation**
//! (`not Atom(...)`) and comparison guards (`x != y`, `n < m`) — both are
//! flagged as extensions in DESIGN.md and checked by the engine's safety
//! and stratification passes.
//!
//! Statements are self-delimiting; a trailing `.` is accepted anywhere a
//! statement ends. `#` starts a line comment. The unicode arrows `←` and
//! `↦` are accepted as synonyms of `<-` and `->`.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{
    Atom, BodyElem, CmpOp, Constant, Declaration, Fact, HeadTerm, IeAtom, Program, Query, Rule,
    Statement, Term,
};
pub use error::{caret_snippet, ParseError};
pub use parser::parse_program;
