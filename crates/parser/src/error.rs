//! Parse errors with source positions.

use thiserror::Error;

/// An error produced by the lexer or parser, carrying the 1-based source
/// line and column of the offending character or token.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
#[error("parse error at {line}:{col}: {msg}")]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl ParseError {
    /// Convenience constructor.
    pub fn new(line: usize, col: usize, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            msg: msg.into(),
        }
    }
}
