//! Parse errors with source positions.

use thiserror::Error;

/// An error produced by the lexer or parser, carrying the 1-based source
/// line and column *and* the byte offset of the offending character or
/// token, so embedding layers (e.g. `Session::prepare`) can point a
/// caret at the exact token.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
#[error("parse error at {line}:{col}: {msg}")]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub col: usize,
    /// 0-based byte offset into the source text.
    pub offset: usize,
    /// Human-readable explanation.
    pub msg: String,
}

impl ParseError {
    /// Convenience constructor.
    pub fn new(line: usize, col: usize, offset: usize, msg: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            offset,
            msg: msg.into(),
        }
    }

    /// Renders the error with a one-line caret diagnostic pointing at the
    /// offending token in `source` (the text that was parsed):
    ///
    /// ```text
    /// parse error at 2:3: expected a statement, found ')'
    ///   |   nonsense)
    ///   |   ^
    /// ```
    pub fn render(&self, source: &str) -> String {
        format!("{self}\n{}", caret_snippet(source, self.line, self.col))
    }
}

/// Renders a two-line caret diagnostic pointing at (`line`, `col`) —
/// both 1-based, `col` in characters — of `source`:
///
/// ```text
///   |   nonsense)
///   |   ^
/// ```
///
/// Shared by [`ParseError::render`] and the engine's runtime
/// diagnostics (e.g. pointing at the rule that exceeded an evaluation
/// limit). Out-of-range positions degrade to an empty source line.
pub fn caret_snippet(source: &str, line: usize, col: usize) -> String {
    let line_text = source.lines().nth(line.saturating_sub(1)).unwrap_or("");
    // Column is measured in characters; pad the caret to match.
    let pad: String = line_text
        .chars()
        .take(col.saturating_sub(1))
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    format!("  | {line_text}\n  | {pad}^")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_points_at_column() {
        let src = "new Texts(str,\n  nonsense)";
        let err = ParseError::new(2, 3, 17, "expected a type");
        let rendered = err.render(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  |   nonsense)");
        assert_eq!(lines[2], "  |   ^");
    }

    #[test]
    fn caret_survives_out_of_range_positions() {
        let err = ParseError::new(99, 99, 9999, "eof");
        let rendered = err.render("short");
        assert!(rendered.contains("parse error at 99:99"));
    }

    #[test]
    fn caret_snippet_is_reusable_standalone() {
        let snippet = caret_snippet("a\nbcd\ne", 2, 2);
        assert_eq!(snippet, "  | bcd\n  |  ^");
    }

    #[test]
    fn caret_counts_characters_not_bytes() {
        // `ë` and `é` are two bytes each: a byte-counted pad would push
        // the caret past the target. Column 6 is the `é`.
        let snippet = caret_snippet("Tëst(é)", 1, 6);
        assert_eq!(snippet, "  | Tëst(é)\n  |      ^");
    }

    #[test]
    fn parse_error_columns_are_char_based_after_non_ascii() {
        // A multi-byte ident and string literal precede the offending
        // `©` (character 13, byte 15): the reported column must be the
        // character count, while `offset` stays the byte position.
        let src = "Tëst(\"héé\", ©)";
        let err = crate::parse_program(src).unwrap_err();
        assert_eq!((err.line, err.col, err.offset), (1, 13, 15));
        let rendered = err.render(src);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "  | Tëst(\"héé\", ©)");
        assert_eq!(lines[2], format!("  | {}^", " ".repeat(12)));
    }
}
