//! Abstract syntax of Spannerlog programs.
//!
//! Every node implements `Display`, rendering concrete syntax that
//! re-parses to the same AST (round-trip tested).

use spannerlib_core::ValueType;
use std::fmt;

/// A constant literal appearing in source text.
///
/// Spans cannot be written literally — they only enter programs through
/// IE functions or imported relations — so `Constant` covers the four
/// literal types.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
}

impl Constant {
    /// The engine type of this constant.
    pub fn value_type(&self) -> ValueType {
        match self {
            Constant::Str(_) => ValueType::Str,
            Constant::Int(_) => ValueType::Int,
            Constant::Float(_) => ValueType::Float,
            Constant::Bool(_) => ValueType::Bool,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        '\r' => write!(f, "\\r")?,
                        '\\' => write!(f, "\\\\")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "\"")
            }
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Constant::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A term in an atom: variable, wildcard, or constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A named variable.
    Variable(String),
    /// `_`: matches anything, binds nothing.
    Wildcard,
    /// A constant literal.
    Const(Constant),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Variable(v) => write!(f, "{v}"),
            Term::Wildcard => write!(f, "_"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `R(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Predicate (relation) name.
    pub predicate: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.predicate, join(&self.terms))
    }
}

/// An IE atom `f(x1, …) -> (y1, …)` — the paper's `f(x̄) ↦ (ȳ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct IeAtom {
    /// IE function name.
    pub function: String,
    /// Input terms (must be bound before the call; checked by safety).
    pub inputs: Vec<Term>,
    /// Output terms (variables bind, constants/wildcards filter).
    pub outputs: Vec<Term>,
}

impl fmt::Display for IeAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}) -> ({})",
            self.function,
            join(&self.inputs),
            join(&self.outputs)
        )
    }
}

/// Comparison operators usable as body guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One element of a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyElem {
    /// A positive relational atom.
    Relation(Atom),
    /// A negated relational atom (`not R(...)`) — extension, stratified.
    Negated(Atom),
    /// An IE atom.
    Ie(IeAtom),
    /// A comparison guard (`x < y`); all variables must be bound.
    Comparison {
        /// Left operand.
        left: Term,
        /// The operator.
        op: CmpOp,
        /// Right operand.
        right: Term,
    },
}

impl fmt::Display for BodyElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyElem::Relation(a) => write!(f, "{a}"),
            BodyElem::Negated(a) => write!(f, "not {a}"),
            BodyElem::Ie(a) => write!(f, "{a}"),
            BodyElem::Comparison { left, op, right } => write!(f, "{left} {op} {right}"),
        }
    }
}

/// A head term: plain term or aggregation (paper §3.1:
/// `R(t, lex_concat(str(y))) <- …`).
#[derive(Debug, Clone, PartialEq)]
pub enum HeadTerm {
    /// A plain term (variable or constant); variables are group-by keys
    /// when any aggregate appears in the head.
    Term(Term),
    /// An aggregate application, optionally through conversion functions:
    /// `lex_concat(str(y))` has `func = lex_concat`,
    /// `conversions = [str]`, `var = y`.
    Aggregate {
        /// Aggregation function name (`count`, `sum`, `lex_concat`, …).
        func: String,
        /// Conversion functions applied innermost-last (e.g. `[str]`).
        conversions: Vec<String>,
        /// The aggregated variable.
        var: String,
    },
}

impl fmt::Display for HeadTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTerm::Term(t) => write!(f, "{t}"),
            HeadTerm::Aggregate {
                func,
                conversions,
                var,
            } => {
                write!(f, "{func}(")?;
                for c in conversions {
                    write!(f, "{c}(")?;
                }
                write!(f, "{var}")?;
                for _ in conversions {
                    write!(f, ")")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A rule `Head(…) <- body`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head predicate name.
    pub head_predicate: String,
    /// Head terms (plain or aggregate).
    pub head_terms: Vec<HeadTerm>,
    /// Body elements, in source order (the engine reorders for safety).
    pub body: Vec<BodyElem>,
    /// 1-based source line of the head (for diagnostics).
    pub line: usize,
}

impl Rule {
    /// Whether any head term is an aggregate.
    pub fn has_aggregation(&self) -> bool {
        self.head_terms
            .iter()
            .any(|t| matches!(t, HeadTerm::Aggregate { .. }))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}) <- ", self.head_predicate, join(&self.head_terms))?;
        for (i, b) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ".")
    }
}

/// A relation declaration `new R(str, span)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// Relation name.
    pub name: String,
    /// Column types.
    pub types: Vec<ValueType>,
}

impl fmt::Display for Declaration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "new {}({})", self.name, join(&self.types))
    }
}

/// A ground fact `R(c1, …, cn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Relation name.
    pub predicate: String,
    /// Constant arguments.
    pub values: Vec<Constant>,
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.predicate, join(&self.values))
    }
}

/// A query `?R(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Queried predicate.
    pub predicate: String,
    /// Terms: variables project, constants/wildcards filter.
    pub terms: Vec<Term>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}({})", self.predicate, join(&self.terms))
    }
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Relation declaration.
    Declaration(Declaration),
    /// Ground fact.
    Fact(Fact),
    /// Rule.
    Rule(Rule),
    /// Query.
    Query(Query),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Declaration(d) => write!(f, "{d}"),
            Statement::Fact(x) => write!(f, "{x}"),
            Statement::Rule(r) => write!(f, "{r}"),
            Statement::Query(q) => write!(f, "{q}"),
        }
    }
}

/// A parsed program: a sequence of statements ("cell" contents in the
/// paper's notebook embedding).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.statements {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

fn join<T: fmt::Display>(items: &[T]) -> String {
    items
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_display_escapes() {
        assert_eq!(Constant::Str("a\"b\n".into()).to_string(), r#""a\"b\n""#);
        assert_eq!(Constant::Int(-3).to_string(), "-3");
        assert_eq!(Constant::Float(2.0).to_string(), "2.0");
        assert_eq!(Constant::Float(2.5).to_string(), "2.5");
    }

    #[test]
    fn rule_display() {
        let rule = Rule {
            head_predicate: "R".into(),
            head_terms: vec![
                HeadTerm::Term(Term::Variable("x".into())),
                HeadTerm::Aggregate {
                    func: "lex_concat".into(),
                    conversions: vec!["str".into()],
                    var: "y".into(),
                },
            ],
            body: vec![
                BodyElem::Relation(Atom {
                    predicate: "S".into(),
                    terms: vec![Term::Variable("x".into()), Term::Variable("y".into())],
                }),
                BodyElem::Comparison {
                    left: Term::Variable("x".into()),
                    op: CmpOp::Neq,
                    right: Term::Const(Constant::Str("z".into())),
                },
            ],
            line: 1,
        };
        assert_eq!(
            rule.to_string(),
            r#"R(x, lex_concat(str(y))) <- S(x, y), x != "z"."#
        );
        assert!(rule.has_aggregation());
    }

    #[test]
    fn ie_atom_display() {
        let ie = IeAtom {
            function: "rgx".into(),
            inputs: vec![
                Term::Const(Constant::Str("a+".into())),
                Term::Variable("t".into()),
            ],
            outputs: vec![Term::Variable("x".into())],
        };
        assert_eq!(ie.to_string(), r#"rgx("a+", t) -> (x)"#);
    }
}
