//! Recursive-descent parser: token stream → [`Program`].
//!
//! Statements are self-delimiting (bodies are comma-separated, so the
//! next statement's leading token ends a rule); a trailing `.` is
//! consumed wherever a statement ends, matching the paper's typography.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};
use spannerlib_core::ValueType;

/// Parses a full program (one "cell" of Spannerlog source).
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut p = P { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !p.at_end() {
        statements.push(p.statement()?);
        // Optional statement terminator.
        p.eat(&Token::Dot);
    }
    Ok(Program { statements })
}

struct P {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl P {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens.get(self.pos + off).map(|s| &s.token)
    }

    fn here(&self) -> (usize, usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| (s.line, s.col, s.offset))
            .unwrap_or((1, 1, 0))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col, offset) = self.here();
        ParseError::new(line, col, offset, msg)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {what}, found {}",
                self.peek()
                    .map_or("end of input".to_string(), |t| format!("'{t}'"))
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                let Some(Spanned {
                    token: Token::Ident(name),
                    ..
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(name)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Some(Token::New) => self.declaration().map(Statement::Declaration),
            Some(Token::Question) => self.query().map(Statement::Query),
            Some(Token::Ident(_)) => self.fact_or_rule(),
            Some(other) => Err(self.err(format!("expected a statement, found '{other}'"))),
            None => Err(self.err("expected a statement")),
        }
    }

    /// `new R(type, …)`
    fn declaration(&mut self) -> Result<Declaration, ParseError> {
        self.expect(&Token::New, "'new'")?;
        let name = self.ident("relation name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut types = Vec::new();
        loop {
            let (tline, tcol, toff) = self.here();
            let tname = self.ident("a type (str, span, int, bool, float)")?;
            let t: ValueType = tname
                .parse()
                .map_err(|e: String| ParseError::new(tline, tcol, toff, e))?;
            types.push(t);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Declaration { name, types })
    }

    /// `?R(term, …)`
    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect(&Token::Question, "'?'")?;
        let predicate = self.ident("relation name")?;
        self.expect(&Token::LParen, "'('")?;
        let terms = self.term_list()?;
        self.expect(&Token::RParen, "')'")?;
        Ok(Query { predicate, terms })
    }

    /// Disambiguates facts from rules after the shared `Name(…)` prefix.
    fn fact_or_rule(&mut self) -> Result<Statement, ParseError> {
        let (line, _, _) = self.here();
        let predicate = self.ident("relation name")?;
        self.expect(&Token::LParen, "'('")?;
        let head_terms = self.head_term_list()?;
        self.expect(&Token::RParen, "')'")?;
        if self.eat(&Token::Implies) {
            let body = self.body()?;
            return Ok(Statement::Rule(Rule {
                head_predicate: predicate,
                head_terms,
                body,
                line,
            }));
        }
        // A fact: every head term must be a constant.
        let mut values = Vec::new();
        for t in head_terms {
            match t {
                HeadTerm::Term(Term::Const(c)) => values.push(c),
                other => {
                    return Err(self.err(format!(
                        "fact arguments must be constants, found '{other}' \
                         (did you forget '<-'?)"
                    )))
                }
            }
        }
        Ok(Statement::Fact(Fact { predicate, values }))
    }

    fn body(&mut self) -> Result<Vec<BodyElem>, ParseError> {
        let mut elems = vec![self.body_elem()?];
        while self.eat(&Token::Comma) {
            elems.push(self.body_elem()?);
        }
        Ok(elems)
    }

    fn body_elem(&mut self) -> Result<BodyElem, ParseError> {
        if self.eat(&Token::Not) {
            let atom = self.atom()?;
            return Ok(BodyElem::Negated(atom));
        }
        // Comparison guard: `term op term` — detectable because a term
        // followed by a comparison operator cannot start an atom.
        let looks_like_atom = matches!(self.peek(), Some(Token::Ident(_)))
            && matches!(self.peek_at(1), Some(Token::LParen));
        if !looks_like_atom {
            let left = self.term()?;
            let op = match self.peek() {
                Some(Token::Eq) => CmpOp::Eq,
                Some(Token::Neq) => CmpOp::Neq,
                Some(Token::Lt) => CmpOp::Lt,
                Some(Token::Le) => CmpOp::Le,
                Some(Token::Gt) => CmpOp::Gt,
                Some(Token::Ge) => CmpOp::Ge,
                _ => return Err(self.err("expected a comparison operator")),
            };
            self.pos += 1;
            let right = self.term()?;
            return Ok(BodyElem::Comparison { left, op, right });
        }
        // Atom or IE atom: `name(terms)` then optionally `-> (terms)`.
        let name = self.ident("predicate or IE function name")?;
        self.expect(&Token::LParen, "'('")?;
        let terms = self.term_list()?;
        self.expect(&Token::RParen, "')'")?;
        if self.eat(&Token::Arrow) {
            self.expect(&Token::LParen, "'(' after '->'")?;
            let outputs = self.term_list()?;
            self.expect(&Token::RParen, "')'")?;
            return Ok(BodyElem::Ie(IeAtom {
                function: name,
                inputs: terms,
                outputs,
            }));
        }
        Ok(BodyElem::Relation(Atom {
            predicate: name,
            terms,
        }))
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let predicate = self.ident("relation name")?;
        self.expect(&Token::LParen, "'('")?;
        let terms = self.term_list()?;
        self.expect(&Token::RParen, "')'")?;
        Ok(Atom { predicate, terms })
    }

    fn term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        if self.peek() == Some(&Token::RParen) {
            return Ok(Vec::new());
        }
        let mut terms = vec![self.term()?];
        while self.eat(&Token::Comma) {
            terms.push(self.term()?);
        }
        Ok(terms)
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.peek() {
            Some(Token::Underscore) => {
                self.pos += 1;
                Ok(Term::Wildcard)
            }
            Some(Token::Ident(_)) => {
                let name = self.ident("variable")?;
                Ok(Term::Variable(name))
            }
            Some(Token::Str(_)) => {
                let Some(Spanned {
                    token: Token::Str(s),
                    ..
                }) = self.bump()
                else {
                    unreachable!()
                };
                Ok(Term::Const(Constant::Str(s)))
            }
            Some(Token::Int(i)) => {
                let i = *i;
                self.pos += 1;
                Ok(Term::Const(Constant::Int(i)))
            }
            Some(Token::Float(x)) => {
                let x = *x;
                self.pos += 1;
                Ok(Term::Const(Constant::Float(x)))
            }
            Some(Token::Bool(b)) => {
                let b = *b;
                self.pos += 1;
                Ok(Term::Const(Constant::Bool(b)))
            }
            _ => Err(self.err("expected a term (variable, constant, or '_')")),
        }
    }

    fn head_term_list(&mut self) -> Result<Vec<HeadTerm>, ParseError> {
        if self.peek() == Some(&Token::RParen) {
            return Ok(Vec::new());
        }
        let mut terms = vec![self.head_term()?];
        while self.eat(&Token::Comma) {
            terms.push(self.head_term()?);
        }
        Ok(terms)
    }

    /// A head term: `var`, constant, or `agg(conv*(var))`.
    fn head_term(&mut self) -> Result<HeadTerm, ParseError> {
        // Aggregate: identifier followed by '('.
        if matches!(self.peek(), Some(Token::Ident(_)))
            && matches!(self.peek_at(1), Some(Token::LParen))
        {
            let func = self.ident("aggregation function")?;
            self.expect(&Token::LParen, "'('")?;
            let mut conversions = Vec::new();
            // Nested conversions: str(y), len(str(y)), …
            while matches!(self.peek(), Some(Token::Ident(_)))
                && matches!(self.peek_at(1), Some(Token::LParen))
            {
                conversions.push(self.ident("conversion function")?);
                self.expect(&Token::LParen, "'('")?;
            }
            let var = self.ident("aggregated variable")?;
            for _ in 0..conversions.len() {
                self.expect(&Token::RParen, "')' closing conversion")?;
            }
            self.expect(&Token::RParen, "')' closing aggregation")?;
            return Ok(HeadTerm::Aggregate {
                func,
                conversions,
                var,
            });
        }
        Ok(HeadTerm::Term(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("parse of {src:?} failed: {e}"))
    }

    #[test]
    fn declaration() {
        let p = program("new Texts(str, span, int, bool, float)");
        assert_eq!(
            p.statements,
            vec![Statement::Declaration(Declaration {
                name: "Texts".into(),
                types: vec![
                    ValueType::Str,
                    ValueType::Span,
                    ValueType::Int,
                    ValueType::Bool,
                    ValueType::Float
                ],
            })]
        );
    }

    #[test]
    fn fact() {
        let p = program(r#"Texts("2024-01-01", "hello", 3, true, 1.5)"#);
        match &p.statements[0] {
            Statement::Fact(f) => {
                assert_eq!(f.predicate, "Texts");
                assert_eq!(f.values.len(), 5);
                assert_eq!(f.values[2], Constant::Int(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_rule_section_3_2() {
        // R(usr, dom) <- Texts(d, t), rgx_alpha(t) -> (usr, dom)
        let p = program(r#"R(usr, dom) <- Texts(d, t), rgx("(\w+)@(\w+)", t) -> (usr, dom)."#);
        match &p.statements[0] {
            Statement::Rule(r) => {
                assert_eq!(r.head_predicate, "R");
                assert_eq!(r.body.len(), 2);
                assert!(matches!(r.body[0], BodyElem::Relation(_)));
                match &r.body[1] {
                    BodyElem::Ie(ie) => {
                        assert_eq!(ie.function, "rgx");
                        assert_eq!(ie.inputs.len(), 2);
                        assert_eq!(ie.outputs.len(), 2);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_rule_with_two_ie_atoms() {
        // T(z, v, w) <- Texts(d, t), foo(d, t) -> (z), rgx_alpha(z) -> (w, v)
        let p = program(r#"T(z, v, w) <- Texts(d, t), foo(d, t) -> (z), rgx("x", z) -> (w, v)"#);
        match &p.statements[0] {
            Statement::Rule(r) => assert_eq!(r.body.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unicode_arrows() {
        let p = program("R(x) ← S(x), f(x) ↦ (y)");
        match &p.statements[0] {
            Statement::Rule(r) => assert_eq!(r.body.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregation_rule_from_paper() {
        // R(t, lex_concat(str(y))) <- Texts(d, t), rgx_alpha(t) -> (y)
        let p = program(r#"R(t, lex_concat(str(y))) <- Texts(d, t), rgx("a", t) -> (y)"#);
        match &p.statements[0] {
            Statement::Rule(r) => {
                assert!(r.has_aggregation());
                assert_eq!(
                    r.head_terms[1],
                    HeadTerm::Aggregate {
                        func: "lex_concat".into(),
                        conversions: vec!["str".into()],
                        var: "y".into(),
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn query_with_constant_filter() {
        let p = program(r#"?R(usr, "gmail")"#);
        assert_eq!(
            p.statements,
            vec![Statement::Query(Query {
                predicate: "R".into(),
                terms: vec![
                    Term::Variable("usr".into()),
                    Term::Const(Constant::Str("gmail".into()))
                ],
            })]
        );
    }

    #[test]
    fn query_with_wildcard() {
        let p = program("?R(x, _)");
        match &p.statements[0] {
            Statement::Query(q) => assert_eq!(q.terms[1], Term::Wildcard),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_and_comparison() {
        let p = program("R(x) <- S(x), not T(x), x != \"skip\"");
        match &p.statements[0] {
            Statement::Rule(r) => {
                assert!(matches!(r.body[1], BodyElem::Negated(_)));
                assert!(matches!(
                    r.body[2],
                    BodyElem::Comparison { op: CmpOp::Neq, .. }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn consecutive_statements_self_delimit() {
        let src = r#"
            new S(str)
            S("a")
            R(x) <- S(x)
            ?R(x)
        "#;
        let p = program(src);
        assert_eq!(p.statements.len(), 4);
        assert!(matches!(p.statements[0], Statement::Declaration(_)));
        assert!(matches!(p.statements[1], Statement::Fact(_)));
        assert!(matches!(p.statements[2], Statement::Rule(_)));
        assert!(matches!(p.statements[3], Statement::Query(_)));
    }

    #[test]
    fn rule_followed_by_fact_without_dot() {
        let p = program("R(x) <- S(x)\nS(\"a\")");
        assert_eq!(p.statements.len(), 2);
    }

    #[test]
    fn recursive_rule() {
        let p = program("Path(x, y) <- Edge(x, y)\nPath(x, z) <- Path(x, y), Edge(y, z)");
        assert_eq!(p.statements.len(), 2);
    }

    #[test]
    fn fact_with_variable_is_rejected() {
        let err = parse_program("R(x)").unwrap_err();
        assert!(err.msg.contains("constants"), "{err}");
    }

    #[test]
    fn error_reports_position() {
        let src = "new Texts(str,\n  nonsense)";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line, 2);
        // Byte offset points at the offending token ("nonsense" is a valid
        // ident, so the parse fails at it when it is not a type name).
        assert_eq!(err.offset, src.find("nonsense").unwrap());
        let rendered = err.render(src);
        assert!(rendered.contains("  |   nonsense)"), "{rendered}");
        assert!(
            rendered.lines().last().unwrap().ends_with("^"),
            "{rendered}"
        );
    }

    #[test]
    fn empty_program_ok() {
        assert_eq!(program("").statements.len(), 0);
        assert_eq!(program("# only a comment\n").statements.len(), 0);
    }

    #[test]
    fn nullary_atoms() {
        let p = program("Flag() <- S(_)");
        match &p.statements[0] {
            Statement::Rule(r) => assert!(r.head_terms.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_round_trip() {
        let sources = [
            "new Texts(str, str)",
            r#"Texts("d1", "hello")"#,
            r#"R(usr, dom) <- Texts(d, t), rgx("(\w+)@(\w+)", t) -> (usr, dom)."#,
            r#"R(t, lex_concat(str(y))) <- Texts(d, t), rgx("a", t) -> (y)."#,
            "?R(x, \"gmail\")",
            "R(x) <- S(x), not T(x), x != \"skip\".",
            "Count(count(y)) <- S(y).",
        ];
        for src in sources {
            let p1 = program(src);
            let rendered = p1.to_string();
            let p2 = program(&rendered);
            assert_eq!(p1, p2, "round trip of {src:?} via {rendered:?}");
        }
    }
}
