//! Token vocabulary of the Spannerlog surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier: relation names, variables, IE/aggregation functions.
    Ident(String),
    /// String literal (escapes already resolved).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal `true` / `false`.
    Bool(bool),
    /// `new` keyword (relation declaration).
    New,
    /// `not` keyword (negated atom).
    Not,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.` statement terminator.
    Dot,
    /// `?` query marker.
    Question,
    /// `<-` / `←` rule implication.
    Implies,
    /// `->` / `↦` IE output arrow.
    Arrow,
    /// `_` wildcard.
    Underscore,
    /// `=`.
    Eq,
    /// `!=`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Bool(b) => write!(f, "{b}"),
            Token::New => write!(f, "new"),
            Token::Not => write!(f, "not"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Question => write!(f, "?"),
            Token::Implies => write!(f, "<-"),
            Token::Arrow => write!(f, "->"),
            Token::Underscore => write!(f, "_"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// A token with its source position (1-based line and column, plus the
/// 0-based byte offset of its first character).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// 0-based byte offset into the source.
    pub offset: usize,
}
