//! Hand-written lexer for Spannerlog source.

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Tokenizes `source`. Comments (`#` to end of line) and whitespace are
/// skipped; every token carries its line/column and byte offset for
/// error reporting.
pub fn lex(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut offset = 0usize;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(ch) = c {
                offset += ch.len_utf8();
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tok_line, tok_col, tok_off) = (line, col, offset);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                // Comment to end of line.
                while let Some(&c) = chars.peek() {
                    bump!();
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                bump!();
                out.push(spanned(Token::LParen, tok_line, tok_col, tok_off));
            }
            ')' => {
                bump!();
                out.push(spanned(Token::RParen, tok_line, tok_col, tok_off));
            }
            ',' => {
                bump!();
                out.push(spanned(Token::Comma, tok_line, tok_col, tok_off));
            }
            '?' => {
                bump!();
                out.push(spanned(Token::Question, tok_line, tok_col, tok_off));
            }
            '←' => {
                bump!();
                out.push(spanned(Token::Implies, tok_line, tok_col, tok_off));
            }
            '↦' => {
                bump!();
                out.push(spanned(Token::Arrow, tok_line, tok_col, tok_off));
            }
            '=' => {
                bump!();
                out.push(spanned(Token::Eq, tok_line, tok_col, tok_off));
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(spanned(Token::Neq, tok_line, tok_col, tok_off));
                } else {
                    return Err(ParseError::new(
                        tok_line,
                        tok_col,
                        tok_off,
                        "expected '=' after '!'",
                    ));
                }
            }
            '<' => {
                bump!();
                match chars.peek() {
                    Some('-') => {
                        bump!();
                        out.push(spanned(Token::Implies, tok_line, tok_col, tok_off));
                    }
                    Some('=') => {
                        bump!();
                        out.push(spanned(Token::Le, tok_line, tok_col, tok_off));
                    }
                    _ => out.push(spanned(Token::Lt, tok_line, tok_col, tok_off)),
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(spanned(Token::Ge, tok_line, tok_col, tok_off));
                } else {
                    out.push(spanned(Token::Gt, tok_line, tok_col, tok_off));
                }
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some('>') => {
                        bump!();
                        out.push(spanned(Token::Arrow, tok_line, tok_col, tok_off));
                    }
                    Some(c2) if c2.is_ascii_digit() => {
                        let tok = lex_number(
                            &mut chars,
                            true,
                            (tok_line, tok_col, tok_off),
                            &mut col,
                            &mut offset,
                        )?;
                        out.push(spanned(tok, tok_line, tok_col, tok_off));
                    }
                    _ => {
                        return Err(ParseError::new(
                            tok_line,
                            tok_col,
                            tok_off,
                            "expected '>' or a digit after '-'",
                        ))
                    }
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        None => {
                            return Err(ParseError::new(
                                tok_line,
                                tok_col,
                                tok_off,
                                "unterminated string literal",
                            ))
                        }
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('"') => s.push('"'),
                            Some('\\') => {
                                // Preserve the backslash pair: Spannerlog
                                // string literals mostly hold regex patterns,
                                // where `\\` must stay an escaped backslash
                                // for the pattern parser. `\\` → `\`.
                                s.push('\\');
                            }
                            Some(other) => {
                                // Unknown escapes pass through verbatim so
                                // regex escapes like \w survive: `\w` → `\w`.
                                s.push('\\');
                                s.push(other);
                            }
                            None => {
                                return Err(ParseError::new(
                                    tok_line,
                                    tok_col,
                                    tok_off,
                                    "unterminated string literal",
                                ))
                            }
                        },
                        Some(other) => s.push(other),
                    }
                }
                out.push(spanned(Token::Str(s), tok_line, tok_col, tok_off));
            }
            c if c.is_ascii_digit() => {
                let tok = lex_number(
                    &mut chars,
                    false,
                    (tok_line, tok_col, tok_off),
                    &mut col,
                    &mut offset,
                )?;
                out.push(spanned(tok, tok_line, tok_col, tok_off));
            }
            '.' => {
                bump!();
                out.push(spanned(Token::Dot, tok_line, tok_col, tok_off));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let tok = match ident.as_str() {
                    "new" => Token::New,
                    "not" => Token::Not,
                    "true" => Token::Bool(true),
                    "false" => Token::Bool(false),
                    "_" => Token::Underscore,
                    _ => Token::Ident(ident),
                };
                out.push(spanned(tok, tok_line, tok_col, tok_off));
            }
            other => {
                return Err(ParseError::new(
                    tok_line,
                    tok_col,
                    tok_off,
                    format!("unexpected character {other:?}"),
                ))
            }
        }
    }
    Ok(out)
}

fn spanned(token: Token, line: usize, col: usize, offset: usize) -> Spanned {
    Spanned {
        token,
        line,
        col,
        offset,
    }
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    negative: bool,
    start: (usize, usize, usize),
    col: &mut usize,
    offset: &mut usize,
) -> Result<Token, ParseError> {
    let (tok_line, tok_col, tok_off) = start;
    let mut digits = String::new();
    if negative {
        digits.push('-');
    }
    let mut is_float = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            digits.push(c);
            chars.next();
            *col += 1;
            *offset += 1;
        } else if c == '.' && !is_float {
            // Lookahead: only a digit after '.' makes this a float;
            // otherwise the '.' is a statement terminator.
            let mut clone = chars.clone();
            clone.next();
            if clone.peek().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                digits.push('.');
                chars.next();
                *col += 1;
                *offset += 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    if is_float {
        digits
            .parse::<f64>()
            .map(Token::Float)
            .map_err(|e| ParseError::new(tok_line, tok_col, tok_off, format!("bad float: {e}")))
    } else {
        digits
            .parse::<i64>()
            .map(Token::Int)
            .map_err(|e| ParseError::new(tok_line, tok_col, tok_off, format!("bad integer: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            toks(r#"new Texts(str, str)"#),
            vec![
                Token::New,
                Token::Ident("Texts".into()),
                Token::LParen,
                Token::Ident("str".into()),
                Token::Comma,
                Token::Ident("str".into()),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn arrows_ascii_and_unicode() {
        assert_eq!(
            toks("<- -> ← ↦"),
            vec![Token::Implies, Token::Arrow, Token::Implies, Token::Arrow]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("= != < <= > >="),
            vec![
                Token::Eq,
                Token::Neq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""a\nb" "say \"hi\"" "tab\there""#),
            vec![
                Token::Str("a\nb".into()),
                Token::Str("say \"hi\"".into()),
                Token::Str("tab\there".into()),
            ]
        );
    }

    #[test]
    fn regex_escapes_survive() {
        // The §3.2 pattern: "\w" must reach the regex engine intact, and
        // "\\." must become "\." (escaped dot).
        assert_eq!(
            toks(r#""(\w+)@(\w+)\.\w+""#),
            vec![Token::Str(r"(\w+)@(\w+)\.\w+".into())]
        );
        assert_eq!(toks(r#""a\\.b""#), vec![Token::Str(r"a\.b".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 -7 3.25 -0.5"),
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.25),
                Token::Float(-0.5)
            ]
        );
    }

    #[test]
    fn int_then_statement_dot() {
        // "R(1)." — the dot terminates the statement, not a float.
        assert_eq!(
            toks("R(1)."),
            vec![
                Token::Ident("R".into()),
                Token::LParen,
                Token::Int(1),
                Token::RParen,
                Token::Dot
            ]
        );
        assert_eq!(toks("1."), vec![Token::Int(1), Token::Dot]);
    }

    #[test]
    fn keywords_and_wildcard() {
        assert_eq!(
            toks("new not true false _ x"),
            vec![
                Token::New,
                Token::Not,
                Token::Bool(true),
                Token::Bool(false),
                Token::Underscore,
                Token::Ident("x".into())
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a # the rest is ignored <- -> \n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  bc").unwrap();
        assert_eq!((ts[0].line, ts[0].col, ts[0].offset), (1, 1, 0));
        assert_eq!((ts[1].line, ts[1].col, ts[1].offset), (2, 3, 4));
    }

    #[test]
    fn byte_offsets_count_multibyte_chars() {
        // '←' is 3 bytes; the following token's offset reflects that.
        let ts = lex("← x").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
        assert_eq!((ts[1].line, ts[1].col), (1, 3));
    }

    #[test]
    fn error_carries_offset() {
        let err = lex("abc $").unwrap_err();
        assert_eq!(err.offset, 4);
        assert_eq!((err.line, err.col), (1, 5));
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.msg.contains("unterminated"));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn bare_bang_is_error() {
        assert!(lex("!x").is_err());
    }

    #[test]
    fn unicode_identifiers_allowed() {
        assert_eq!(toks("naïve"), vec![Token::Ident("naïve".into())]);
    }
}
