//! # spannerlib-serve
//!
//! `spannerd`: an HTTP/1.1 serving front end over Spannerlog sessions —
//! the serving layer the ROADMAP's "millions of users" north star asks
//! for, built entirely on the engine's prepare-once/execute-many
//! primitives and with zero external dependencies (hand-rolled HTTP
//! and JSON over `std::net`).
//!
//! ## Architecture
//!
//! ```text
//!                    ┌────────────────────────────┐
//!   POST /register ──┤                            │
//!   POST /import   ──┤  mpsc → writer thread      │  owns the Session;
//!   POST /prepare  ──┤  (mutations, in order)     │  evaluates lazily
//!                    └─────────────┬──────────────┘
//!                                  │ publish (RwLock<Arc<_>> swap)
//!                    ┌─────────────▼──────────────┐
//!   POST /execute ───┤  latest Snapshot (+ETag)   │  lock-free reads,
//!   GET  /profile ───┤  prepared-query table      │  spannerlib_par pool
//!   GET  /healthz    └────────────────────────────┘
//! ```
//!
//! * **Single writer, snapshot readers** — mutations serialize through
//!   one command thread; `/execute` never blocks on (or is blocked by)
//!   the writer.
//! * **Deadlines** — `deadline_ms` becomes an engine wall-clock budget
//!   (`SessionBuilder::max_eval_millis`) checked between fixpoint
//!   rounds and before each IE batch; overruns return 503 naming the
//!   culprit rule.
//! * **Admission control** — `max_materialized_rows` overruns return
//!   429 with the culprit rule; oversized bodies 413; chunked transfer
//!   411.
//! * **Cross-request IE batching** — concurrent `/execute` requests
//!   that observe a stale snapshot coalesce into a single evaluation,
//!   whose plan-level IE batching and shared memo serve them all (see
//!   [`mod@self`]'s `state` module docs).
//!
//! ## Example
//!
//! ```no_run
//! use spannerlib_serve::{Client, Json, ServeConfig, Server};
//! use spannerlog_engine::Session;
//!
//! let server = Server::bind(Session::new(), ServeConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! std::thread::spawn(move || server.serve().unwrap());
//!
//! let mut client = Client::new(addr);
//! client
//!     .post("/register", &Json::parse(r#"{"rules": "new E(int, int)"}"#).unwrap())
//!     .unwrap();
//! handle.shutdown();
//! ```

pub mod catalog;
pub mod client;
pub mod config;
pub mod error;
pub mod http;
pub mod json;
pub mod log;
pub mod server;
pub mod signal;
mod state;

pub use catalog::IeSpec;
pub use client::{Client, ClientResponse};
pub use config::ServeConfig;
pub use error::{ApiError, ErrorCulprit};
pub use json::Json;
pub use server::{Server, ServerHandle};
