//! The listener, router, and endpoint handlers.

use crate::catalog::IeSpec;
use crate::config::ServeConfig;
use crate::error::ApiError;
use crate::http::{self, ReadOutcome, Request, Response};
use crate::json::Json;
use crate::log::{now_micros, LogSink};
use crate::state::{writer_loop, Cmd, Published, Reply, ServerState};
use parking_lot::RwLock;
use spannerlib_core::Value;
use spannerlib_dataframe::DataFrame;
use spannerlib_trace::{encode_prometheus, MetricsRegistry};
use spannerlog_engine::{Session, Snapshot};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket read timeout: the tick at which idle keep-alive connections
/// re-check the drain flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Extra wait beyond a request's deadline for the writer's reply. The
/// engine notices the wall-clock overrun at its next deadline check (a
/// fixpoint-round boundary or IE batch), which can land slightly after
/// the deadline itself; waiting this bounded grace converts a generic
/// timeout into a structured error naming the culprit rule.
const REPLY_GRACE: Duration = Duration::from_millis(1500);

/// A bound spannerd server. Construct with [`Server::bind`], then run
/// the accept loop with [`Server::serve`] (blocks until
/// [`ServerHandle::shutdown`]).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
    writer: Option<std::thread::JoinHandle<()>>,
}

/// A cheap handle for observing and stopping a running [`Server`] from
/// other threads (signal watchers, tests).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
    addr: SocketAddr,
}

// Compile-time guarantee: the handle crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerHandle>()
};

impl ServerHandle {
    /// Begins graceful shutdown: stop accepting, let in-flight requests
    /// drain, turn `/healthz` 503. Idempotent.
    pub fn shutdown(&self) {
        if self.state.accepting.swap(false, Ordering::SeqCst) {
            // Wake the blocking `accept` so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Whether the server is still accepting new work.
    pub fn is_accepting(&self) -> bool {
        self.state.accepting.load(Ordering::SeqCst)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds `cfg.addr` and moves `session` onto the writer thread. The
    /// session is evaluated once here so the first `/execute` finds a
    /// published snapshot.
    pub fn bind(mut session: Session, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        session.set_max_materialized_rows(cfg.max_materialized_rows);
        session.set_max_eval_millis(cfg.max_eval_millis);
        let snapshot = session
            .snapshot()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let access_log = match &cfg.access_log {
            Some(spec) => Some(Arc::new(LogSink::open(spec)?)),
            None => None,
        };
        // The slow-query log needs a destination only when a threshold
        // is set; it falls back to the access log's spec, then stderr.
        let slow_log = if cfg.slow_eval_ms.is_some() {
            let spec = cfg
                .slow_log
                .as_deref()
                .or(cfg.access_log.as_deref())
                .unwrap_or("stderr");
            Some(Arc::new(LogSink::open(spec)?))
        } else {
            None
        };
        // Differentiates minted request ids across restarts: wall clock
        // microseconds folded with the pid.
        let instance = (now_micros() as u32) ^ std::process::id().rotate_left(16);
        let state = Arc::new(ServerState {
            cfg,
            published: RwLock::new(Arc::new(Published {
                snapshot,
                version: 0,
            })),
            prepared: RwLock::new(HashMap::new()),
            write_version: AtomicU64::new(0),
            cmd_tx: parking_lot::Mutex::new(Some(cmd_tx)),
            accepting: AtomicBool::new(true),
            metrics: MetricsRegistry::new(),
            access_log,
            slow_log,
            instance,
            request_seq: AtomicU64::new(0),
        });
        // Pool capacity as a gauge, so `connections_active` reads as an
        // occupancy ratio on a dashboard.
        state
            .metrics
            .gauge("pool_workers")
            .set(state.cfg.effective_workers() as i64);
        let writer = std::thread::Builder::new()
            .name("spannerd-writer".into())
            .spawn({
                let state = state.clone();
                move || writer_loop(session, cmd_rx, state)
            })?;
        Ok(Server {
            listener,
            addr,
            state,
            writer: Some(writer),
        })
    }

    /// The bound address (read the ephemeral port back from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: self.state.clone(),
            addr: self.addr,
        }
    }

    /// Runs the accept loop, fanning connections across a
    /// `spannerlib_par` pool. Returns after [`ServerHandle::shutdown`]:
    /// in-flight connections drain (the pool scope waits for them), the
    /// command queue closes, and the writer thread exits.
    pub fn serve(mut self) -> io::Result<()> {
        let pool = spannerlib_par::ThreadPool::new(self.state.cfg.effective_workers());
        let state = &self.state;
        pool.scope(|scope| {
            for conn in self.listener.incoming() {
                if !state.accepting.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let state = Arc::clone(state);
                scope.spawn(move || handle_connection(stream, &state));
            }
        });
        // All connection handlers have returned; close the command
        // queue so the writer loop ends, then reap it.
        self.state.cmd_tx.lock().take();
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        Ok(())
    }
}

/// Decrements `connections_active` on every exit path of
/// [`handle_connection`].
struct ConnectionGuard<'a>(&'a ServerState);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.metrics.gauge("connections_active").add(-1);
    }
}

/// Serves one keep-alive connection until close, error, idle timeout,
/// or drain. Idle connections are closed after
/// `cfg.idle_timeout_ms` so they stop pinning a pool worker; the
/// bundled [`crate::Client`] transparently reconnects, so well-behaved
/// clients never observe the close.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    state.metrics.counter("http_connections_total").inc();
    state.metrics.gauge("connections_active").add(1);
    let _guard = ConnectionGuard(state);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut idle_since = Instant::now();
    loop {
        match http::read_request(&mut reader, state.cfg.max_body_bytes) {
            ReadOutcome::Request(req) => {
                let draining = !state.accepting.load(Ordering::SeqCst);
                let close = req.wants_close() || draining;
                let resp = route(&req, state);
                if http::write_response(&mut writer, &resp, close).is_err() || close {
                    return;
                }
                idle_since = Instant::now();
            }
            ReadOutcome::Closed => return,
            ReadOutcome::IdleTick => {
                // Idle keep-alive connections close themselves once the
                // server starts draining, or once they exceed the idle
                // timeout (freeing their pool worker).
                if !state.accepting.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(ms) = state.cfg.idle_timeout_ms {
                    if idle_since.elapsed() >= Duration::from_millis(ms) {
                        state.metrics.counter("connections_idle_closed").inc();
                        return;
                    }
                }
            }
            ReadOutcome::Bad { status, message } => {
                let err = ApiError::new(status, "protocol", message);
                let resp = Response::json(status, err.body());
                let _ = http::write_response(&mut writer, &resp, true);
                return;
            }
        }
    }
}

/// Per-request context threaded through the handlers: the request id
/// plus the snapshot attribution `/execute` fills in for the access
/// log.
struct ReqCtx {
    /// Accepted from `X-Request-Id` or minted; echoed on the response.
    id: String,
    /// ETag of the snapshot the request read (execute only).
    etag: Option<String>,
    /// Sequence number of the (possibly coalesced) evaluation whose
    /// published result the request read (execute only).
    eval_seq: Option<u64>,
}

/// The request id for `req`: the client's `X-Request-Id` when it is
/// sane (non-empty, ≤ 128 bytes, printable ASCII), else a minted one.
fn request_id(req: &Request, state: &ServerState) -> String {
    match req.header("x-request-id") {
        Some(id)
            if !id.is_empty() && id.len() <= 128 && id.bytes().all(|b| b.is_ascii_graphic()) =>
        {
            id.to_string()
        }
        _ => state.mint_request_id(),
    }
}

/// Buckets a status code into the class label used by the HTTP metrics
/// (`2xx`, `3xx`, `4xx`, `5xx`).
fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

/// Dispatches one request; assigns its request id, records per-route /
/// per-status metrics, echoes the id on the response (and inside error
/// bodies), and appends the access-log record.
fn route(req: &Request, state: &ServerState) -> Response {
    let start = Instant::now();
    let mut ctx = ReqCtx {
        id: request_id(req, state),
        etag: None,
        eval_seq: None,
    };
    let (route_label, result) = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => ("/healthz", healthz(state)),
        ("GET", "/metrics") => ("/metrics", metrics(state)),
        ("GET", "/profile") => ("/profile", profile(state)),
        ("POST", "/register") => ("/register", register(req, state)),
        ("POST", "/import") => ("/import", import(req, state)),
        ("POST", "/prepare") => ("/prepare", prepare(req, state)),
        ("POST", "/execute") => ("/execute", execute(req, state, &mut ctx)),
        (
            _,
            "/healthz" | "/metrics" | "/profile" | "/register" | "/import" | "/prepare"
            | "/execute",
        ) => (
            "other",
            Err(ApiError::new(
                405,
                "method_not_allowed",
                format!("{} is not supported on {}", req.method, req.path),
            )),
        ),
        _ => (
            "other",
            Err(ApiError::new(
                404,
                "not_found",
                format!("no such endpoint {:?}", req.path),
            )),
        ),
    };
    let mut resp = match result {
        Ok(resp) => resp,
        Err(mut err) => {
            err.request_id = Some(ctx.id.clone());
            Response::json(err.status, err.body())
        }
    };
    resp.headers.push(("X-Request-Id".into(), ctx.id.clone()));
    let class = status_class(resp.status);
    let labels = [("route", route_label), ("status", class)];
    state
        .metrics
        .counter_with("http_requests_total", &labels)
        .inc();
    if resp.status >= 400 {
        state.metrics.counter("http_errors_total").inc();
    }
    let wall = start.elapsed();
    state
        .metrics
        .histogram_with("http_request_duration_ns", &labels)
        .record(wall.as_nanos() as u64);
    if let Some(log) = &state.access_log {
        log.write(&Json::Obj(vec![
            ("type".into(), Json::str("access")),
            ("ts_micros".into(), Json::Int(now_micros())),
            ("request_id".into(), Json::str(&ctx.id)),
            ("method".into(), Json::str(&req.method)),
            ("path".into(), Json::str(&req.path)),
            ("status".into(), Json::Int(i64::from(resp.status))),
            ("bytes".into(), Json::Int(resp.body.len() as i64)),
            ("wall_micros".into(), Json::Int(wall.as_micros() as i64)),
            (
                "etag".into(),
                ctx.etag.as_deref().map_or(Json::Null, Json::str),
            ),
            (
                "eval_seq".into(),
                ctx.eval_seq.map_or(Json::Null, |s| Json::Int(s as i64)),
            ),
        ]));
    }
    resp
}

/// Parses the request body as a JSON object.
fn body_json(req: &Request) -> Result<Json, ApiError> {
    let text = req
        .body_str()
        .map_err(|_| ApiError::bad_request("body is not UTF-8"))?;
    Json::parse(text).map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))
}

/// Sends one command to the writer thread and waits for its reply.
fn roundtrip<T>(state: &ServerState, build: impl FnOnce(Reply<T>) -> Cmd) -> Result<T, ApiError> {
    let (tx, rx) = mpsc::sync_channel(1);
    state
        .sender()?
        .send(build(tx))
        .map_err(|_| ApiError::new(503, "draining", "server is shutting down"))?;
    rx.recv()
        .map_err(|_| ApiError::new(500, "internal", "writer thread is gone"))?
}

fn ok_body(state: &ServerState, extra: Vec<(String, Json)>) -> Response {
    let mut members = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("version".to_string(), Json::Int(state.version() as i64)),
    ];
    members.extend(extra);
    Response::json(200, Json::Obj(members).render())
}

/// `GET /healthz`.
fn healthz(state: &ServerState) -> Result<Response, ApiError> {
    if state.accepting.load(Ordering::SeqCst) {
        Ok(ok_body(state, vec![("status".into(), Json::str("ok"))]))
    } else {
        Err(ApiError::new(503, "draining", "server is shutting down"))
    }
}

/// `GET /metrics` — Prometheus text-format exposition over every
/// counter, gauge, and latency histogram in the server's registry.
fn metrics(state: &ServerState) -> Result<Response, ApiError> {
    let body = encode_prometheus(&state.metrics.snapshot());
    Ok(Response {
        status: 200,
        headers: vec![(
            "Content-Type".into(),
            "text/plain; version=0.0.4; charset=utf-8".into(),
        )],
        body: body.into_bytes(),
    })
}

/// `POST /register` — either `{"rules": "<source cell>"}` or
/// `{"ie": {"name", "pattern", "output": "spans"|"strings"}}`.
fn register(req: &Request, state: &ServerState) -> Result<Response, ApiError> {
    let json = body_json(req)?;
    if let Some(rules) = json.get("rules").and_then(Json::as_str) {
        let source = rules.to_string();
        roundtrip(state, |reply| Cmd::Run { source, reply })?;
    } else if let Some(ie) = json.get("ie") {
        let spec = parse_ie_spec(ie)?;
        roundtrip(state, |reply| Cmd::RegisterIe { spec, reply })?;
    } else {
        return Err(ApiError::bad_request(
            "body must carry \"rules\" (a source cell) or \"ie\" (a catalog spec)",
        ));
    }
    Ok(ok_body(state, vec![]))
}

fn parse_ie_spec(ie: &Json) -> Result<IeSpec, ApiError> {
    let name = ie
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("ie.name must be a string"))?;
    let pattern = ie
        .get("pattern")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("ie.pattern must be a string"))?;
    let strings = match ie.get("output").and_then(Json::as_str) {
        None | Some("spans") => false,
        Some("strings") => true,
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "ie.output must be \"spans\" or \"strings\", got {other:?}"
            )))
        }
    };
    Ok(IeSpec {
        name: name.to_string(),
        pattern: pattern.to_string(),
        strings,
    })
}

/// `POST /import` — `{"relation": "...", "rows": [[...], ...]}`.
fn import(req: &Request, state: &ServerState) -> Result<Response, ApiError> {
    let json = body_json(req)?;
    let Some(relation) = json.get("relation").and_then(Json::as_str) else {
        return Err(ApiError::bad_request("\"relation\" must be a string"));
    };
    let Some(rows_json) = json.get("rows").and_then(Json::as_array) else {
        return Err(ApiError::bad_request("\"rows\" must be an array of arrays"));
    };
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, row) in rows_json.iter().enumerate() {
        let Some(cells) = row.as_array() else {
            return Err(ApiError::bad_request(format!("row {i} is not an array")));
        };
        let mut out = Vec::with_capacity(cells.len());
        for (j, cell) in cells.iter().enumerate() {
            match cell_value(cell) {
                Some(v) => out.push(v),
                None => {
                    return Err(ApiError::bad_request(format!(
                        "row {i} column {j}: cells must be strings, integers, floats, or booleans"
                    )))
                }
            }
        }
        rows.push(out);
    }
    let count = rows.len();
    let relation = relation.to_string();
    roundtrip(state, |reply| Cmd::Import {
        relation,
        rows,
        reply,
    })?;
    Ok(ok_body(
        state,
        vec![("rows".into(), Json::Int(count as i64))],
    ))
}

/// Maps a JSON cell onto an engine value.
fn cell_value(cell: &Json) -> Option<Value> {
    match cell {
        Json::Str(s) => Some(Value::str(s.as_str())),
        Json::Int(n) => Some(Value::Int(*n)),
        Json::Float(x) => Some(Value::Float(*x)),
        Json::Bool(b) => Some(Value::Bool(*b)),
        _ => None,
    }
}

/// `POST /prepare` — `{"name": "...", "query": "?R(x)"}`.
fn prepare(req: &Request, state: &ServerState) -> Result<Response, ApiError> {
    let json = body_json(req)?;
    let (Some(name), Some(query)) = (
        json.get("name").and_then(Json::as_str),
        json.get("query").and_then(Json::as_str),
    ) else {
        return Err(ApiError::bad_request(
            "\"name\" and \"query\" must be strings",
        ));
    };
    let (name, query) = (name.to_string(), query.to_string());
    roundtrip(state, |reply| Cmd::Prepare { name, query, reply })?;
    Ok(ok_body(state, vec![]))
}

/// `POST /execute` — `{"prepared": name}` or `{"query": "?R(x)"}`, plus
/// optional `deadline_ms` and `max_rows`.
fn execute(req: &Request, state: &ServerState, ctx: &mut ReqCtx) -> Result<Response, ApiError> {
    let json = body_json(req)?;
    let deadline_ms = match json.get("deadline_ms") {
        None => state.cfg.default_deadline_ms,
        Some(v) => match v.as_i64() {
            Some(ms) if ms > 0 => Some(ms as u64),
            _ => {
                return Err(ApiError::bad_request(
                    "deadline_ms must be a positive integer",
                ))
            }
        },
    };
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let max_rows = match json.get("max_rows") {
        None => None,
        Some(v) => match v.as_i64() {
            Some(n) if n >= 0 => Some(n as usize),
            _ => {
                return Err(ApiError::bad_request(
                    "max_rows must be a non-negative integer",
                ))
            }
        },
    };

    let published = current_published(state, deadline, Some(ctx.id.clone()))?;
    ctx.etag = Some(published.etag());
    ctx.eval_seq = Some(published.snapshot.eval_seq());
    let frame = if let Some(name) = json.get("prepared").and_then(Json::as_str) {
        let Some(query) = state.prepared.read().get(name).cloned() else {
            return Err(ApiError::new(
                404,
                "not_found",
                format!("no prepared query named {name:?}"),
            ));
        };
        published.snapshot.execute(&query)
    } else if let Some(query_src) = json.get("query").and_then(Json::as_str) {
        published.snapshot.export(query_src)
    } else {
        return Err(ApiError::bad_request(
            "body must carry \"prepared\" (a name) or \"query\" (a query string)",
        ));
    };
    let frame = frame.map_err(|e| ApiError::from_engine(&e))?;
    if let Some(cap) = max_rows {
        if frame.num_rows() > cap {
            return Err(ApiError::new(
                429,
                "too_many_rows",
                format!(
                    "result has {} rows, request admitted at most {cap}",
                    frame.num_rows()
                ),
            ));
        }
    }
    let etag = published.etag();
    if req.header("if-none-match") == Some(etag.as_str()) {
        return Ok(Response {
            status: 304,
            headers: vec![("ETag".into(), etag)],
            body: Vec::new(),
        });
    }
    Ok(Response::json(200, render_frame(&frame, &published).render()).with_header("ETag", etag))
}

/// The freshest snapshot consistent with all applied mutations: the
/// published one when current, otherwise one produced by a (coalesced)
/// refresh round-trip through the writer. `request_id` rides along so
/// the evaluation's profile records which requests it served.
fn current_published(
    state: &ServerState,
    deadline: Option<Instant>,
    request_id: Option<String>,
) -> Result<Arc<Published>, ApiError> {
    let current = state.published.read().clone();
    if current.version == state.version() {
        return Ok(current);
    }
    let (tx, rx) = mpsc::sync_channel(1);
    state
        .sender()?
        .send(Cmd::Refresh {
            deadline,
            request_id,
            reply: tx,
        })
        .map_err(|_| ApiError::new(503, "draining", "server is shutting down"))?;
    match deadline {
        None => rx
            .recv()
            .map_err(|_| ApiError::new(500, "internal", "writer thread is gone"))?,
        Some(d) => match rx.recv_timeout(d.saturating_duration_since(Instant::now()) + REPLY_GRACE)
        {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(ApiError::deadline(
                "deadline expired waiting for evaluation",
            )),
            Err(RecvTimeoutError::Disconnected) => {
                Err(ApiError::new(500, "internal", "writer thread is gone"))
            }
        },
    }
}

/// Serializes a result frame:
/// `{"columns": […], "rows": [[…]], "row_count": n, "version": v, "fingerprint": "…"}`.
fn render_frame(frame: &DataFrame, published: &Published) -> Json {
    let rows = frame
        .iter_rows()
        .map(|row| {
            Json::Arr(
                row.iter()
                    .map(|v| value_json(v, &published.snapshot))
                    .collect(),
            )
        })
        .collect();
    Json::Obj(vec![
        (
            "columns".into(),
            Json::Arr(frame.column_names().iter().map(Json::str).collect()),
        ),
        ("rows".into(), Json::Arr(rows)),
        ("row_count".into(), Json::Int(frame.num_rows() as i64)),
        ("version".into(), Json::Int(published.version as i64)),
        (
            "fingerprint".into(),
            Json::str(format!("{:016x}", published.snapshot.fingerprint())),
        ),
    ])
}

/// Serializes one cell; spans resolve their text against the snapshot's
/// frozen document store.
fn value_json(v: &Value, snapshot: &Snapshot) -> Json {
    match v {
        Value::Str(s) => Json::str(&**s),
        Value::Int(n) => Json::Int(*n),
        Value::Bool(b) => Json::Bool(*b),
        Value::Float(x) => Json::Float(*x),
        Value::Span(span) => Json::Obj(vec![
            ("start".into(), Json::Int(span.start_usize() as i64)),
            ("end".into(), Json::Int(span.end_usize() as i64)),
            (
                "text".into(),
                snapshot.span_text(span).map_or(Json::Null, Json::str),
            ),
        ]),
    }
}

/// `GET /profile` — per-route latency histograms, request counters,
/// IE-cache stats, publish version/fingerprint, and the evaluation
/// profile of the last published snapshot (when tracing is on).
fn profile(state: &ServerState) -> Result<Response, ApiError> {
    let published = state.published.read().clone();
    let endpoints: Vec<(String, Json)> = state
        .metrics
        .histograms()
        .into_iter()
        .map(|(name, snap)| (name, Json::Raw(snap.summary_json())))
        .collect();
    let counters: Vec<(String, Json)> = state
        .metrics
        .counters()
        .into_iter()
        .map(|(name, v)| (name, Json::Int(v as i64)))
        .collect();
    let cache = published.snapshot.cache_stats();
    let eval_profile = published.snapshot.profile().map_or(Json::Null, |p| {
        Json::Arr(
            p.to_json_lines()
                .lines()
                .map(|line| Json::Raw(line.to_string()))
                .collect(),
        )
    });
    let body = Json::Obj(vec![
        ("version".into(), Json::Int(published.version as i64)),
        (
            "fingerprint".into(),
            Json::str(format!("{:016x}", published.snapshot.fingerprint())),
        ),
        (
            "eval_seq".into(),
            Json::Int(published.snapshot.eval_seq() as i64),
        ),
        ("endpoints".into(), Json::Obj(endpoints)),
        ("counters".into(), Json::Obj(counters)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::Int(cache.hits as i64)),
                ("misses".into(), Json::Int(cache.misses as i64)),
                ("entries".into(), Json::Int(cache.entries as i64)),
                ("bytes".into(), Json::Int(cache.bytes as i64)),
                ("hit_rate".into(), Json::Float(cache.hit_rate())),
            ]),
        ),
        ("eval_profile".into(), eval_profile),
    ]);
    Ok(Response::json(200, body.render()))
}
