//! SIGTERM / ctrl-c detection without external crates.
//!
//! The workspace vendors no `libc`, so the binding is a two-line FFI
//! declaration of POSIX `signal(2)`. The handler only flips a global
//! `AtomicBool` (the one operation that is async-signal-safe by
//! construction); `spannerd` polls [`triggered`] from an ordinary
//! thread and runs graceful shutdown from there.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Test/fallback hook: trip the flag as if a signal had arrived.
pub fn trigger_now() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::TRIGGERED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// POSIX `signal(2)`. The handler argument and return are
        /// `void (*)(int)` function pointers, passed as raw addresses.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Installs the flag-setting handler for SIGINT and SIGTERM.
    pub fn install() {
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGINT, handler as usize);
            signal(SIGTERM, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal handling off unix; shutdown relies on other triggers.
    pub fn install() {}
}

pub use imp::install;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_trigger_flips_the_flag() {
        install();
        trigger_now();
        assert!(triggered());
    }
}
