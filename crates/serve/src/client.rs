//! A minimal blocking HTTP/1.1 client with keep-alive — enough to
//! drive spannerd from examples, integration tests, and the serving
//! bench without external dependencies.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A keep-alive connection to one server. Reconnects transparently if
/// the server closed the previous connection.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

/// A parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl ClientResponse {
    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body)
    }
}

impl Client {
    /// A client for `addr` (connects lazily).
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None }
    }

    /// Sends `body` as a POST with `Content-Type: application/json`.
    pub fn post(&mut self, path: &str, body: &Json) -> io::Result<ClientResponse> {
        self.request("POST", path, &[], Some(&body.render()))
    }

    /// Sends a GET.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, &[], None)
    }

    /// Sends one request with extra headers, reusing the connection
    /// when possible (one transparent retry on a broken keep-alive
    /// connection).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let had_conn = self.conn.is_some();
        match self.attempt(method, path, headers, body) {
            Ok(resp) => Ok(resp),
            Err(e) if had_conn => {
                // The server may have closed the idle connection
                // between requests; retry once on a fresh one.
                let _ = e;
                self.conn = None;
                self.attempt(method, path, headers, body)
            }
            Err(e) => Err(e),
        }
    }

    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        let conn = self.conn.as_mut().expect("connected above");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: spannerd\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        let body = body.unwrap_or("");
        if !body.is_empty() || method == "POST" {
            head.push_str("Content-Type: application/json\r\n");
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = conn.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        let resp = read_response(conn)?;
        if resp
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
        {
            self.conn = None;
        }
        Ok(resp)
    }
}

/// Reads one response (status line, headers, `Content-Length` body).
fn read_response<R: BufRead>(reader: &mut R) -> io::Result<ClientResponse> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before status line",
        ));
    }
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut header_line = String::new();
        reader.read_line(&mut header_line)?;
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
