//! Structured JSONL logging: the access log and the slow-query log.
//!
//! Both logs are newline-delimited JSON — one self-contained object per
//! line — so they stream into `jq`/`grep` and survive partial writes at
//! line granularity. A [`LogSink`] serializes concurrent writers behind
//! a mutex and never panics or surfaces I/O errors to request handling:
//! a full disk degrades logging, not serving.

use crate::json::Json;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Where a [`LogSink`] writes.
enum Target {
    Stderr,
    File(std::fs::File),
}

/// A shared, append-only JSONL destination (`stderr` or a file opened
/// for append). Lines are written whole under a mutex, so records from
/// concurrent connections never interleave mid-line.
pub struct LogSink {
    target: Mutex<Target>,
}

impl std::fmt::Debug for LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LogSink")
    }
}

impl LogSink {
    /// Opens the destination named by `spec`: the literal `"stderr"`
    /// selects standard error, anything else is a file path opened in
    /// append mode (created if missing).
    pub fn open(spec: &str) -> std::io::Result<LogSink> {
        let target = if spec == "stderr" {
            Target::Stderr
        } else {
            Target::File(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(Path::new(spec))?,
            )
        };
        Ok(LogSink {
            target: Mutex::new(target),
        })
    }

    /// Appends one record as a single line. The object is rendered
    /// before the lock is taken; write failures are swallowed (logging
    /// must never fail a request).
    pub fn write(&self, record: &Json) {
        let mut line = record.render();
        line.push('\n');
        let Ok(mut target) = self.target.lock() else {
            return;
        };
        let _ = match &mut *target {
            Target::Stderr => std::io::stderr().write_all(line.as_bytes()),
            Target::File(f) => f.write_all(line.as_bytes()),
        };
    }
}

/// Microseconds since the Unix epoch, for `ts_micros` fields.
pub fn now_micros() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as i64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sink_appends_one_json_object_per_line() {
        let path = std::env::temp_dir().join(format!(
            "spannerd-log-test-{}-{}.jsonl",
            std::process::id(),
            now_micros()
        ));
        let spec = path.to_str().unwrap().to_string();
        let sink = LogSink::open(&spec).unwrap();
        sink.write(&Json::Obj(vec![("a".into(), Json::Int(1))]));
        sink.write(&Json::Obj(vec![("b".into(), Json::str("x\ny"))]));
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("every log line is valid JSON");
        }
    }

    #[test]
    fn stderr_spec_opens() {
        LogSink::open("stderr").unwrap();
    }
}
