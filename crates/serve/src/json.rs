//! A small, dependency-free JSON value, parser, and writer.
//!
//! The serving layer needs exactly one wire format and the workspace
//! vendors no serde, so this module hand-rolls the subset spannerd
//! speaks: RFC 8259 values with a recursion-depth cap, integer-first
//! number parsing (`i64` when exact, `f64` otherwise), and a writer
//! that escapes control characters. [`Json::Raw`] lets callers splice
//! pre-rendered JSON (e.g. histogram summaries from the trace crate)
//! into a tree without re-parsing it.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts — far beyond any request
/// body spannerd defines, and a bound on stack use for hostile input.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that fits an `i64` exactly.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
    /// Pre-rendered JSON, emitted verbatim by [`Json::render`]. Never
    /// produced by the parser; the caller owns its well-formedness.
    Raw(String),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member of an object, if this is an object with that key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (rejecting trailing content).
    ///
    /// ```
    /// use spannerlib_serve::Json;
    /// let v = Json::parse(r#"{"a": [1, 2.5, "x\n"], "b": null}"#).unwrap();
    /// assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Json::Int(1));
    /// assert!(Json::parse("{").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after JSON value"));
        }
        Ok(value)
    }

    /// Renders to compact JSON text.
    ///
    /// ```
    /// use spannerlib_serve::Json;
    /// let v = Json::Obj(vec![("k".into(), Json::Arr(vec![Json::Bool(true)]))]);
    /// assert_eq!(v.render(), r#"{"k":[true]}"#);
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                // JSON has no NaN/Infinity; degrade to null.
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

/// Writes `s` as a JSON string literal.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} (at byte {})", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        for src in [
            "null",
            "true",
            "-42",
            r#""he said \"hi\"""#,
            r#"[1,[2,{"k":3}]]"#,
            r#"{"a":null,"b":[true,false]}"#,
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn numbers_parse_integer_first() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // Exceeds i64: falls back to float rather than erroring.
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#""tab\tnl\nu\u0041 pair\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "tab\tnl\nuA pair😀");
        let rendered = Json::str("ctrl\u{1}\"\\").render();
        assert_eq!(rendered, r#""ctrl\u0001\"\\""#);
        assert_eq!(Json::parse(&rendered).unwrap(), Json::str("ctrl\u{1}\"\\"));
    }

    #[test]
    fn rejects_malformed_input() {
        for src in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "\"bad \\q\"",
            "\u{1}",
        ] {
            assert!(Json::parse(src).is_err(), "{src:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth cap");
    }

    #[test]
    fn raw_splices_verbatim() {
        let v = Json::Obj(vec![("h".into(), Json::Raw("{\"p50\":1}".into()))]);
        assert_eq!(v.render(), r#"{"h":{"p50":1}}"#);
    }

    #[test]
    fn nonfinite_floats_render_as_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }
}
