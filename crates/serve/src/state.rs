//! Shared server state, the single-writer command thread, and the
//! refresh coalescer.
//!
//! ## Single writer, lock-free readers
//!
//! The [`Session`] is owned by one command thread; every mutation
//! (`/register`, `/import`, `/prepare`) serializes through an mpsc
//! channel. Readers never touch the session: `/execute` runs against
//! the latest [`Published`] snapshot behind an `RwLock<Arc<_>>` swap —
//! the lock is held only for the pointer clone, so concurrent executes
//! neither block each other nor the writer.
//!
//! ## Lazy evaluation = cross-request IE batching
//!
//! Mutations apply immediately but do **not** evaluate; they only bump
//! [`ServerState::write_version`]. The first `/execute` to observe a
//! stale snapshot sends [`Cmd::Refresh`], and the writer drains its
//! whole queue before evaluating: every concurrent execute waiting on
//! the same churn becomes one fixpoint run. Inside that run `plan.rs`
//! already batches cacheable IE calls per distinct argument tuple and
//! probes the shared memo — so IE work that N requests would have paid
//! for separately is paid once, which is this module's answer to
//! cross-request IE batching (the `execute_coalesced` counter reports
//! how often it happens).

use crate::catalog::{self, IeSpec};
use crate::config::ServeConfig;
use crate::error::ApiError;
use crate::json::Json;
use crate::log::{now_micros, LogSink};
use parking_lot::RwLock;
use spannerlib_core::Value;
use spannerlib_dataframe::DataFrame;
use spannerlib_trace::MetricsRegistry;
use spannerlog_engine::{PreparedQuery, Session, Snapshot};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// One atomically-published evaluation result.
pub(crate) struct Published {
    /// The frozen, fully evaluated state.
    pub snapshot: Snapshot,
    /// The [`ServerState::write_version`] this snapshot reflects.
    pub version: u64,
}

impl Published {
    /// Strong-validator ETag combining the publish version with the
    /// engine's evaluation fingerprint.
    pub fn etag(&self) -> String {
        format!("\"v{}-{:016x}\"", self.version, self.snapshot.fingerprint())
    }
}

/// A reply slot for one queued command. `sync_channel(1)` never blocks
/// the writer's send even if the requester already gave up.
pub(crate) type Reply<T> = SyncSender<Result<T, ApiError>>;

/// Commands the writer thread consumes.
pub(crate) enum Cmd {
    /// Run a source cell (rules, declarations, facts).
    Run {
        /// Spannerlog source text.
        source: String,
        /// Completion signal.
        reply: Reply<()>,
    },
    /// Register a catalog IE function.
    RegisterIe {
        /// The declarative spec.
        spec: IeSpec,
        /// Completion signal.
        reply: Reply<()>,
    },
    /// Import rows as a relation.
    Import {
        /// Relation name.
        relation: String,
        /// Rows (schema from the first row; empty re-uses the
        /// relation's existing schema).
        rows: Vec<Vec<Value>>,
        /// Completion signal.
        reply: Reply<()>,
    },
    /// Compile and store a named prepared query.
    Prepare {
        /// Name executes refer to.
        name: String,
        /// Query source, e.g. `?Status(d, s)`.
        query: String,
        /// Completion signal.
        reply: Reply<()>,
    },
    /// Evaluate pending churn and publish a fresh snapshot.
    Refresh {
        /// The requester's absolute deadline, if it has one.
        deadline: Option<Instant>,
        /// The requester's serving request id: attributed to the
        /// coalesced evaluation's `EvalProfile` so a slow rule is
        /// traceable back to the requests that paid for it.
        request_id: Option<String>,
        /// Receives the published snapshot (or the evaluation error).
        reply: Reply<Arc<Published>>,
    },
}

/// State shared between the acceptor, connection handlers, and the
/// writer thread.
pub(crate) struct ServerState {
    /// Immutable configuration.
    pub cfg: ServeConfig,
    /// Latest published snapshot (swap-on-publish).
    pub published: RwLock<Arc<Published>>,
    /// Named prepared queries (`/prepare` inserts, `/execute` reads).
    pub prepared: RwLock<HashMap<String, Arc<PreparedQuery>>>,
    /// Bumped by the writer after each applied mutation; a published
    /// version behind it means `/execute` must request a refresh.
    pub write_version: AtomicU64,
    /// Handlers clone a sender per mutation; dropped on shutdown so the
    /// writer loop ends.
    pub cmd_tx: parking_lot::Mutex<Option<Sender<Cmd>>>,
    /// `false` once shutdown begins: the acceptor stops, keep-alive
    /// connections close after the in-flight request, `/healthz` turns
    /// 503.
    pub accepting: AtomicBool,
    /// Request counters and per-route/per-status latency histograms.
    pub metrics: MetricsRegistry,
    /// Per-request JSONL access log (`None` = disabled).
    pub access_log: Option<Arc<LogSink>>,
    /// Destination for slow-evaluation records (`None` only when the
    /// slow-query log is disabled by config).
    pub slow_log: Option<Arc<LogSink>>,
    /// Process-unique fingerprint mixed into minted request ids, so ids
    /// from successive server instances don't collide in shared logs.
    pub instance: u32,
    /// Monotonic counter for minted request ids.
    pub request_seq: AtomicU64,
}

impl ServerState {
    /// Mints a request id for a request that arrived without an
    /// `X-Request-Id` header: `{instance:08x}-{seq:x}`.
    pub fn mint_request_id(&self) -> String {
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{seq:x}", self.instance)
    }

    /// Current write version.
    pub fn version(&self) -> u64 {
        self.write_version.load(Ordering::Acquire)
    }

    /// A sender for the writer's command queue, or an error once the
    /// server is shutting down.
    pub fn sender(&self) -> Result<Sender<Cmd>, ApiError> {
        self.cmd_tx
            .lock()
            .clone()
            .ok_or_else(|| ApiError::new(503, "draining", "server is shutting down"))
    }
}

/// The writer thread: owns the session, applies mutations in arrival
/// order, and coalesces refresh requests into single evaluations. Ends
/// when every sender is dropped.
pub(crate) fn writer_loop(mut session: Session, rx: Receiver<Cmd>, state: Arc<ServerState>) {
    session.set_max_materialized_rows(state.cfg.max_materialized_rows);
    session.set_max_eval_millis(state.cfg.max_eval_millis);
    while let Ok(first) = rx.recv() {
        let mut waiters = Vec::new();
        let mut queue = Some(first);
        while let Some(cmd) = queue.take() {
            match cmd {
                Cmd::Run { source, reply } => {
                    let result = session
                        .run(&source)
                        .map(|_| ())
                        .map_err(|e| ApiError::from_engine(&e));
                    state.write_version.fetch_add(1, Ordering::Release);
                    let _ = reply.send(result);
                }
                Cmd::RegisterIe { spec, reply } => {
                    let result = catalog::register_ie(&mut session, &spec);
                    state.write_version.fetch_add(1, Ordering::Release);
                    let _ = reply.send(result);
                }
                Cmd::Import {
                    relation,
                    rows,
                    reply,
                } => {
                    let result = import(&mut session, &relation, rows);
                    state.write_version.fetch_add(1, Ordering::Release);
                    let _ = reply.send(result);
                }
                Cmd::Prepare { name, query, reply } => {
                    let result = match session.prepare(&query) {
                        Ok(pq) => {
                            state.prepared.write().insert(name, Arc::new(pq));
                            Ok(())
                        }
                        Err(e) => Err(ApiError::from_engine(&e)),
                    };
                    let _ = reply.send(result);
                }
                Cmd::Refresh {
                    deadline,
                    request_id,
                    reply,
                } => waiters.push(RefreshWaiter {
                    deadline,
                    request_id,
                    reply,
                }),
            }
            // Drain whatever arrived meanwhile: mutations apply before
            // the batch's single evaluation, refreshes join it.
            queue = rx.try_recv().ok();
        }
        if !waiters.is_empty() {
            refresh(&mut session, &state, waiters);
        }
    }
}

/// Applies one `/import` body. Schema comes from the first row; an
/// empty import clears an existing relation (engine semantics).
fn import(session: &mut Session, relation: &str, rows: Vec<Vec<Value>>) -> Result<(), ApiError> {
    if rows.is_empty() {
        return session
            .import_typed(relation, Vec::<(i64,)>::new())
            .map_err(|e| ApiError::from_engine(&e));
    }
    let names = (0..rows[0].len()).map(|i| format!("c{i}")).collect();
    let df = DataFrame::from_rows(names, rows)
        .map_err(|e| ApiError::bad_request(format!("malformed rows: {e}")))?;
    session
        .import_dataframe(&df, relation)
        .map_err(|e| ApiError::from_engine(&e))
}

/// One `/execute` request queued on the writer for a fresh snapshot.
pub(crate) struct RefreshWaiter {
    /// The requester's absolute deadline, if it has one.
    deadline: Option<Instant>,
    /// Its serving request id (attributed to the evaluation).
    request_id: Option<String>,
    /// Reply slot.
    reply: Reply<Arc<Published>>,
}

/// Runs (at most) one evaluation for a batch of refresh waiters and
/// publishes the result.
fn refresh(session: &mut Session, state: &ServerState, waiters: Vec<RefreshWaiter>) {
    let now = Instant::now();
    let mut live = Vec::new();
    for w in waiters {
        match w.deadline {
            Some(d) if d <= now => {
                let _ = w.reply.send(Err(ApiError::deadline(
                    "deadline expired while queued for evaluation",
                )));
            }
            _ => live.push(w),
        }
    }
    let Some(extra) = live.len().checked_sub(1) else {
        return; // every waiter's deadline already expired
    };
    if extra > 0 {
        state.metrics.counter("execute_coalesced").add(extra as u64);
    }
    state
        .metrics
        .gauge("eval_waiters_last")
        .set(live.len() as i64);

    // Version to stamp on the publish — read *before* evaluating, so a
    // mutation racing in mid-eval leaves the published version behind
    // `write_version` and the next execute triggers another refresh.
    let version = state.version();
    {
        let current = state.published.read().clone();
        if current.version == version {
            for w in live {
                let _ = w.reply.send(Ok(current.clone()));
            }
            return;
        }
    }

    // Evaluation budget: the config cap, tightened to the laxest waiter
    // deadline when *every* waiter carries one (a deadline-free waiter
    // is entitled to the full cap).
    let laxest: Option<u64> = if live.iter().all(|w| w.deadline.is_some()) {
        live.iter()
            .filter_map(|w| w.deadline)
            .map(|d| (d.saturating_duration_since(now).as_millis() as u64).max(1))
            .max()
    } else {
        None
    };
    let budget = match (state.cfg.max_eval_millis, laxest) {
        (Some(cap), Some(req)) => Some(cap.min(req)),
        (Some(cap), None) => Some(cap),
        (None, req) => req,
    };
    let request_ids: Vec<String> = live.iter().filter_map(|w| w.request_id.clone()).collect();
    session.set_request_ids(request_ids.clone());
    session.set_max_eval_millis(budget);
    let eval_start = Instant::now();
    let outcome = session.snapshot();
    let eval_wall = eval_start.elapsed();
    session.set_max_eval_millis(state.cfg.max_eval_millis);

    state
        .metrics
        .histogram("eval_duration_ns")
        .record(eval_wall.as_nanos() as u64);
    slow_query_log(session, state, eval_wall, &request_ids, outcome.is_err());

    match outcome {
        Ok(snapshot) => {
            state.metrics.counter("evals_total").inc();
            let cache = snapshot.cache_stats();
            state
                .metrics
                .gauge("ie_cache_entries")
                .set(cache.entries as i64);
            state
                .metrics
                .gauge("ie_cache_bytes")
                .set(cache.bytes as i64);
            state
                .metrics
                .gauge("published_eval_seq")
                .set(snapshot.eval_seq() as i64);
            let published = Arc::new(Published { snapshot, version });
            *state.published.write() = published.clone();
            for w in live {
                let _ = w.reply.send(Ok(published.clone()));
            }
        }
        Err(e) => {
            state.metrics.counter("eval_errors_total").inc();
            let err = ApiError::from_engine(&e);
            for w in live {
                let _ = w.reply.send(Err(err.clone()));
            }
        }
    }
}

/// Writes a slow-query record when the evaluation's wall time reached
/// `cfg.slow_eval_ms`: one JSONL object carrying the eval attribution
/// (seq, request ids, error) and the engine's per-rule `EvalProfile`
/// records embedded verbatim (requires session tracing ≥ `Summary`;
/// `spannerd` enables that automatically when `--slow-eval-ms` is set).
fn slow_query_log(
    session: &Session,
    state: &ServerState,
    eval_wall: std::time::Duration,
    request_ids: &[String],
    errored: bool,
) {
    let Some(threshold) = state.cfg.slow_eval_ms else {
        return;
    };
    let Some(sink) = &state.slow_log else {
        return;
    };
    if (eval_wall.as_millis() as u64) < threshold {
        return;
    }
    state.metrics.counter("slow_evals_total").inc();
    let profile = session.profile().map_or(Json::Null, |p| {
        Json::Arr(
            p.to_json_lines()
                .lines()
                .map(|line| Json::Raw(line.to_string()))
                .collect(),
        )
    });
    sink.write(&Json::Obj(vec![
        ("type".into(), Json::str("slow_eval")),
        ("ts_micros".into(), Json::Int(now_micros())),
        ("eval_seq".into(), Json::Int(session.eval_seq() as i64)),
        (
            "eval_wall_micros".into(),
            Json::Int(eval_wall.as_micros() as i64),
        ),
        ("threshold_ms".into(), Json::Int(threshold as i64)),
        ("errored".into(), Json::Bool(errored)),
        (
            "request_ids".into(),
            Json::Arr(request_ids.iter().map(Json::str).collect()),
        ),
        ("profile".into(), profile),
    ]));
}
