//! The wire error shape and the engine-error → HTTP mapping.

use crate::json::Json;
use spannerlog_engine::EngineError;

/// Culprit-rule attribution for evaluation-limit overruns: which rule
/// blew the budget, where it lives in the program source.
#[derive(Debug, Clone)]
pub struct ErrorCulprit {
    /// Head predicate of the culprit rule.
    pub rule: String,
    /// 1-based source line of the culprit rule.
    pub line: usize,
    /// Source text of the culprit rule.
    pub source: String,
}

/// A structured API error: an HTTP status plus the JSON body spannerd
/// returns for it. Evaluation-limit overruns carry the culprit rule
/// (head, line, and source text) so a client can see *which rule* blew
/// the budget without reading server logs.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable machine-readable kind (`"deadline"`, `"limit"`, …).
    pub kind: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Culprit attribution, when one exists — boxed so the handlers'
    /// `Result<Response, ApiError>` returns stay register-sized.
    pub culprit: Option<Box<ErrorCulprit>>,
    /// The serving request id the error is answering, when request
    /// handling assigned one (echoed in the body so structured 503/429
    /// errors correlate with the access log).
    pub request_id: Option<String>,
}

impl ApiError {
    /// A plain error with no culprit rule.
    pub fn new(status: u16, kind: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            kind,
            message: message.into(),
            culprit: None,
            request_id: None,
        }
    }

    /// 400 with kind `"bad_request"`.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(400, "bad_request", message)
    }

    /// 503 for a request whose deadline expired before (or while)
    /// evaluation could serve it.
    pub fn deadline(message: impl Into<String>) -> ApiError {
        ApiError::new(503, "deadline", message)
    }

    /// Maps an engine failure to its HTTP shape:
    ///
    /// * wall-clock limit → 503 `deadline` (the request ran out of
    ///   time; retrying later, or with a larger budget, may succeed),
    /// * row/round limits → 429 `limit` (the query is too expensive as
    ///   admitted; retrying unchanged cannot succeed),
    /// * everything else (parse errors, unknown relations, unsafe
    ///   rules, …) → 400 `bad_request`.
    pub fn from_engine(err: &EngineError) -> ApiError {
        match err {
            EngineError::LimitExceeded {
                resource, culprit, ..
            } => {
                let wall_clock = *resource == "eval wall-clock millis";
                let mut api = ApiError::new(
                    if wall_clock { 503 } else { 429 },
                    if wall_clock { "deadline" } else { "limit" },
                    err.to_string(),
                );
                if culprit.is_known() {
                    api.culprit = Some(Box::new(ErrorCulprit {
                        rule: culprit.head.clone(),
                        line: culprit.line,
                        source: culprit.source.clone(),
                    }));
                }
                api
            }
            other => ApiError::bad_request(other.to_string()),
        }
    }

    /// Renders the JSON body:
    /// `{"error":{"status":…,"kind":…,"message":…[,"rule":…,"line":…,"source":…]}}`.
    pub fn body(&self) -> String {
        let mut members = vec![
            ("status".to_string(), Json::Int(i64::from(self.status))),
            ("kind".to_string(), Json::str(self.kind)),
            ("message".to_string(), Json::str(&self.message)),
        ];
        if let Some(culprit) = &self.culprit {
            members.push(("rule".into(), Json::str(&culprit.rule)));
            members.push(("line".into(), Json::Int(culprit.line as i64)));
            members.push(("source".into(), Json::str(&culprit.source)));
        }
        if let Some(id) = &self.request_id {
            members.push(("request_id".into(), Json::str(id)));
        }
        Json::Obj(vec![("error".into(), Json::Obj(members))]).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlog_engine::LimitCulprit;

    fn limit_err(resource: &'static str) -> EngineError {
        EngineError::LimitExceeded {
            resource,
            limit: 7,
            culprit: Box::new(LimitCulprit {
                head: "Blow".into(),
                source: "Blow(x) <- Blow(y), add(y, 1) -> (x)".into(),
                line: 3,
            }),
        }
    }

    #[test]
    fn wall_clock_limits_are_503_and_row_limits_429() {
        let deadline = ApiError::from_engine(&limit_err("eval wall-clock millis"));
        assert_eq!((deadline.status, deadline.kind), (503, "deadline"));
        let rows = ApiError::from_engine(&limit_err("materialized rows"));
        assert_eq!((rows.status, rows.kind), (429, "limit"));
        let culprit = rows.culprit.as_deref().expect("culprit attribution");
        assert_eq!(culprit.rule, "Blow");
        let body = rows.body();
        let parsed = Json::parse(&body).unwrap();
        let err = parsed.get("error").unwrap();
        assert_eq!(err.get("status").unwrap(), &Json::Int(429));
        assert_eq!(err.get("rule").unwrap().as_str(), Some("Blow"));
        assert_eq!(err.get("line").unwrap(), &Json::Int(3));
    }

    #[test]
    fn other_engine_errors_are_400() {
        let e = ApiError::from_engine(&EngineError::UnknownRelation("Nope".into()));
        assert_eq!((e.status, e.kind), (400, "bad_request"));
        assert!(e.culprit.is_none());
    }
}
