//! Server configuration.

/// Tunables for [`crate::Server`]. All admission-control knobs are
/// per-request ceilings: a request may ask for *less* (`deadline_ms`,
/// `max_rows` in the `/execute` body) but never for more.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171`; port `0` picks an ephemeral
    /// port (read it back from [`crate::Server::local_addr`]).
    pub addr: String,
    /// Connection-handler threads (the writer thread is extra). `0`
    /// means one per available core. Each keep-alive connection
    /// occupies a worker for its lifetime, so this also bounds the
    /// number of concurrently connected clients — size it to the
    /// expected client count, not the core count, when clients hold
    /// connections open.
    pub workers: usize,
    /// Largest accepted request body; beyond it the request is refused
    /// with 413 before evaluation starts.
    pub max_body_bytes: usize,
    /// Deadline applied to `/execute` requests that do not set
    /// `deadline_ms` themselves; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Hard ceiling on the wall-clock budget of any single evaluation,
    /// regardless of what deadlines the waiting requests carry.
    pub max_eval_millis: Option<u64>,
    /// Row-materialization budget enforced during evaluation (maps to
    /// [`spannerlog_engine::SessionBuilder::max_materialized_rows`]);
    /// overruns surface as HTTP 429 naming the culprit rule.
    pub max_materialized_rows: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_body_bytes: 4 * 1024 * 1024,
            default_deadline_ms: Some(30_000),
            max_eval_millis: Some(60_000),
            max_materialized_rows: Some(10_000_000),
        }
    }
}

impl ServeConfig {
    /// The effective worker count (resolving `0` to the core count).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}
