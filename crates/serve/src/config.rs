//! Server configuration.

/// Tunables for [`crate::Server`]. All admission-control knobs are
/// per-request ceilings: a request may ask for *less* (`deadline_ms`,
/// `max_rows` in the `/execute` body) but never for more.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171`; port `0` picks an ephemeral
    /// port (read it back from [`crate::Server::local_addr`]).
    pub addr: String,
    /// Connection-handler threads (the writer thread is extra). `0`
    /// means one per available core. Each *active* keep-alive
    /// connection occupies a worker, but idle connections are closed
    /// after [`ServeConfig::idle_timeout_ms`], so workers recycle; size
    /// this to the expected number of concurrently active clients.
    pub workers: usize,
    /// Largest accepted request body; beyond it the request is refused
    /// with 413 before evaluation starts.
    pub max_body_bytes: usize,
    /// Deadline applied to `/execute` requests that do not set
    /// `deadline_ms` themselves; `None` means no default deadline.
    pub default_deadline_ms: Option<u64>,
    /// Hard ceiling on the wall-clock budget of any single evaluation,
    /// regardless of what deadlines the waiting requests carry.
    pub max_eval_millis: Option<u64>,
    /// Row-materialization budget enforced during evaluation (maps to
    /// [`spannerlog_engine::SessionBuilder::max_materialized_rows`]);
    /// overruns surface as HTTP 429 naming the culprit rule.
    pub max_materialized_rows: Option<usize>,
    /// Close a keep-alive connection after this long with no request on
    /// it, freeing its pool worker for other clients. `None` keeps idle
    /// connections open forever (each then pins a worker for its
    /// lifetime). Enforcement granularity is the 250 ms socket read
    /// tick.
    pub idle_timeout_ms: Option<u64>,
    /// Access-log destination: one JSONL record per request, written to
    /// the literal `"stderr"` or to a file path (append). `None`
    /// disables the access log.
    pub access_log: Option<String>,
    /// Slow-query threshold: any evaluation whose wall time reaches
    /// this many milliseconds is logged (to the same destination rules
    /// as [`ServeConfig::slow_log`]) together with its per-rule
    /// `EvalProfile` JSON. `None` disables the slow-query log.
    pub slow_eval_ms: Option<u64>,
    /// Slow-query-log destination (`"stderr"` or a file path). `None`
    /// falls back to [`ServeConfig::access_log`]'s destination, or
    /// `stderr` when that is unset too.
    pub slow_log: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            max_body_bytes: 4 * 1024 * 1024,
            default_deadline_ms: Some(30_000),
            max_eval_millis: Some(60_000),
            max_materialized_rows: Some(10_000_000),
            idle_timeout_ms: Some(30_000),
            access_log: None,
            slow_eval_ms: None,
            slow_log: None,
        }
    }
}

impl ServeConfig {
    /// The effective worker count (resolving `0` to the core count).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}
