//! Registering IE functions over the wire.
//!
//! A remote client cannot ship a host closure (pillar 3 of the paper is
//! an *embedding* API), so `/register` accepts the next best thing: a
//! named extractor from a catalog of declaratively-specifiable IE
//! function shapes. Today that catalog is regular spanners — a
//! precompiled pattern applied to one text argument, emitting spans or
//! strings — which covers the paper's `rgx` family with the pattern
//! baked in at registration time (so requests pay no per-call compile
//! and the IE memo keys stay small).

use crate::error::ApiError;
use spannerlib_core::{Span, Value};
use spannerlib_regex::Regex;
use spannerlog_engine::Session;

/// Declarative description of a catalog IE function, as carried by a
/// `/register` body of the form
/// `{"ie": {"name": …, "pattern": …, "output": "spans"|"strings"}}`.
#[derive(Debug, Clone)]
pub struct IeSpec {
    /// Name the function is registered (and called in rules) under.
    pub name: String,
    /// The regular expression, compiled once at registration.
    pub pattern: String,
    /// `false`: rows of spans (positioned in the argument's document);
    /// `true`: rows of matched strings.
    pub strings: bool,
}

/// Compiles `spec` and registers it on `session`. One input argument
/// (str or span); one output column per explicit capture group, or the
/// whole match when the pattern has none — mirroring the built-in `rgx`
/// family's conventions.
pub fn register_ie(session: &mut Session, spec: &IeSpec) -> Result<(), ApiError> {
    let regex = Regex::new(&spec.pattern)
        .map_err(|e| ApiError::bad_request(format!("bad pattern {:?}: {e}", spec.pattern)))?;
    let strings = spec.strings;
    session.register(&spec.name, Some(1), move |args, ctx| {
        let mut arg = ctx.text_arg(&args[0])?;
        let text = arg.shared_text();
        let mut out = Vec::new();
        for caps in regex.captures_iter(&text) {
            let whole = caps.group(0).expect("group 0 is the whole match");
            let ranges: Vec<(usize, usize)> = if regex.group_count() == 0 {
                vec![whole]
            } else {
                // A non-participating optional group has no span to
                // report; skip the row rather than fail the request.
                match caps.explicit_groups().collect::<Option<Vec<_>>>() {
                    Some(groups) => groups,
                    None => continue,
                }
            };
            let row: Vec<Value> = if strings {
                ranges
                    .iter()
                    .map(|&(s, e)| Value::str(&text[s..e]))
                    .collect()
            } else {
                let (doc, base) = arg.doc_base(ctx);
                ranges
                    .iter()
                    .map(|&(s, e)| Value::Span(Span::new(doc, base + s, base + e)))
                    .collect()
            };
            out.push(row);
        }
        Ok(out)
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_spanner_extracts_spans_and_strings() {
        let mut session = Session::new();
        register_ie(
            &mut session,
            &IeSpec {
                name: "word".into(),
                pattern: "[a-z]+".into(),
                strings: false,
            },
        )
        .unwrap();
        register_ie(
            &mut session,
            &IeSpec {
                name: "pair".into(),
                pattern: "([a-z]+)=([0-9]+)".into(),
                strings: true,
            },
        )
        .unwrap();
        session
            .run(
                "new Doc(str)\nDoc(\"ab cd\") Doc(\"k=12\")\n\
                 W(s) <- Doc(d), word(d) -> (s)\n\
                 P(k, v) <- Doc(d), pair(d) -> (k, v)",
            )
            .unwrap();
        let w = session.export("?W(s)").unwrap();
        assert_eq!(w.num_rows(), 3, "ab, cd, and the k of k=12");
        let p: Vec<(String, String)> = session.export_typed("?P(k, v)").unwrap();
        assert_eq!(p, vec![("k".to_string(), "12".to_string())]);
    }

    #[test]
    fn bad_patterns_are_rejected_at_registration() {
        let err = register_ie(
            &mut Session::new(),
            &IeSpec {
                name: "broken".into(),
                pattern: "(unclosed".into(),
                strings: false,
            },
        )
        .unwrap_err();
        assert_eq!(err.status, 400);
    }
}
