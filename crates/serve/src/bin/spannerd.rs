//! The spannerd daemon: a Spannerlog engine behind an HTTP/1.1 API.
//!
//! ```text
//! spannerd [--addr HOST:PORT] [--workers N] [--parallelism N]
//!          [--deadline-ms N] [--max-eval-millis N] [--max-rows N]
//!          [--max-body-bytes N] [--idle-timeout-ms N] [--trace]
//!          [--access-log PATH|stderr] [--slow-eval-ms N]
//!          [--slow-log PATH|stderr]
//! ```
//!
//! Starts empty; clients build state over the wire (`/register`,
//! `/import`, `/prepare`) and read it back (`/execute`, `/profile`,
//! `/metrics`). `--access-log` appends one JSONL record per request;
//! `--slow-eval-ms` logs any evaluation at or over the threshold with
//! its per-rule profile attached (and enables `Summary` tracing so the
//! profile exists). SIGINT/SIGTERM begin a graceful drain: the
//! listener closes, `/healthz` turns 503, in-flight requests finish.

use spannerlib_serve::{signal, ServeConfig, Server};
use spannerlog_engine::{Session, TraceLevel};
use std::time::Duration;

fn usage(error: &str) -> ! {
    eprintln!("spannerd: {error}");
    eprintln!(
        "usage: spannerd [--addr HOST:PORT] [--workers N] [--parallelism N]\n\
         \u{20}               [--deadline-ms N] [--max-eval-millis N] [--max-rows N]\n\
         \u{20}               [--max-body-bytes N] [--idle-timeout-ms N] [--trace]\n\
         \u{20}               [--access-log PATH|stderr] [--slow-eval-ms N]\n\
         \u{20}               [--slow-log PATH|stderr]"
    );
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        usage(&format!("{flag} needs a value"));
    };
    value
        .parse()
        .unwrap_or_else(|_| usage(&format!("invalid value {value:?} for {flag}")))
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7171".into(),
        ..ServeConfig::default()
    };
    let mut parallelism: Option<usize> = None;
    let mut trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = parse("--addr", args.next()),
            "--workers" => cfg.workers = parse("--workers", args.next()),
            "--parallelism" => parallelism = Some(parse("--parallelism", args.next())),
            "--deadline-ms" => cfg.default_deadline_ms = Some(parse("--deadline-ms", args.next())),
            "--max-eval-millis" => {
                cfg.max_eval_millis = Some(parse("--max-eval-millis", args.next()))
            }
            "--max-rows" => cfg.max_materialized_rows = Some(parse("--max-rows", args.next())),
            "--max-body-bytes" => cfg.max_body_bytes = parse("--max-body-bytes", args.next()),
            "--idle-timeout-ms" => {
                cfg.idle_timeout_ms = Some(parse("--idle-timeout-ms", args.next()))
            }
            "--access-log" => cfg.access_log = Some(parse("--access-log", args.next())),
            "--slow-eval-ms" => cfg.slow_eval_ms = Some(parse("--slow-eval-ms", args.next())),
            "--slow-log" => cfg.slow_log = Some(parse("--slow-log", args.next())),
            "--trace" => trace = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    let mut builder = Session::builder();
    if let Some(n) = parallelism {
        builder = builder.parallelism(n);
    }
    // The slow-query log embeds the per-rule EvalProfile, which only
    // exists when evaluations are traced — turn Summary tracing on
    // whenever a threshold is configured.
    if trace || cfg.slow_eval_ms.is_some() {
        builder = builder.tracing(TraceLevel::Summary);
    }
    let session = builder.build();

    signal::install();
    let server = match Server::bind(session, cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spannerd: bind failed: {e}");
            std::process::exit(1)
        }
    };
    let handle = server.handle();
    // Announce readiness on stdout so scripts (CI boots spannerd on an
    // ephemeral port) can scrape the address.
    println!("spannerd listening on http://{}", server.local_addr());

    let watcher = handle.clone();
    std::thread::Builder::new()
        .name("spannerd-signals".into())
        .spawn(move || loop {
            if signal::triggered() {
                eprintln!("spannerd: termination signal received, draining");
                watcher.shutdown();
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        })
        .expect("spawn signal watcher");

    if let Err(e) = server.serve() {
        eprintln!("spannerd: serve failed: {e}");
        std::process::exit(1)
    }
    eprintln!("spannerd: drained, bye");
}
