//! A vendored HTTP/1.1 subset: request parsing and response writing
//! over any `BufRead`/`Write` pair.
//!
//! Scope is exactly what spannerd's JSON API needs — no TLS, no
//! multipart, no trailers. Bodies require `Content-Length`; chunked
//! transfer coding is rejected with 411 (`Length Required`), matching
//! the admission-control stance that a request's cost must be knowable
//! before it is read. Connections are keep-alive by default (HTTP/1.1
//! semantics); [`Request::wants_close`] reports the client's choice.

use std::io::{self, BufRead, Read, Write};

/// Total bytes allowed for the request line plus all headers.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// How many consecutive socket-timeout ticks a *partially received*
/// request may survive before the connection is dropped. With spannerd's
/// 250 ms read timeout this bounds a stalled client to ~10 s, which also
/// bounds how long a draining server waits on it.
const MAX_STALL_TICKS: usize = 40;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `POST`.
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// Outcome of one [`read_request`] attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or broke) the connection between requests.
    Closed,
    /// The socket read timed out with no bytes of a next request seen —
    /// an idle keep-alive tick; the caller decides whether to keep
    /// waiting (still accepting) or to close (draining).
    IdleTick,
    /// A malformed or over-limit request. The connection must be closed
    /// after writing the error response (framing may be corrupt).
    Bad {
        /// Suggested HTTP status (400 / 408 / 411 / 413 / 431).
        status: u16,
        /// Human-readable reason, for the JSON error body.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> ReadOutcome {
    ReadOutcome::Bad {
        status,
        message: message.into(),
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request. `max_body` bounds `Content-Length` (413 beyond).
///
/// Timeout semantics (sockets with a read timeout): before any byte of
/// the request arrives a timeout yields [`ReadOutcome::IdleTick`]; once
/// partially received, the parser keeps waiting for up to
/// [`MAX_STALL_TICKS`] timeouts, then fails with 408.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> ReadOutcome {
    // Accumulate the head (request line + headers) up to CRLFCRLF.
    let mut head: Vec<u8> = Vec::new();
    let mut stalls = 0usize;
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() >= MAX_HEAD_BYTES {
            return bad(431, "request head exceeds 8 KiB");
        }
        let chunk = match reader.fill_buf() {
            Ok([]) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    bad(400, "connection closed mid-request")
                };
            }
            Ok(chunk) => chunk,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if head.is_empty() {
                    return ReadOutcome::IdleTick;
                }
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return bad(408, "timed out reading request head");
                }
                continue;
            }
            Err(_) => return ReadOutcome::Closed,
        };
        stalls = 0;
        // Consume only up to the head terminator; anything after it is
        // body bytes that stay buffered for the read below.
        let take = chunk.len().min(MAX_HEAD_BYTES + 4 - head.len());
        head.extend_from_slice(&chunk[..take]);
        let consumed = match find_head_end(&head) {
            Some(pos) => take - (head.len() - (pos + 4)),
            None => take,
        };
        reader.consume(consumed);
    };

    let head_text = match std::str::from_utf8(&head[..head_end]) {
        Ok(t) => t,
        Err(_) => return bad(400, "request head is not UTF-8"),
    };
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(400, format!("malformed request line {request_line:?}"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return bad(400, format!("malformed request line {request_line:?}"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return bad(400, format!("malformed header line {line:?}"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let req = Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return bad(411, "chunked bodies are not accepted; send Content-Length");
    }
    let content_length = match req.header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return bad(400, format!("invalid Content-Length {v:?}")),
        },
    };
    if content_length > max_body {
        return bad(
            413,
            format!("body of {content_length} bytes exceeds the {max_body}-byte limit"),
        );
    }
    let mut body = vec![0u8; content_length];
    if let Err(outcome) = read_exact_patient(reader, &mut body) {
        return outcome;
    }
    ReadOutcome::Request(Request { body, ..req })
}

/// Locates the end of the head: byte offset of `\r\n\r\n`, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// `read_exact` that rides out socket read timeouts (bounded, as in the
/// head loop) and maps failures to protocol outcomes.
fn read_exact_patient<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), ReadOutcome> {
    let mut filled = 0usize;
    let mut stalls = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(bad(400, "connection closed mid-body")),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(bad(408, "timed out reading request body"));
                }
            }
            Err(_) => return Err(ReadOutcome::Closed),
        }
    }
    Ok(())
}

/// Reason phrase for the status codes spannerd emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `ETag`, …).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.into(), value));
        self
    }
}

/// Serializes `resp`; `close` controls the `Connection` header (the
/// caller closes the stream afterwards when it is `true`).
pub fn write_response<W: Write>(w: &mut W, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    w.write_all(head.as_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_a_post_with_body_and_keeps_the_rest_buffered() {
        let raw = b"POST /execute?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        let ReadOutcome::Request(req) = read_request(&mut reader, 1024) else {
            panic!("first request must parse");
        };
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("POST", "/execute")
        );
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body, b"body");
        assert!(!req.wants_close());
        // The pipelined second request is still readable.
        let ReadOutcome::Request(req2) = read_request(&mut reader, 1024) else {
            panic!("second request must parse");
        };
        assert_eq!(req2.path, "/healthz");
        assert!(req2.body.is_empty());
        assert!(matches!(
            read_request(&mut reader, 1024),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn rejects_chunked_with_411() {
        let out = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        assert!(
            matches!(out, ReadOutcome::Bad { status: 411, .. }),
            "{out:?}"
        );
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let out = parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
        assert!(
            matches!(out, ReadOutcome::Bad { status: 413, .. }),
            "{out:?}"
        );
    }

    #[test]
    fn rejects_oversized_heads_with_431() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; 10_000]);
        assert!(matches!(parse(&raw), ReadOutcome::Bad { status: 431, .. }));
    }

    #[test]
    fn rejects_malformed_lines_with_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/9\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let out = parse(raw);
            assert!(
                matches!(out, ReadOutcome::Bad { status: 400, .. }),
                "{out:?}"
            );
        }
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ReadOutcome::Request(req) = parse(raw) else {
            panic!("must parse");
        };
        assert!(req.wants_close());
    }

    #[test]
    fn responses_carry_length_and_connection_headers() {
        let mut out = Vec::new();
        let resp = Response::json(429, "{\"error\":1}".into()).with_header("ETag", "\"v1\"".into());
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("ETag: \"v1\"\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n\r\n{\"error\":1}"));
    }
}
