//! The structured profile must round-trip through a real JSON parser:
//! every line `EvalProfile::to_json_lines` emits is a standalone JSON
//! object carrying the schema version, and the serving attribution
//! fields (`eval_seq`, `request_ids`) survive the trip.

use spannerlib_core::Value;
use spannerlib_serve::Json;
use spannerlog_engine::{Session, TraceLevel};

#[test]
fn profile_json_lines_round_trip_through_the_json_parser() {
    let mut session = Session::builder().tracing(TraceLevel::Summary).build();
    session.run("new Doc(str)").unwrap();
    session
        .add_fact("Doc", [Value::str("Alice met Bob in Paris")])
        .unwrap();
    session
        .run(r#"Name(d, s) <- Doc(d), rgx("[A-Z][a-z]+", d) -> (s)"#)
        .unwrap();
    session.run("?Name(d, s)").unwrap();

    let profile = session.profile().expect("Summary tracing yields a profile");
    let rendered = profile.to_json_lines();
    let lines: Vec<&str> = rendered.lines().collect();
    assert!(!lines.is_empty());

    let mut parsed = Vec::new();
    for line in &lines {
        let json = Json::parse(line)
            .unwrap_or_else(|e| panic!("profile line is not valid JSON ({e}): {line}"));
        assert_eq!(
            json.get("schema").and_then(Json::as_i64),
            Some(1),
            "every record carries the schema version: {line}"
        );
        parsed.push(json);
    }

    // The head record is the profile itself, with serving attribution.
    let head = &parsed[0];
    assert_eq!(head.get("type").unwrap().as_str(), Some("profile"));
    assert_eq!(
        head.get("eval_seq").and_then(Json::as_i64),
        Some(profile.eval_seq as i64)
    );
    let ids = head.get("request_ids").unwrap().as_array().unwrap();
    assert_eq!(ids.len(), profile.request_ids.len());

    // Rule records follow and name the traced rule.
    let rule_heads: Vec<&str> = parsed[1..]
        .iter()
        .filter(|j| j.get("type").and_then(Json::as_str) == Some("rule"))
        .filter_map(|j| j.get("head").and_then(Json::as_str))
        .collect();
    assert!(rule_heads.contains(&"Name"), "{rule_heads:?}");
}
