//! End-to-end tests: a real spannerd over a real socket, driven by the
//! crate's own client.

use spannerlib_serve::{Client, Json, ServeConfig, Server, ServerHandle};
use spannerlog_engine::Session;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Boots a server on an ephemeral port; returns its address, handle,
/// and the thread running the accept loop.
fn boot(
    session: Session,
    cfg: ServeConfig,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(
        session,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            // A keep-alive connection occupies a pool worker for its
            // lifetime; size the pool above any test's connection count
            // so the tests cannot starve on small CI hosts.
            workers: cfg.workers.max(12),
            ..cfg
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, thread)
}

fn post(client: &mut Client, path: &str, body: &str) -> (u16, Json) {
    let resp = client
        .post(path, &Json::parse(body).expect("test body is valid JSON"))
        .expect("request");
    let json = resp.json().unwrap_or(Json::Null);
    (resp.status, json)
}

fn error_kind(json: &Json) -> Option<&str> {
    json.get("error")?.get("kind")?.as_str()
}

#[test]
fn full_lifecycle_register_import_prepare_execute() {
    let (addr, handle, thread) = boot(Session::new(), ServeConfig::default());
    let mut client = Client::new(addr);

    let resp = client.get("/healthz").expect("healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.json().unwrap().get("status").unwrap().as_str(),
        Some("ok")
    );

    let (status, _) = post(
        &mut client,
        "/register",
        r#"{"rules": "new Doc(str)\nMention(d, s) <- Doc(d), rgx(\"[A-Z][a-z]+\", d) -> (s)"}"#,
    );
    assert_eq!(status, 200);

    let (status, body) = post(
        &mut client,
        "/import",
        r#"{"relation": "Doc", "rows": [["Alice met Bob"], ["Carol slept"]]}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("rows").unwrap(), &Json::Int(2));

    let (status, _) = post(
        &mut client,
        "/prepare",
        r#"{"name": "mentions", "query": "?Mention(d, s)"}"#,
    );
    assert_eq!(status, 200);

    // Prepared execution: spans come back resolved against the
    // snapshot's document store.
    let (status, body) = post(&mut client, "/execute", r#"{"prepared": "mentions"}"#);
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("row_count").unwrap(), &Json::Int(3));
    let rows = body.get("rows").unwrap().as_array().unwrap();
    let texts: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.as_array()?.get(1)?.get("text")?.as_str())
        .collect();
    assert!(texts.contains(&"Alice") && texts.contains(&"Bob") && texts.contains(&"Carol"));
    let span = rows[0].as_array().unwrap()[1].clone();
    assert!(span.get("start").is_some() && span.get("end").is_some());

    // Ad-hoc queries work too, against the same snapshot.
    let (status, body) = post(&mut client, "/execute", r#"{"query": "?Doc(d)"}"#);
    assert_eq!(status, 200);
    assert_eq!(body.get("row_count").unwrap(), &Json::Int(2));

    // Unknown prepared name: 404, structured.
    let (status, body) = post(&mut client, "/execute", r#"{"prepared": "nope"}"#);
    assert_eq!(status, 404);
    assert_eq!(error_kind(&body), Some("not_found"));

    // /profile reports the per-route histograms and publish version.
    let resp = client.get("/profile").expect("profile");
    assert_eq!(resp.status, 200);
    let profile = resp.json().unwrap();
    assert!(profile.get("version").unwrap().as_i64().unwrap() >= 2);
    let Json::Obj(endpoints) = profile.get("endpoints").unwrap() else {
        panic!("endpoints must be an object");
    };
    // The execute histogram is labeled per route and status class.
    let execute_count: i64 = endpoints
        .iter()
        .filter(|(name, _)| {
            name.starts_with("http_request_duration_ns") && name.contains("/execute")
        })
        .filter_map(|(_, h)| h.get("count")?.as_i64())
        .sum();
    assert!(execute_count >= 3, "{endpoints:?}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn etag_flows_and_304_on_if_none_match() {
    let (addr, handle, thread) = boot(Session::new(), ServeConfig::default());
    let mut client = Client::new(addr);
    post(&mut client, "/register", r#"{"rules": "new R(int)"}"#);
    post(
        &mut client,
        "/import",
        r#"{"relation": "R", "rows": [[1], [2]]}"#,
    );

    let resp = client
        .post("/execute", &Json::parse(r#"{"query": "?R(x)"}"#).unwrap())
        .unwrap();
    assert_eq!(resp.status, 200);
    let etag = resp.header("etag").expect("ETag on 200").to_string();

    // Same version: conditional request short-circuits to 304.
    let resp = client
        .request(
            "POST",
            "/execute",
            &[("If-None-Match", &etag)],
            Some(r#"{"query": "?R(x)"}"#),
        )
        .unwrap();
    assert_eq!(resp.status, 304);
    assert!(resp.body.is_empty());

    // Churn an input relation: the fingerprint (and ETag) must move.
    post(
        &mut client,
        "/import",
        r#"{"relation": "R", "rows": [[3]]}"#,
    );
    let resp = client
        .request(
            "POST",
            "/execute",
            &[("If-None-Match", &etag)],
            Some(r#"{"query": "?R(x)"}"#),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "stale validator must revalidate");
    let new_etag = resp.header("etag").unwrap();
    assert_ne!(new_etag, etag);

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn wire_registered_ie_extracts_spans() {
    let (addr, handle, thread) = boot(Session::new(), ServeConfig::default());
    let mut client = Client::new(addr);
    let (status, _) = post(
        &mut client,
        "/register",
        r#"{"ie": {"name": "ticket", "pattern": "([A-Z]+)-([0-9]+)", "output": "strings"}}"#,
    );
    assert_eq!(status, 200);
    post(
        &mut client,
        "/register",
        r#"{"rules": "new Log(str)\nTicket(p, n) <- Log(l), ticket(l) -> (p, n)"}"#,
    );
    post(
        &mut client,
        "/import",
        r#"{"relation": "Log", "rows": [["fixed JIRA-123 and JIRA-7"]]}"#,
    );
    let (status, body) = post(&mut client, "/execute", r#"{"query": "?Ticket(p, n)"}"#);
    assert_eq!(status, 200, "{body:?}");
    assert_eq!(body.get("row_count").unwrap(), &Json::Int(2));

    // Bad pattern: structured 400 at registration time.
    let (status, body) = post(
        &mut client,
        "/register",
        r#"{"ie": {"name": "broken", "pattern": "(oops"}}"#,
    );
    assert_eq!(status, 400);
    assert_eq!(error_kind(&body), Some("bad_request"));

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn row_budget_overrun_is_429_naming_the_culprit_rule() {
    let cfg = ServeConfig {
        max_materialized_rows: Some(10),
        ..ServeConfig::default()
    };
    let (addr, handle, thread) = boot(Session::new(), cfg);
    let mut client = Client::new(addr);
    post(
        &mut client,
        "/register",
        r#"{"rules": "new Seed(int)\nWide(x, y) <- Seed(x), Seed(y)"}"#,
    );
    let rows: Vec<String> = (0..20).map(|i| format!("[{i}]")).collect();
    post(
        &mut client,
        "/import",
        &format!(r#"{{"relation": "Seed", "rows": [{}]}}"#, rows.join(",")),
    );
    let (status, body) = post(&mut client, "/execute", r#"{"query": "?Wide(x, y)"}"#);
    assert_eq!(status, 429, "{body:?}");
    let err = body.get("error").unwrap();
    assert_eq!(err.get("kind").unwrap().as_str(), Some("limit"));
    assert_eq!(err.get("rule").unwrap().as_str(), Some("Wide"));
    assert!(err
        .get("source")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("Wide(x, y)"));

    handle.shutdown();
    thread.join().unwrap();
}

/// A session with an uncached IE function that sleeps per call.
fn sleepy_session(millis: u64) -> Session {
    Session::builder()
        .register_uncached("sleepy", Some(1), move |args, _ctx| {
            std::thread::sleep(Duration::from_millis(millis));
            Ok(vec![vec![args[0].clone()]])
        })
        .build()
}

#[test]
fn deadline_overrun_is_503_naming_the_culprit_rule() {
    let (addr, handle, thread) = boot(sleepy_session(400), ServeConfig::default());
    let mut client = Client::new(addr);
    post(
        &mut client,
        "/register",
        r#"{"rules": "new In(int)\nSlow(y) <- In(x), sleepy(x) -> (y)"}"#,
    );
    post(
        &mut client,
        "/import",
        r#"{"relation": "In", "rows": [[1]]}"#,
    );
    let start = Instant::now();
    let (status, body) = post(
        &mut client,
        "/execute",
        r#"{"query": "?Slow(y)", "deadline_ms": 100}"#,
    );
    assert_eq!(status, 503, "{body:?}");
    let err = body.get("error").unwrap();
    assert_eq!(err.get("kind").unwrap().as_str(), Some("deadline"));
    // The writer's evaluation hit the engine wall-clock limit, so the
    // culprit rule travels through (the handler waits a grace window
    // beyond the deadline for exactly this).
    assert_eq!(err.get("rule").unwrap().as_str(), Some("Slow"), "{body:?}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the request must not run to completion"
    );

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn concurrent_executes_share_snapshots_and_never_block_the_writer() {
    let (addr, handle, thread) = boot(Session::new(), ServeConfig::default());
    let mut client = Client::new(addr);
    post(
        &mut client,
        "/register",
        r#"{"rules": "new V(int)\nDouble(x, y) <- V(x), V(y)"}"#,
    );
    post(
        &mut client,
        "/import",
        r#"{"relation": "V", "rows": [[1], [2], [3]]}"#,
    );

    let readers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::new(addr);
                let mut versions = Vec::new();
                for _ in 0..10 {
                    let resp = c
                        .post(
                            "/execute",
                            &Json::parse(r#"{"query": "?Double(x, y)"}"#).unwrap(),
                        )
                        .expect("execute");
                    assert_eq!(resp.status, 200);
                    let body = resp.json().unwrap();
                    // A snapshot is internally consistent: row_count
                    // matches the rows actually serialized.
                    let n = body.get("row_count").unwrap().as_i64().unwrap();
                    assert_eq!(
                        body.get("rows").unwrap().as_array().unwrap().len() as i64,
                        n
                    );
                    versions.push(body.get("version").unwrap().as_i64().unwrap());
                }
                versions
            })
        })
        .collect();
    // Writer churn while the readers hammer /execute.
    for i in 0..10 {
        let (status, _) = post(
            &mut client,
            "/import",
            &format!(r#"{{"relation": "V", "rows": [[{i}], [{}]]}}"#, i + 100),
        );
        assert_eq!(status, 200);
    }
    for reader in readers {
        let versions = reader.join().expect("reader thread");
        // Versions observed by one reader never go backwards.
        assert!(versions.windows(2).all(|w| w[0] <= w[1]), "{versions:?}");
    }

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn protocol_errors_are_structured() {
    let (addr, handle, thread) = boot(Session::new(), ServeConfig::default());
    let mut client = Client::new(addr);

    // 404 / 405.
    let resp = client.get("/nope").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.get("/execute").unwrap();
    assert_eq!(resp.status, 405);

    // Malformed JSON: 400.
    let resp = client
        .request("POST", "/execute", &[], Some("{not json"))
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(error_kind(&resp.json().unwrap()), Some("bad_request"));

    // Chunked transfer: 411, raw socket (the client never sends it).
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /execute HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 411 "), "{text}");

    // Oversized body: 413.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"POST /execute HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 413 "), "{text}");

    handle.shutdown();
    thread.join().unwrap();
}

#[test]
fn request_id_flows_to_header_access_log_and_slow_query_profile() {
    use spannerlog_engine::TraceLevel;
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let access_path = dir.join(format!("spannerd_test_access_{pid}.jsonl"));
    let slow_path = dir.join(format!("spannerd_test_slow_{pid}.jsonl"));
    let _ = std::fs::remove_file(&access_path);
    let _ = std::fs::remove_file(&slow_path);

    // Summary tracing gives the slow-query log a profile to attach;
    // threshold 0 logs every evaluation.
    let session = Session::builder().tracing(TraceLevel::Summary).build();
    let cfg = ServeConfig {
        access_log: Some(access_path.display().to_string()),
        slow_eval_ms: Some(0),
        slow_log: Some(slow_path.display().to_string()),
        ..ServeConfig::default()
    };
    let (addr, handle, thread) = boot(session, cfg);
    let mut client = Client::new(addr);
    post(
        &mut client,
        "/register",
        r#"{"rules": "new Doc(str)\nWord(d, s) <- Doc(d), rgx(\"[a-z]+\", d) -> (s)"}"#,
    );
    post(
        &mut client,
        "/import",
        r#"{"relation": "Doc", "rows": [["hello world"]]}"#,
    );

    // First /execute after a mutation forces an evaluation, so the
    // caller-chosen id must attach to that evaluation.
    let resp = client
        .request(
            "POST",
            "/execute",
            &[("X-Request-Id", "e2e-trace-me-7")],
            Some(r#"{"query": "?Word(d, s)"}"#),
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    // 1. Echoed in the response header.
    assert_eq!(resp.header("x-request-id"), Some("e2e-trace-me-7"));

    // A request without the header gets a minted id.
    let resp = client.get("/healthz").unwrap();
    let minted = resp.header("x-request-id").expect("minted id").to_string();
    assert!(!minted.is_empty() && minted != "e2e-trace-me-7");

    handle.shutdown();
    thread.join().unwrap();

    // 2. In the access log, on the /execute line, with the snapshot
    // validator the request observed.
    let access = std::fs::read_to_string(&access_path).expect("access log written");
    let line = access
        .lines()
        .find(|l| l.contains("\"request_id\":\"e2e-trace-me-7\""))
        .unwrap_or_else(|| panic!("id missing from access log:\n{access}"));
    let record = Json::parse(line).expect("access line is valid JSON");
    assert_eq!(record.get("type").unwrap().as_str(), Some("access"));
    assert_eq!(record.get("path").unwrap().as_str(), Some("/execute"));
    assert_eq!(record.get("status").unwrap(), &Json::Int(200));
    assert!(record.get("etag").unwrap().as_str().is_some(), "{record:?}");
    assert!(record.get("eval_seq").unwrap().as_i64().unwrap() >= 1);

    // 3. In the slow-query record, which embeds the per-rule profile of
    // the evaluation that served this request.
    let slow = std::fs::read_to_string(&slow_path).expect("slow log written");
    let record = slow
        .lines()
        .map(|l| Json::parse(l).expect("slow line is valid JSON"))
        .find(|r| {
            r.get("request_ids")
                .and_then(|ids| ids.as_array())
                .is_some_and(|ids| ids.iter().any(|id| id.as_str() == Some("e2e-trace-me-7")))
        })
        .unwrap_or_else(|| panic!("id missing from slow-query log:\n{slow}"));
    assert_eq!(record.get("type").unwrap().as_str(), Some("slow_eval"));
    assert!(record.get("eval_wall_micros").unwrap().as_i64().is_some());
    let profile = record.get("profile").unwrap().as_array().unwrap();
    assert!(!profile.is_empty(), "{record:?}");
    assert_eq!(profile[0].get("type").unwrap().as_str(), Some("profile"));
    assert_eq!(profile[0].get("schema").unwrap(), &Json::Int(1));
    assert!(
        profile[0]
            .get("request_ids")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .any(|id| id.as_str() == Some("e2e-trace-me-7")),
        "{record:?}"
    );

    let _ = std::fs::remove_file(&access_path);
    let _ = std::fs::remove_file(&slow_path);
}

#[test]
fn graceful_shutdown_drains_in_flight_requests_and_healthz_turns_503() {
    let (addr, handle, thread) = boot(sleepy_session(500), ServeConfig::default());
    let mut client = Client::new(addr);
    post(
        &mut client,
        "/register",
        r#"{"rules": "new In(int)\nSlow(y) <- In(x), sleepy(x) -> (y)"}"#,
    );
    post(
        &mut client,
        "/import",
        r#"{"relation": "In", "rows": [[1]]}"#,
    );

    // Pipeline a slow execute and a healthz on one raw connection: the
    // handler answers them in order, so the healthz is deterministically
    // processed *after* shutdown begins (while the execute drains).
    let mut raw = TcpStream::connect(addr).unwrap();
    let execute_body = r#"{"query": "?Slow(y)"}"#;
    raw.write_all(
        format!(
            "POST /execute HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}GET /healthz HTTP/1.1\r\n\r\n",
            execute_body.len(),
            execute_body
        )
        .as_bytes(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(150)); // execute is now mid-eval
    assert!(handle.is_accepting());
    handle.shutdown();
    assert!(!handle.is_accepting());

    let mut text = String::new();
    raw.read_to_string(&mut text).unwrap();
    // The in-flight execute drained to a real 200 with its rows…
    assert!(text.starts_with("HTTP/1.1 200 "), "{text}");
    assert!(text.contains("\"row_count\":1"), "{text}");
    // …and the pipelined healthz saw the draining server.
    assert!(text.contains("HTTP/1.1 503 "), "{text}");
    assert!(text.contains("draining"), "{text}");
    // The connection was closed after the drain.
    assert!(text.contains("Connection: close"), "{text}");

    // The accept loop has exited; serve() returns and new connections
    // are refused once the listener drops.
    thread.join().unwrap();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be gone after drain"
    );
}
