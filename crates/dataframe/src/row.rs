//! Typed row conversion: host structs ⇄ engine rows.
//!
//! The paper's export API hands back a stringly DataFrame; these traits
//! give host code a typed bridge instead. [`FromRow`] turns one engine
//! row into a host value (so `Session::export_typed::<Email>(…)` yields
//! `Vec<Email>`); [`IntoRow`] / [`IntoRows`] are the symmetric import
//! side.
//!
//! Implementations are provided for tuples of [`FromValue`] /
//! [`IntoValue`] primitives up to arity 8, so `(String, i64)` works out
//! of the box. A domain struct implements [`FromRow`] in a few lines:
//!
//! ```
//! use spannerlib_dataframe::{FromRow, FromValue, FrameError};
//! use spannerlib_core::Value;
//!
//! struct Email { user: String, domain: String }
//!
//! impl FromRow for Email {
//!     fn from_row(row: &[Value]) -> Result<Self, FrameError> {
//!         let (user, domain) = FromRow::from_row(row)?;
//!         Ok(Email { user, domain })
//!     }
//! }
//! ```

use crate::error::FrameError;
use spannerlib_core::{Span, Value, ValueType};

/// Conversion from one engine cell into a host value.
pub trait FromValue: Sized {
    /// The engine type this conversion expects (for diagnostics).
    fn expected() -> ValueType;

    /// Converts the cell, or `None` when the runtime type does not match.
    fn from_value(v: &Value) -> Option<Self>;
}

/// Conversion from a host value into one engine cell.
pub trait IntoValue {
    /// Converts `self` into an engine value.
    fn into_value(self) -> Value;
}

impl FromValue for String {
    fn expected() -> ValueType {
        ValueType::Str
    }
    fn from_value(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

impl FromValue for i64 {
    fn expected() -> ValueType {
        ValueType::Int
    }
    fn from_value(v: &Value) -> Option<Self> {
        v.as_int()
    }
}

impl FromValue for f64 {
    fn expected() -> ValueType {
        ValueType::Float
    }
    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

impl FromValue for bool {
    fn expected() -> ValueType {
        ValueType::Bool
    }
    fn from_value(v: &Value) -> Option<Self> {
        v.as_bool()
    }
}

impl FromValue for Span {
    fn expected() -> ValueType {
        ValueType::Span
    }
    fn from_value(v: &Value) -> Option<Self> {
        v.as_span().copied()
    }
}

impl FromValue for Value {
    fn expected() -> ValueType {
        // Never reported: the conversion is infallible.
        ValueType::Str
    }
    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl IntoValue for String {
    fn into_value(self) -> Value {
        Value::str(self)
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::str(self)
    }
}

impl IntoValue for i64 {
    fn into_value(self) -> Value {
        Value::Int(self)
    }
}

impl IntoValue for f64 {
    fn into_value(self) -> Value {
        Value::Float(self)
    }
}

impl IntoValue for bool {
    fn into_value(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoValue for Span {
    fn into_value(self) -> Value {
        Value::Span(self)
    }
}

impl IntoValue for Value {
    fn into_value(self) -> Value {
        self
    }
}

/// Conversion from one engine row into a host value.
pub trait FromRow: Sized {
    /// Converts a full row. Implementations must check arity and cell
    /// types and report mismatches as [`FrameError`]s.
    fn from_row(row: &[Value]) -> Result<Self, FrameError>;
}

/// Conversion from a host value into one engine row.
pub trait IntoRow {
    /// Converts `self` into a row of engine values.
    fn into_row(self) -> Vec<Value>;
}

/// Converts a cell at `index`, mapping a type mismatch to a frame error.
fn cell<T: FromValue>(row: &[Value], index: usize) -> Result<T, FrameError> {
    let v = &row[index];
    T::from_value(v).ok_or(FrameError::CellType {
        index,
        expected: T::expected(),
        actual: v.value_type(),
    })
}

macro_rules! tuple_row_impls {
    ($n:expr; $($t:ident => $i:tt),+) => {
        impl<$($t: FromValue),+> FromRow for ($($t,)+) {
            fn from_row(row: &[Value]) -> Result<Self, FrameError> {
                if row.len() != $n {
                    return Err(FrameError::ArityMismatch {
                        expected: $n,
                        actual: row.len(),
                    });
                }
                Ok(($(cell::<$t>(row, $i)?,)+))
            }
        }

        impl<$($t: IntoValue),+> IntoRow for ($($t,)+) {
            fn into_row(self) -> Vec<Value> {
                vec![$(self.$i.into_value()),+]
            }
        }
    };
}

tuple_row_impls!(1; A => 0);
tuple_row_impls!(2; A => 0, B => 1);
tuple_row_impls!(3; A => 0, B => 1, C => 2);
tuple_row_impls!(4; A => 0, B => 1, C => 2, D => 3);
tuple_row_impls!(5; A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_row_impls!(6; A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
tuple_row_impls!(7; A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6);
tuple_row_impls!(8; A => 0, B => 1, C => 2, D => 3, E => 4, F => 5, G => 6, H => 7);

/// A collection of host values convertible into engine rows — the
/// import-side counterpart of [`FromRow`], blanket-implemented for any
/// iterable of [`IntoRow`] items.
pub trait IntoRows {
    /// Converts the collection into rows of engine values.
    fn into_rows(self) -> Vec<Vec<Value>>;
}

impl<I> IntoRows for I
where
    I: IntoIterator,
    I::Item: IntoRow,
{
    fn into_rows(self) -> Vec<Vec<Value>> {
        self.into_iter().map(IntoRow::into_row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_round_trip() {
        let row = ("ann".to_string(), 34i64, true).into_row();
        assert_eq!(
            row,
            vec![Value::str("ann"), Value::Int(34), Value::Bool(true)]
        );
        let back: (String, i64, bool) = FromRow::from_row(&row).unwrap();
        assert_eq!(back, ("ann".to_string(), 34, true));
    }

    #[test]
    fn arity_mismatch_reported() {
        let row = vec![Value::Int(1)];
        let err = <(i64, i64)>::from_row(&row).unwrap_err();
        assert!(matches!(
            err,
            FrameError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn cell_type_mismatch_reports_index() {
        let row = vec![Value::str("x"), Value::str("not an int")];
        let err = <(String, i64)>::from_row(&row).unwrap_err();
        assert_eq!(
            err,
            FrameError::CellType {
                index: 1,
                expected: ValueType::Int,
                actual: ValueType::Str,
            }
        );
    }

    #[test]
    fn value_passthrough_and_str_import() {
        let rows = vec![("ann", 1i64), ("bob", 2)].into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::str("ann"));
        let any: (Value, Value) = FromRow::from_row(&rows[1]).unwrap();
        assert_eq!(any.1, Value::Int(2));
    }
}
