//! The [`DataFrame`] itself.

use crate::column::Column;
use crate::error::FrameError;
use spannerlib_core::{Relation, Schema, Tuple, Value, ValueType};
use std::fmt;

/// A named-column, typed, row-aligned table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
}

impl DataFrame {
    /// An empty frame with the given column names and types.
    pub fn new(columns: Vec<(String, ValueType)>) -> Result<DataFrame, FrameError> {
        check_unique(columns.iter().map(|(n, _)| n.as_str()))?;
        let (names, columns) = columns
            .into_iter()
            .map(|(n, t)| (n, Column::empty(t)))
            .unzip();
        Ok(DataFrame { names, columns })
    }

    /// Builds a frame from rows of values. Column types are taken from the
    /// first row; every row must conform.
    pub fn from_rows(names: Vec<String>, rows: Vec<Vec<Value>>) -> Result<DataFrame, FrameError> {
        check_unique(names.iter().map(|s| s.as_str()))?;
        let first = rows.first().ok_or(FrameError::NoColumns)?;
        if first.len() != names.len() {
            return Err(FrameError::ArityMismatch {
                expected: names.len(),
                actual: first.len(),
            });
        }
        let mut df = DataFrame {
            columns: first
                .iter()
                .map(|v| Column::empty(v.value_type()))
                .collect(),
            names,
        };
        for row in rows {
            df.push_row(row)?;
        }
        Ok(df)
    }

    /// Builds a frame from named columns (lengths must agree).
    pub fn from_columns(columns: Vec<(String, Column)>) -> Result<DataFrame, FrameError> {
        check_unique(columns.iter().map(|(n, _)| n.as_str()))?;
        if let Some(expected) = columns.first().map(|(_, c)| c.len()) {
            for (name, col) in &columns {
                if col.len() != expected {
                    return Err(FrameError::RaggedColumns {
                        column: name.clone(),
                        actual: col.len(),
                        expected,
                    });
                }
            }
        }
        let (names, columns) = columns.into_iter().unzip();
        Ok(DataFrame { names, columns })
    }

    /// Column names, in order.
    pub fn column_names(&self) -> &[String] {
        &self.names
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The engine schema corresponding to this frame's column types.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(Column::value_type)
                .collect::<Vec<_>>(),
        )
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, FrameError> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    /// The cell at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> Option<Value> {
        self.columns.get(col)?.get(row)
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), FrameError> {
        if row.len() != self.columns.len() {
            return Err(FrameError::ArityMismatch {
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        // Validate first so a failed push leaves the frame unchanged.
        for ((value, column), name) in row.iter().zip(&self.columns).zip(&self.names) {
            if value.value_type() != column.value_type() {
                return Err(FrameError::TypeMismatch {
                    column: name.clone(),
                    expected: column.value_type(),
                    actual: value.value_type(),
                });
            }
        }
        for (value, column) in row.into_iter().zip(&mut self.columns) {
            let pushed = column.push(value);
            debug_assert!(pushed, "validated above");
        }
        Ok(())
    }

    /// Row `i` as a vector of values.
    pub fn row(&self, i: usize) -> Option<Vec<Value>> {
        if i >= self.num_rows() {
            return None;
        }
        Some(
            self.columns
                .iter()
                .map(|c| c.get(i).expect("aligned columns"))
                .collect(),
        )
    }

    /// Iterates over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.num_rows()).map(|i| self.row(i).expect("in range"))
    }

    /// A new frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame, FrameError> {
        let idx: Vec<usize> = names
            .iter()
            .map(|n| self.index_of(n))
            .collect::<Result<_, _>>()?;
        Ok(DataFrame {
            names: names.iter().map(|n| n.to_string()).collect(),
            columns: idx.iter().map(|&i| self.columns[i].clone()).collect(),
        })
    }

    /// A new frame with only the rows satisfying `predicate`.
    pub fn filter(&self, mut predicate: impl FnMut(&[Value]) -> bool) -> DataFrame {
        let keep: Vec<usize> = (0..self.num_rows())
            .filter(|&i| {
                let row = self.row(i).expect("in range");
                predicate(&row)
            })
            .collect();
        self.take(&keep)
    }

    /// A new frame sorted (stably) by the named column.
    pub fn sort_by(&self, name: &str) -> Result<DataFrame, FrameError> {
        let col = self.index_of(name)?;
        let mut order: Vec<usize> = (0..self.num_rows()).collect();
        order.sort_by_key(|&i| self.columns[col].get(i).expect("in range"));
        Ok(self.take(&order))
    }

    /// The first `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let keep: Vec<usize> = (0..self.num_rows().min(n)).collect();
        self.take(&keep)
    }

    fn take(&self, keep: &[usize]) -> DataFrame {
        DataFrame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take(keep)).collect(),
        }
    }

    /// Converts every row into a typed host value via [`FromRow`] —
    /// `df.to_typed::<(String, i64)>()` or any domain struct
    /// implementing the trait.
    ///
    /// [`FromRow`]: crate::row::FromRow
    pub fn to_typed<T: crate::row::FromRow>(&self) -> Result<Vec<T>, FrameError> {
        self.iter_rows().map(|row| T::from_row(&row)).collect()
    }

    /// Builds a frame from typed host rows via [`IntoRows`] (tuples of
    /// primitives, or anything implementing [`IntoRow`]).
    ///
    /// [`IntoRow`]: crate::row::IntoRow
    /// [`IntoRows`]: crate::row::IntoRows
    pub fn from_typed<R>(names: Vec<String>, rows: R) -> Result<DataFrame, FrameError>
    where
        R: crate::row::IntoRows,
    {
        DataFrame::from_rows(names, rows.into_rows())
    }

    /// Converts the frame into an engine [`Relation`] (set semantics —
    /// duplicate rows collapse).
    pub fn to_relation(&self) -> Relation {
        let mut rel = Relation::new(self.schema());
        for row in self.iter_rows() {
            rel.insert_unchecked(Tuple::new(row));
        }
        rel
    }

    /// Builds a frame from a relation, with the given column names
    /// (deterministic sorted row order).
    pub fn from_relation(names: Vec<String>, rel: &Relation) -> Result<DataFrame, FrameError> {
        check_unique(names.iter().map(|s| s.as_str()))?;
        if names.len() != rel.schema().arity() {
            return Err(FrameError::ArityMismatch {
                expected: names.len(),
                actual: rel.schema().arity(),
            });
        }
        let mut df = DataFrame {
            columns: rel
                .schema()
                .types()
                .iter()
                .map(|&t| Column::empty(t))
                .collect(),
            names,
        };
        for tuple in rel.sorted_tuples() {
            df.push_row(tuple.into_values().collect())
                .expect("relation rows are schema-checked");
        }
        Ok(df)
    }
}

fn check_unique<'a>(names: impl Iterator<Item = &'a str>) -> Result<(), FrameError> {
    let mut seen = std::collections::HashSet::new();
    for n in names {
        if !seen.insert(n) {
            return Err(FrameError::DuplicateColumn(n.to_string()));
        }
    }
    Ok(())
}

impl fmt::Display for DataFrame {
    /// Renders an aligned ASCII table — the notebook-cell view.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.names.iter().map(|n| n.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, v)| {
                        let s = match v {
                            // Strings unquoted in table view, like pandas.
                            Value::Str(s) => s.to_string(),
                            other => other.to_string(),
                        };
                        widths[c] = widths[c].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        sep(f)?;
        write!(f, "|")?;
        for (n, w) in self.names.iter().zip(&widths) {
            write!(f, " {:<w$} |", n, w = w)?;
        }
        writeln!(f)?;
        sep(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {:<w$} |", cell, w = w)?;
            }
            writeln!(f)?;
        }
        sep(f)?;
        write!(
            f,
            "[{} rows x {} columns]",
            self.num_rows(),
            self.num_columns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_rows(
            vec!["name".into(), "age".into()],
            vec![
                vec![Value::str("ann"), Value::Int(34)],
                vec![Value::str("bob"), Value::Int(28)],
                vec![Value::str("eve"), Value::Int(41)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = sample();
        assert_eq!(df.num_rows(), 3);
        assert_eq!(df.num_columns(), 2);
        assert_eq!(df.column_names(), &["name", "age"]);
        assert_eq!(
            df.schema(),
            Schema::new(vec![ValueType::Str, ValueType::Int])
        );
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(DataFrame::new(vec![
            ("a".into(), ValueType::Int),
            ("a".into(), ValueType::Str)
        ])
        .is_err());
    }

    #[test]
    fn push_row_validates_atomically() {
        let mut df = sample();
        // Wrong type in second column: frame must stay unchanged.
        let err = df
            .push_row(vec![Value::str("zed"), Value::str("not an int")])
            .unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
        assert_eq!(df.num_rows(), 3);
        assert!(df.push_row(vec![Value::str("zed"), Value::Int(1)]).is_ok());
        assert_eq!(df.num_rows(), 4);
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = DataFrame::from_columns(vec![
            ("a".into(), Column::Int(vec![1, 2])),
            ("b".into(), Column::Int(vec![1])),
        ])
        .unwrap_err();
        assert!(matches!(err, FrameError::RaggedColumns { .. }));
    }

    #[test]
    fn select_and_filter() {
        let df = sample();
        let names = df.select(&["name"]).unwrap();
        assert_eq!(names.num_columns(), 1);
        let adults = df.filter(|row| row[1].as_int().unwrap() > 30);
        assert_eq!(adults.num_rows(), 2);
    }

    #[test]
    fn select_missing_column_errors() {
        assert!(sample().select(&["nope"]).is_err());
    }

    #[test]
    fn sort_by_and_head() {
        let df = sample().sort_by("age").unwrap();
        assert_eq!(df.get(0, 0), Some(Value::str("bob")));
        let top = df.head(1);
        assert_eq!(top.num_rows(), 1);
    }

    #[test]
    fn relation_round_trip() {
        let df = sample();
        let rel = df.to_relation();
        assert_eq!(rel.len(), 3);
        let back = DataFrame::from_relation(vec!["name".into(), "age".into()], &rel).unwrap();
        // Relation ordering is sorted, so compare as sets of rows.
        let mut a: Vec<_> = df.iter_rows().collect();
        let mut b: Vec<_> = back.iter_rows().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn relation_collapses_duplicates() {
        let df = DataFrame::from_rows(
            vec!["x".into()],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        )
        .unwrap();
        assert_eq!(df.to_relation().len(), 1);
    }

    #[test]
    fn display_contains_cells() {
        let s = sample().to_string();
        assert!(s.contains("ann"));
        assert!(s.contains("age"));
        assert!(s.contains("[3 rows x 2 columns]"));
    }

    #[test]
    fn empty_frame_display() {
        let df = DataFrame::new(vec![("x".into(), ValueType::Int)]).unwrap();
        assert!(df.to_string().contains("[0 rows x 1 columns]"));
    }
}
