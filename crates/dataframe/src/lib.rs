//! # spannerlib-dataframe
//!
//! The host-side table type — the stand-in for pandas in the paper's §3.2
//! embedding. `Session::import` consumes a [`DataFrame`] to create an
//! engine relation; `Session::export` materializes a query result back
//! into one.
//!
//! The frame is columnar: each [`Column`] is a typed vector (string, span,
//! int, bool, float), so a frame is schema-checked by construction.
//! Frames support the small relational surface the demo scenarios need —
//! row/column selection, filtering, sorting, head — plus CSV round-trips
//! ([`DataFrame::to_csv`] / [`DataFrame::from_csv`]) and aligned
//! pretty-printing (`Display`), which is what a notebook cell would show.
//!
//! The [`row`] module adds a *typed* bridge: [`FromRow`] / [`IntoRows`]
//! convert rows to and from host tuples and structs, so exports can
//! yield `Vec<MyStruct>` instead of a stringly frame.

pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod row;

pub use column::Column;
pub use error::FrameError;
pub use frame::DataFrame;
pub use row::{FromRow, FromValue, IntoRow, IntoRows, IntoValue};
