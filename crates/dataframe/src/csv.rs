//! CSV serialization — the "code as data" channel of the case study.
//!
//! Table 1 of the paper counts 286 lines of txt/csv files as declarative
//! code: lexicons and rule tables that the SpannerLib rewrite moved out of
//! Python. This module gives frames the same capability. The dialect is
//! RFC-4180-ish: comma separator, `"` quoting with `""` escapes, header
//! row required.

use crate::error::FrameError;
use crate::frame::DataFrame;
use spannerlib_core::{Value, ValueType};

impl DataFrame {
    /// Serializes the frame to CSV with a header row. Spans render as
    /// `start..end@doc` and parse back with [`DataFrame::from_csv_typed`].
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .column_names()
                .iter()
                .map(|n| quote(n))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in self.iter_rows() {
            let rendered: Vec<String> = row.iter().map(render_value).collect();
            out.push_str(&rendered.join(","));
            out.push('\n');
        }
        out
    }

    /// Parses CSV, inferring each column's type from its first data cell
    /// (int, then float, then bool, else string). An empty body yields an
    /// error because nothing can be inferred — use
    /// [`DataFrame::from_csv_typed`] instead.
    pub fn from_csv(text: &str) -> Result<DataFrame, FrameError> {
        let (header, records) = parse_csv(text)?;
        let first = records.first().ok_or(FrameError::Csv {
            line: 2,
            msg: "cannot infer column types from an empty body".into(),
        })?;
        let types: Vec<ValueType> = first.iter().map(|cell| infer_type(cell)).collect();
        build(header, records, &types)
    }

    /// Parses CSV against an explicit column-type list.
    pub fn from_csv_typed(text: &str, types: &[ValueType]) -> Result<DataFrame, FrameError> {
        let (header, records) = parse_csv(text)?;
        if header.len() != types.len() {
            return Err(FrameError::ArityMismatch {
                expected: types.len(),
                actual: header.len(),
            });
        }
        build(header, records, types)
    }
}

fn build(
    header: Vec<String>,
    records: Vec<Vec<String>>,
    types: &[ValueType],
) -> Result<DataFrame, FrameError> {
    let mut df = DataFrame::new(header.into_iter().zip(types.iter().copied()).collect())?;
    for (i, record) in records.into_iter().enumerate() {
        if record.len() != types.len() {
            return Err(FrameError::Csv {
                line: i + 2,
                msg: format!("expected {} fields, found {}", types.len(), record.len()),
            });
        }
        let row: Vec<Value> = record
            .iter()
            .zip(types)
            .map(|(cell, t)| parse_value(cell, *t, i + 2))
            .collect::<Result<_, _>>()?;
        df.push_row(row)?;
    }
    Ok(df)
}

fn infer_type(cell: &str) -> ValueType {
    if cell.parse::<i64>().is_ok() {
        ValueType::Int
    } else if cell.parse::<f64>().is_ok() {
        ValueType::Float
    } else if cell == "true" || cell == "false" {
        ValueType::Bool
    } else {
        ValueType::Str
    }
}

fn parse_value(cell: &str, t: ValueType, line: usize) -> Result<Value, FrameError> {
    let err = |msg: String| FrameError::Csv { line, msg };
    match t {
        ValueType::Str => Ok(Value::str(cell)),
        ValueType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| err(format!("bad int {cell:?}: {e}"))),
        ValueType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| err(format!("bad float {cell:?}: {e}"))),
        ValueType::Bool => match cell {
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            other => Err(err(format!("bad bool {other:?}"))),
        },
        ValueType::Span => {
            // Format: start..end@doc
            let parse = || -> Option<Value> {
                let (range, doc) = cell.split_once('@')?;
                let (s, e) = range.split_once("..")?;
                Some(Value::Span(spannerlib_core::Span::new(
                    spannerlib_core::DocId::from_index(doc.parse().ok()?),
                    s.parse().ok()?,
                    e.parse().ok()?,
                )))
            };
            parse().ok_or_else(|| err(format!("bad span {cell:?}, expected start..end@doc")))
        }
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => quote(s),
        Value::Span(s) => format!("{}..{}@{}", s.start, s.end, s.doc.index()),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => {
            // Keep floats re-parseable (integral floats need the dot).
            let s = f.to_string();
            if s.parse::<i64>().is_ok() {
                format!("{s}.0")
            } else {
                s
            }
        }
    }
}

fn quote(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parses CSV text into a header and records, honoring quotes.
fn parse_csv(text: &str) -> Result<(Vec<String>, Vec<Vec<String>>), FrameError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any_content = false;

    while let Some(c) = chars.next() {
        any_content = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(FrameError::Csv {
                            line,
                            msg: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => { /* tolerate CRLF */ }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv {
            line,
            msg: "unterminated quote".into(),
        });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any_content || records.is_empty() {
        return Err(FrameError::Csv {
            line: 1,
            msg: "missing header row".into(),
        });
    }
    let header = records.remove(0);
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_rows(
            vec!["text".into(), "n".into()],
            vec![
                vec![Value::str("plain"), Value::Int(1)],
                vec![Value::str("with, comma"), Value::Int(2)],
                vec![Value::str("with \"quotes\""), Value::Int(3)],
                vec![Value::str("multi\nline"), Value::Int(4)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_with_quoting() {
        let df = sample();
        let csv = df.to_csv();
        let back = DataFrame::from_csv(&csv).unwrap();
        assert_eq!(df, back);
    }

    #[test]
    fn round_trip_typed_with_spans() {
        let df = DataFrame::from_rows(
            vec!["s".into()],
            vec![vec![Value::Span(spannerlib_core::Span::new(
                spannerlib_core::DocId::from_index(3),
                4,
                9,
            ))]],
        )
        .unwrap();
        let csv = df.to_csv();
        assert!(csv.contains("4..9@3"));
        let back = DataFrame::from_csv_typed(&csv, &[ValueType::Span]).unwrap();
        assert_eq!(df, back);
    }

    #[test]
    fn round_trip_floats_and_bools() {
        let df = DataFrame::from_rows(
            vec!["f".into(), "b".into()],
            vec![
                vec![Value::Float(1.5), Value::Bool(true)],
                vec![Value::Float(2.0), Value::Bool(false)],
            ],
        )
        .unwrap();
        let back = DataFrame::from_csv(&df.to_csv()).unwrap();
        assert_eq!(df, back);
    }

    #[test]
    fn type_inference() {
        let csv = "a,b,c,d\n1,1.5,true,hello\n2,2.5,false,world\n";
        let df = DataFrame::from_csv(csv).unwrap();
        assert_eq!(
            df.schema().types(),
            &[
                ValueType::Int,
                ValueType::Float,
                ValueType::Bool,
                ValueType::Str
            ]
        );
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let csv = "a,b\n1,2\n3\n";
        match DataFrame::from_csv(csv).unwrap_err() {
            FrameError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert!(matches!(
            DataFrame::from_csv("a\n\"oops\n").unwrap_err(),
            FrameError::Csv { .. }
        ));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(DataFrame::from_csv("").is_err());
    }

    #[test]
    fn crlf_tolerated() {
        let df = DataFrame::from_csv("a,b\r\n1,x\r\n").unwrap();
        assert_eq!(df.num_rows(), 1);
        assert_eq!(df.get(0, 1), Some(Value::str("x")));
    }

    #[test]
    fn typed_parse_rejects_bad_cells() {
        assert!(DataFrame::from_csv_typed("a\nnot_an_int\n", &[ValueType::Int]).is_err());
        assert!(DataFrame::from_csv_typed("a\nmaybe\n", &[ValueType::Bool]).is_err());
        assert!(DataFrame::from_csv_typed("a\n1-2\n", &[ValueType::Span]).is_err());
    }

    #[test]
    fn header_only_is_valid_with_types() {
        let df = DataFrame::from_csv_typed("a,b\n", &[ValueType::Int, ValueType::Str]).unwrap();
        assert_eq!(df.num_rows(), 0);
        assert_eq!(df.num_columns(), 2);
    }
}
