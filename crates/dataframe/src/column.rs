//! Typed columns.

use spannerlib_core::{Span, Value, ValueType};
use std::sync::Arc;

/// A homogeneous column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// String column.
    Str(Vec<Arc<str>>),
    /// Span column.
    Span(Vec<Span>),
    /// Integer column.
    Int(Vec<i64>),
    /// Boolean column.
    Bool(Vec<bool>),
    /// Float column.
    Float(Vec<f64>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(t: ValueType) -> Column {
        match t {
            ValueType::Str => Column::Str(Vec::new()),
            ValueType::Span => Column::Span(Vec::new()),
            ValueType::Int => Column::Int(Vec::new()),
            ValueType::Bool => Column::Bool(Vec::new()),
            ValueType::Float => Column::Float(Vec::new()),
        }
    }

    /// The column's element type.
    pub fn value_type(&self) -> ValueType {
        match self {
            Column::Str(_) => ValueType::Str,
            Column::Span(_) => ValueType::Span,
            Column::Int(_) => ValueType::Int,
            Column::Bool(_) => ValueType::Bool,
            Column::Float(_) => ValueType::Float,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Str(v) => v.len(),
            Column::Span(v) => v.len(),
            Column::Int(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Float(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at row `i`, if in bounds.
    pub fn get(&self, i: usize) -> Option<Value> {
        match self {
            Column::Str(v) => v.get(i).map(|s| Value::Str(s.clone())),
            Column::Span(v) => v.get(i).map(|s| Value::Span(*s)),
            Column::Int(v) => v.get(i).map(|x| Value::Int(*x)),
            Column::Bool(v) => v.get(i).map(|x| Value::Bool(*x)),
            Column::Float(v) => v.get(i).map(|x| Value::Float(*x)),
        }
    }

    /// Appends a value; returns `false` (without modifying the column)
    /// when the value's type does not match.
    pub fn push(&mut self, value: Value) -> bool {
        match (self, value) {
            (Column::Str(v), Value::Str(s)) => v.push(s),
            (Column::Span(v), Value::Span(s)) => v.push(s),
            (Column::Int(v), Value::Int(x)) => v.push(x),
            (Column::Bool(v), Value::Bool(x)) => v.push(x),
            (Column::Float(v), Value::Float(x)) => v.push(x),
            _ => return false,
        }
        true
    }

    /// A new column keeping only the rows whose indices appear in `keep`,
    /// in the given order.
    pub fn take(&self, keep: &[usize]) -> Column {
        match self {
            Column::Str(v) => Column::Str(keep.iter().map(|&i| v[i].clone()).collect()),
            Column::Span(v) => Column::Span(keep.iter().map(|&i| v[i]).collect()),
            Column::Int(v) => Column::Int(keep.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(keep.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(keep.iter().map(|&i| v[i]).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_core::DocId;

    #[test]
    fn push_enforces_type() {
        let mut c = Column::empty(ValueType::Int);
        assert!(c.push(Value::Int(1)));
        assert!(!c.push(Value::str("no")));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn get_round_trips() {
        let mut c = Column::empty(ValueType::Str);
        c.push(Value::str("hello"));
        assert_eq!(c.get(0), Some(Value::str("hello")));
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn span_column() {
        let mut c = Column::empty(ValueType::Span);
        let s = Span::new(DocId::from_index(0), 1, 4);
        assert!(c.push(Value::Span(s)));
        assert_eq!(c.get(0), Some(Value::Span(s)));
        assert_eq!(c.value_type(), ValueType::Span);
    }

    #[test]
    fn take_reorders() {
        let mut c = Column::empty(ValueType::Int);
        for i in 0..5 {
            c.push(Value::Int(i));
        }
        let t = c.take(&[4, 0, 2]);
        assert_eq!(t.get(0), Some(Value::Int(4)));
        assert_eq!(t.get(1), Some(Value::Int(0)));
        assert_eq!(t.get(2), Some(Value::Int(2)));
        assert_eq!(t.len(), 3);
    }
}
