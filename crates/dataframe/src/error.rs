//! Error type for DataFrame operations.

use spannerlib_core::ValueType;
use thiserror::Error;

/// Errors raised by frame construction and manipulation.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Column lengths diverge (every column must have the same row count).
    #[error("ragged frame: column {column:?} has {actual} rows, expected {expected}")]
    RaggedColumns {
        /// Name of the offending column.
        column: String,
        /// Its row count.
        actual: usize,
        /// The frame's row count.
        expected: usize,
    },

    /// A value of the wrong type was pushed into a typed column.
    #[error("type mismatch in column {column:?}: expected {expected}, got {actual}")]
    TypeMismatch {
        /// Name of the column.
        column: String,
        /// The column's type.
        expected: ValueType,
        /// The value's type.
        actual: ValueType,
    },

    /// A row's arity does not match the frame's column count.
    #[error("row arity {actual} does not match {expected} columns")]
    ArityMismatch {
        /// Number of columns in the frame.
        expected: usize,
        /// Number of values in the row.
        actual: usize,
    },

    /// Reference to a column name that does not exist.
    #[error("no such column: {0:?}")]
    NoSuchColumn(String),

    /// Two columns share a name.
    #[error("duplicate column name: {0:?}")]
    DuplicateColumn(String),

    /// CSV text that cannot be parsed.
    #[error("csv parse error at line {line}: {msg}")]
    Csv {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        msg: String,
    },

    /// A frame with zero columns cannot hold rows.
    #[error("operation requires at least one column")]
    NoColumns,

    /// A typed row conversion found a cell of the wrong type.
    #[error("cell {index}: expected {expected}, got {actual}")]
    CellType {
        /// Zero-based cell index within the row.
        index: usize,
        /// Type the host-side conversion expects.
        expected: ValueType,
        /// Runtime type of the value.
        actual: ValueType,
    },
}
