//! Spans: the positional primitive of document spanners.
//!
//! A span ⟨d, i, j⟩ designates the substring `d[i..j]` of document `d`.
//! The paper (§2) defines spans with 1-based inclusive bounds but its own
//! worked example uses 0-based half-open offsets (⟨d,0,1⟩ is the first
//! character); we follow the worked example and the universal Rust
//! convention: **0-based byte offsets, half-open `[start, end)`**.

use crate::doc::DocId;
use std::fmt;

/// A span ⟨d, i, j⟩: a reference to the substring `d[i..j]`.
///
/// Spans are plain value types — three machine words — and are ordered
/// lexicographically by `(doc, start, end)`, which makes relation output
/// deterministic. Offsets are byte offsets into the UTF-8 text; the
/// [`crate::DocumentStore`] validates character boundaries on creation when
/// the checked constructors are used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Identifier of the document this span points into.
    pub doc: DocId,
    /// Byte offset of the first character of the spanned substring.
    pub start: u32,
    /// Byte offset one past the last character (exclusive bound).
    pub end: u32,
}

impl Span {
    /// Creates a span without validating offsets against a document.
    ///
    /// Use [`crate::DocumentStore::span`] for the checked variant.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` — such a triple is not a span under any
    /// document.
    pub fn new(doc: DocId, start: usize, end: usize) -> Self {
        assert!(start <= end, "span start {start} must not exceed end {end}");
        Span {
            doc,
            start: start as u32,
            end: end as u32,
        }
    }

    /// Length of the spanned substring in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span is empty (`start == end`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `self` fully contains `other` (same document, enclosing
    /// offsets). Containment is reflexive: every span contains itself.
    pub fn contains(&self, other: &Span) -> bool {
        self.doc == other.doc && self.start <= other.start && other.end <= self.end
    }

    /// Whether `self` and `other` overlap in at least one position.
    ///
    /// Touching spans (`a.end == b.start`) do *not* overlap; an empty span
    /// never overlaps anything.
    pub fn overlaps(&self, other: &Span) -> bool {
        // Empty spans cover no position, so they cannot share one.
        !self.is_empty()
            && !other.is_empty()
            && self.doc == other.doc
            && self.start < other.end
            && other.start < self.end
    }

    /// Whether `self` ends strictly before `other` starts (same document).
    pub fn precedes(&self, other: &Span) -> bool {
        self.doc == other.doc && self.end <= other.start
    }

    /// The start offset as `usize` (convenience for slicing).
    pub fn start_usize(&self) -> usize {
        self.start as usize
    }

    /// The end offset as `usize` (convenience for slicing).
    pub fn end_usize(&self) -> usize {
        self.end as usize
    }

    /// Extracts the spanned substring from `text`.
    ///
    /// `text` must be the document the span was created over; this is the
    /// unchecked convenience used when the caller already holds the text.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are out of bounds or split a UTF-8 character.
    pub fn slice<'t>(&self, text: &'t str) -> &'t str {
        &text[self.start_usize()..self.end_usize()]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The display form mirrors the paper's ⟨d, i, j⟩ notation, with the
        // document elided to its id: `[3, 7)@d0`.
        write!(f, "[{}, {})@d{}", self.start, self.end, self.doc.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DocId {
        DocId::from_index(i)
    }

    #[test]
    fn len_and_empty() {
        let s = Span::new(d(0), 2, 5);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Span::new(d(0), 4, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn reversed_span_panics() {
        let _ = Span::new(d(0), 5, 2);
    }

    #[test]
    fn containment_is_reflexive_and_directional() {
        let outer = Span::new(d(0), 0, 10);
        let inner = Span::new(d(0), 3, 7);
        assert!(outer.contains(&outer));
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
    }

    #[test]
    fn containment_requires_same_document() {
        let a = Span::new(d(0), 0, 10);
        let b = Span::new(d(1), 3, 7);
        assert!(!a.contains(&b));
    }

    #[test]
    fn overlap_excludes_touching() {
        let a = Span::new(d(0), 0, 5);
        let b = Span::new(d(0), 5, 9);
        let c = Span::new(d(0), 4, 6);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn empty_span_never_overlaps() {
        let e = Span::new(d(0), 3, 3);
        let a = Span::new(d(0), 0, 10);
        assert!(!e.overlaps(&a));
        assert!(!a.overlaps(&e));
        // ...but a surrounding span still *contains* the empty span.
        assert!(a.contains(&e));
    }

    #[test]
    fn precedes_is_strict() {
        let a = Span::new(d(0), 0, 3);
        let b = Span::new(d(0), 3, 6);
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
    }

    #[test]
    fn slice_extracts_substring() {
        let text = "acb aacccbbb";
        // The paper's §2 example: x bound to [4,6) maps to "aa".
        assert_eq!(Span::new(d(0), 4, 6).slice(text), "aa");
        assert_eq!(Span::new(d(0), 9, 12).slice(text), "bbb");
    }

    #[test]
    fn ordering_is_doc_start_end() {
        let mut spans = vec![
            Span::new(d(1), 0, 1),
            Span::new(d(0), 5, 9),
            Span::new(d(0), 5, 7),
            Span::new(d(0), 2, 3),
        ];
        spans.sort();
        assert_eq!(
            spans,
            vec![
                Span::new(d(0), 2, 3),
                Span::new(d(0), 5, 7),
                Span::new(d(0), 5, 9),
                Span::new(d(1), 0, 1),
            ]
        );
    }

    #[test]
    fn display_format() {
        let s = Span::new(d(2), 1, 4);
        assert_eq!(s.to_string(), "[1, 4)@d2");
    }
}
