//! # spannerlib-core
//!
//! Core value model shared by every crate in the spannerlib workspace.
//!
//! Document spanners (Fagin et al., *J. ACM* 2015) cast information
//! extraction as relational querying over **strings** and **spans**. This
//! crate provides the shared vocabulary for that model:
//!
//! * [`Span`] — a triple ⟨d, i, j⟩ locating the substring `d[i..j]` of a
//!   document `d` (0-based byte offsets, half-open, matching the convention
//!   of the paper's worked example in §2);
//! * [`DocumentStore`] / [`DocId`] — interned document texts, so spans stay
//!   three machine words and identical texts share one id;
//! * [`Value`] — the dynamically-typed cell of a Spannerlog relation
//!   (string, span, int, bool, float) with a *total* order so relations can
//!   be sorted deterministically;
//! * [`Relation`] / [`Tuple`] — set-semantics relations over a [`Schema`];
//! * [`CoreError`] — shared error type.
//!
//! Everything higher in the stack (the regex-formula engine, the Spannerlog
//! parser and engine, the DataFrame bridge) speaks in these types.

pub mod doc;
pub mod error;
pub mod relation;
pub mod schema;
pub mod span;
pub mod tuple;
pub mod value;

pub use doc::{CompactionReport, DocId, DocShard, DocumentStore};
pub use error::CoreError;
pub use relation::Relation;
pub use schema::{Schema, ValueType};
pub use span::Span;
pub use tuple::Tuple;
pub use value::Value;
