//! Relation schemas.
//!
//! A schema in the paper (§2) is "a sequence of types, where each type is
//! either *str* or *span*"; the implementation additionally supports the
//! numeric primitives the paper mentions as a natural extension.

use std::fmt;
use std::str::FromStr;

/// The type of one relation column / one IE-function argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// A string.
    Str,
    /// A span over a document.
    Span,
    /// A 64-bit signed integer.
    Int,
    /// A boolean.
    Bool,
    /// A 64-bit float.
    Float,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueType::Str => "str",
            ValueType::Span => "span",
            ValueType::Int => "int",
            ValueType::Bool => "bool",
            ValueType::Float => "float",
        };
        f.write_str(name)
    }
}

impl FromStr for ValueType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "str" | "string" => Ok(ValueType::Str),
            "span" => Ok(ValueType::Span),
            "int" => Ok(ValueType::Int),
            "bool" => Ok(ValueType::Bool),
            "float" => Ok(ValueType::Float),
            other => Err(format!("unknown type name: {other:?}")),
        }
    }
}

/// An ordered sequence of column types.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    types: Vec<ValueType>,
}

impl Schema {
    /// Builds a schema from a list of column types.
    pub fn new(types: impl Into<Vec<ValueType>>) -> Self {
        Schema {
            types: types.into(),
        }
    }

    /// The empty (nullary) schema.
    pub fn empty() -> Self {
        Schema { types: Vec::new() }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.types.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The column types in order.
    pub fn types(&self) -> &[ValueType] {
        &self.types
    }

    /// The type of column `i`, if it exists.
    pub fn column(&self, i: usize) -> Option<ValueType> {
        self.types.get(i).copied()
    }

    /// A new schema consisting of the columns selected by `indices`,
    /// in the order given.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            types: indices.iter().map(|&i| self.types[i]).collect(),
        }
    }

    /// Concatenates two schemas (used by joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut types = self.types.clone();
        types.extend_from_slice(&other.types);
        Schema { types }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.types.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<ValueType>> for Schema {
    fn from(types: Vec<ValueType>) -> Self {
        Schema { types }
    }
}

impl From<&[ValueType]> for Schema {
    fn from(types: &[ValueType]) -> Self {
        Schema {
            types: types.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_type_names() {
        assert_eq!("str".parse::<ValueType>().unwrap(), ValueType::Str);
        assert_eq!("string".parse::<ValueType>().unwrap(), ValueType::Str);
        assert_eq!("span".parse::<ValueType>().unwrap(), ValueType::Span);
        assert_eq!("int".parse::<ValueType>().unwrap(), ValueType::Int);
        assert!("spam".parse::<ValueType>().is_err());
    }

    #[test]
    fn display_round_trips_with_parse() {
        for t in [
            ValueType::Str,
            ValueType::Span,
            ValueType::Int,
            ValueType::Bool,
            ValueType::Float,
        ] {
            assert_eq!(t.to_string().parse::<ValueType>().unwrap(), t);
        }
    }

    #[test]
    fn arity_and_access() {
        let s = Schema::new(vec![ValueType::Str, ValueType::Span]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column(1), Some(ValueType::Span));
        assert_eq!(s.column(2), None);
    }

    #[test]
    fn projection_reorders_columns() {
        let s = Schema::new(vec![ValueType::Str, ValueType::Span, ValueType::Int]);
        let p = s.project(&[2, 0]);
        assert_eq!(p.types(), &[ValueType::Int, ValueType::Str]);
    }

    #[test]
    fn concat_appends() {
        let a = Schema::new(vec![ValueType::Str]);
        let b = Schema::new(vec![ValueType::Int, ValueType::Bool]);
        assert_eq!(
            a.concat(&b).types(),
            &[ValueType::Str, ValueType::Int, ValueType::Bool]
        );
    }

    #[test]
    fn schema_display() {
        let s = Schema::new(vec![ValueType::Str, ValueType::Span]);
        assert_eq!(s.to_string(), "(str, span)");
        assert_eq!(Schema::empty().to_string(), "()");
    }
}
