//! Shared error type for the core value model.

use crate::schema::ValueType;
use thiserror::Error;

/// Errors raised by the core value model.
#[derive(Debug, Error, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A span's offsets do not satisfy `start <= end <= doc.len()`, or they
    /// fall outside UTF-8 character boundaries of the document.
    #[error("invalid span [{start}, {end}) over document of length {doc_len}")]
    InvalidSpan {
        /// Byte offset of the span start.
        start: usize,
        /// Byte offset of the span end (exclusive).
        end: usize,
        /// Length of the target document in bytes.
        doc_len: usize,
    },

    /// A [`crate::DocId`] that does not belong to the store it was resolved
    /// against.
    #[error("unknown document id {0}")]
    UnknownDoc(u32),

    /// A tuple's arity does not match the relation schema arity.
    #[error("arity mismatch: schema has {expected} columns but tuple has {actual}")]
    ArityMismatch {
        /// Number of columns declared by the schema.
        expected: usize,
        /// Number of values in the offending tuple.
        actual: usize,
    },

    /// A tuple value's type does not match the schema column type.
    #[error("type mismatch in column {column}: expected {expected}, got {actual}")]
    TypeMismatch {
        /// Zero-based column index.
        column: usize,
        /// Type declared by the schema.
        expected: ValueType,
        /// Type of the value actually supplied.
        actual: ValueType,
    },
}
