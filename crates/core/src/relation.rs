//! Relations: typed sets of tuples.
//!
//! Spannerlog semantics is pure set semantics — derivation order never
//! produces duplicates — so the backing store is a hash set. Export paths
//! ([`Relation::sorted_tuples`]) sort so output is deterministic.

use crate::error::CoreError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use rustc_hash::FxHashSet;
use std::fmt;

/// A set of tuples conforming to a [`Schema`].
#[derive(Debug, Clone, Default)]
pub struct Relation {
    schema: Schema,
    tuples: FxHashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: FxHashSet::default(),
        }
    }

    /// Creates a relation and inserts `tuples`, checking each against the
    /// schema.
    pub fn from_tuples(
        schema: Schema,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, CoreError> {
        let mut rel = Relation::new(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple after validating it against the schema. Returns
    /// `true` when the tuple was new.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool, CoreError> {
        tuple.check_schema(&self.schema)?;
        Ok(self.tuples.insert(tuple))
    }

    /// Inserts a tuple that is already known to match the schema (hot path
    /// inside the engine, where rule heads are type-checked statically).
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert!(tuple.check_schema(&self.schema).is_ok());
        self.tuples.insert(tuple)
    }

    /// Whether the relation contains `tuple`.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Removes one tuple. Returns `true` when it was present (used by the
    /// engine to retract rule-derived tuples from relations that are also
    /// extensional, keeping host-asserted facts).
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        self.tuples.remove(tuple)
    }

    /// Iterates over tuples in arbitrary (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// All tuples, sorted lexicographically — the deterministic export
    /// order used by `Session::export` and the DataFrame bridge.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Set union with another relation of the same schema. Returns the
    /// number of tuples that were new.
    pub fn union_in_place(&mut self, other: &Relation) -> Result<usize, CoreError> {
        if other.schema != self.schema {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                actual: other.schema.arity(),
            });
        }
        let before = self.tuples.len();
        for t in other.iter() {
            self.tuples.insert(t.clone());
        }
        Ok(self.tuples.len() - before)
    }

    /// Tuples of `self` that are not in `other` (set difference); schemas
    /// must match.
    pub fn difference(&self, other: &Relation) -> Result<Relation, CoreError> {
        if other.schema != self.schema {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                actual: other.schema.arity(),
            });
        }
        let mut out = Relation::new(self.schema.clone());
        for t in self.iter() {
            if !other.contains(t) {
                out.tuples.insert(t.clone());
            }
        }
        Ok(out)
    }

    /// Removes all tuples, keeping the schema.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.len())?;
        for t in self.sorted_tuples() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;
    use crate::value::Value;

    fn int_schema(n: usize) -> Schema {
        Schema::new(vec![ValueType::Int; n])
    }

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(int_schema(1));
        assert!(r.insert(t(&[1])).unwrap());
        assert!(!r.insert(t(&[1])).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn insert_rejects_schema_violations() {
        let mut r = Relation::new(int_schema(2));
        assert!(r.insert(t(&[1])).is_err());
        assert!(r
            .insert(Tuple::new([Value::str("a"), Value::Int(1)]))
            .is_err());
    }

    #[test]
    fn remove_retracts_present_tuples_only() {
        let mut r = Relation::from_tuples(int_schema(1), [t(&[1]), t(&[2])]).unwrap();
        assert!(r.remove(&t(&[1])));
        assert!(!r.remove(&t(&[1])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&t(&[2])));
    }

    #[test]
    fn sorted_tuples_are_deterministic() {
        let mut r = Relation::new(int_schema(1));
        for v in [5, 1, 3, 2, 4] {
            r.insert(t(&[v])).unwrap();
        }
        let sorted: Vec<i64> = r
            .sorted_tuples()
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn union_counts_new_tuples() {
        let mut a = Relation::from_tuples(int_schema(1), [t(&[1]), t(&[2])]).unwrap();
        let b = Relation::from_tuples(int_schema(1), [t(&[2]), t(&[3])]).unwrap();
        assert_eq!(a.union_in_place(&b).unwrap(), 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn union_rejects_schema_mismatch() {
        let mut a = Relation::new(int_schema(1));
        let b = Relation::new(int_schema(2));
        assert!(a.union_in_place(&b).is_err());
    }

    #[test]
    fn difference_removes_shared() {
        let a = Relation::from_tuples(int_schema(1), [t(&[1]), t(&[2]), t(&[3])]).unwrap();
        let b = Relation::from_tuples(int_schema(1), [t(&[2])]).unwrap();
        let d = a.difference(&b).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&t(&[1])));
        assert!(!d.contains(&t(&[2])));
    }

    #[test]
    fn equality_is_set_equality() {
        let a = Relation::from_tuples(int_schema(1), [t(&[1]), t(&[2])]).unwrap();
        let b = Relation::from_tuples(int_schema(1), [t(&[2]), t(&[1])]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_lists_sorted() {
        let r = Relation::from_tuples(int_schema(1), [t(&[2]), t(&[1])]).unwrap();
        let s = r.to_string();
        let pos1 = s.find("(1)").unwrap();
        let pos2 = s.find("(2)").unwrap();
        assert!(pos1 < pos2);
    }
}
