//! The dynamically-typed cell of a Spannerlog relation.
//!
//! The paper restricts the formal treatment to strings and spans (§2) and
//! notes that "IE functions can be extended to handle other primitives
//! (e.g., numbers)"; the shipped system supports them, and so do we:
//! [`Value`] covers strings, spans, 64-bit integers, booleans, and floats.
//!
//! Relations are *sets* that must be sortable for deterministic export, so
//! `Value` implements a **total** order (floats are ordered by
//! `f64::total_cmp`, and values of different types order by a fixed type
//! rank).

use crate::schema::ValueType;
use crate::span::Span;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single cell value in a relation.
#[derive(Debug, Clone)]
pub enum Value {
    /// A string. Shared via `Arc` so copying tuples through joins is cheap.
    Str(Arc<str>),
    /// A span ⟨d, i, j⟩ into an interned document.
    Span(Span),
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A 64-bit float, totally ordered via `total_cmp`.
    Float(f64),
}

impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Str(_) => ValueType::Str,
            Value::Span(_) => ValueType::Span,
            Value::Int(_) => ValueType::Int,
            Value::Bool(_) => ValueType::Bool,
            Value::Float(_) => ValueType::Float,
        }
    }

    /// Returns the string content if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the span if this is a `Span`.
    pub fn as_span(&self) -> Option<&Span> {
        match self {
            Value::Span(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Rank used to order values of different types; stable across runs.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Str(_) => 0,
            Value::Span(_) => 1,
            Value::Int(_) => 2,
            Value::Bool(_) => 3,
            Value::Float(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Span(a), Value::Span(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // Bit-level equality keeps Eq/Hash consistent (NaN == NaN here,
            // which is what set semantics needs, not IEEE semantics).
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.type_rank());
        match self {
            Value::Str(s) => s.hash(state),
            Value::Span(s) => s.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Span(a), Value::Span(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "\"{}\"", s),
            Value::Span(s) => write!(f, "{}", s),
            Value::Int(i) => write!(f, "{}", i),
            Value::Bool(b) => write!(f, "{}", b),
            Value::Float(x) => write!(f, "{}", x),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

impl From<Span> for Value {
    fn from(s: Span) -> Self {
        Value::Span(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::DocId;

    #[test]
    fn type_introspection() {
        assert_eq!(Value::str("a").value_type(), ValueType::Str);
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::Bool(true).value_type(), ValueType::Bool);
        assert_eq!(Value::Float(1.5).value_type(), ValueType::Float);
        let s = Span::new(DocId::from_index(0), 0, 1);
        assert_eq!(Value::Span(s).value_type(), ValueType::Span);
    }

    #[test]
    fn accessors_return_only_matching_variant() {
        let v = Value::str("x");
        assert_eq!(v.as_str(), Some("x"));
        assert_eq!(v.as_int(), None);
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::Float(2.0).as_float(), Some(2.0));
    }

    #[test]
    fn nan_is_self_equal_under_set_semantics() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
    }

    #[test]
    fn float_total_order_handles_nan_and_zero() {
        let mut values = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(f64::NEG_INFINITY),
        ];
        values.sort();
        // total_cmp: -inf < -0.0 < 0.0 < 1.0 < NaN
        assert_eq!(values[0], Value::Float(f64::NEG_INFINITY));
        assert_eq!(values[3], Value::Float(1.0));
        assert!(matches!(values[4], Value::Float(x) if x.is_nan()));
    }

    #[test]
    fn cross_type_order_is_stable() {
        let mut values = vec![Value::Int(0), Value::str("z"), Value::Bool(true)];
        values.sort();
        assert_eq!(
            values,
            vec![Value::str("z"), Value::Int(0), Value::Bool(true)]
        );
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::str("a b").to_string(), "\"a b\"");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions_from_host_types() {
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
    }
}
