//! Interned document storage.
//!
//! Spans must reference their document (the ⟨**d**, i, j⟩ of the paper), but
//! carrying an owned string in every span would make tuples heavyweight.
//! The [`DocumentStore`] interns each distinct document text once and hands
//! out copyable [`DocId`]s; spans then stay three machine words.
//!
//! Interning is content-based: importing the same text twice yields the
//! same id, so spans created independently over equal texts compare equal —
//! exactly the set semantics Spannerlog relations need.

use crate::error::CoreError;
use crate::span::Span;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Identifier of an interned document inside one [`DocumentStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(u32);

impl DocId {
    /// Builds a `DocId` from a raw index. Only meaningful together with the
    /// store that produced the index; exposed for tests and serialization.
    pub fn from_index(index: u32) -> Self {
        DocId(index)
    }

    /// The raw index of this id inside its store.
    pub fn index(&self) -> u32 {
        self.0
    }
}

/// Summary of one [`DocumentStore::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Epoch the store entered when this pass finished.
    pub epoch: u64,
    /// Documents tombstoned by this pass.
    pub removed_docs: usize,
    /// Documents still live after this pass.
    pub kept_docs: usize,
    /// Text bytes released by this pass.
    pub reclaimed_bytes: usize,
    /// Text bytes still resident after this pass.
    pub live_bytes: usize,
}

/// An interning store of document texts.
///
/// The store is append-only between compactions: interning never moves or
/// reuses an id, so `DocId`s held by spans stay valid. Long-lived sessions
/// can reclaim memory with [`DocumentStore::compact`], which *tombstones*
/// documents no longer referenced: the slot's text is dropped (and its
/// content-hash entry removed, so re-interning equal text mints a fresh
/// id) but the slot itself is never reused — a stale id resolves to a loud
/// [`CoreError::UnknownDoc`] instead of silently aliasing new content.
/// Each pass bumps the store's **epoch**, which cache layers use to scope
/// the validity of derived artifacts.
///
/// Texts are held behind [`Arc<str>`] so resolving is cheap and resolved
/// texts can outlive a borrow of the store.
#[derive(Debug, Default, Clone)]
pub struct DocumentStore {
    /// `None` = tombstoned by a compaction pass.
    texts: Vec<Option<Arc<str>>>,
    by_content: FxHashMap<Arc<str>, DocId>,
    /// Text bytes of live (non-tombstoned) documents.
    live_bytes: usize,
    /// Number of compaction passes this store has gone through.
    epoch: u64,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-tombstoned) documents.
    pub fn len(&self) -> usize {
        self.by_content.len()
    }

    /// Whether the store holds no live documents.
    pub fn is_empty(&self) -> bool {
        self.by_content.is_empty()
    }

    /// Total text bytes of live documents — the dominant memory cost of
    /// the store (slot and hash-map overhead is a few machine words per
    /// document).
    pub fn bytes(&self) -> usize {
        self.live_bytes
    }

    /// Number of compaction passes this store has gone through. Bumped by
    /// every [`DocumentStore::compact`] call.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total slots ever allocated, including tombstones (monotone; equals
    /// the next fresh id's index).
    pub fn slots(&self) -> usize {
        self.texts.len()
    }

    /// Interns `text`, returning its id. Repeated calls with equal content
    /// return the same id without storing a second copy.
    pub fn intern(&mut self, text: &str) -> DocId {
        if let Some(&id) = self.by_content.get(text) {
            return id;
        }
        self.push_new(Arc::from(text))
    }

    /// Interns an already-shared text without copying when it is new.
    pub fn intern_arc(&mut self, text: Arc<str>) -> DocId {
        if let Some(&id) = self.by_content.get(text.as_ref()) {
            return id;
        }
        self.push_new(text)
    }

    fn push_new(&mut self, text: Arc<str>) -> DocId {
        let id = DocId(self.texts.len() as u32);
        self.live_bytes += text.len();
        self.texts.push(Some(text.clone()));
        self.by_content.insert(text, id);
        id
    }

    /// Looks up the id of `text` without interning it.
    pub fn lookup(&self, text: &str) -> Option<DocId> {
        self.by_content.get(text).copied()
    }

    /// Resolves an id to its text. Unknown *and tombstoned* ids are
    /// errors — a compacted document is gone, not aliased.
    pub fn resolve(&self, id: DocId) -> Result<&Arc<str>, CoreError> {
        self.texts
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(CoreError::UnknownDoc(id.0))
    }

    /// Resolves an id to its text, panicking on an unknown or tombstoned
    /// id.
    ///
    /// Ids are only minted by this store's `intern*` methods and
    /// compaction only tombstones unreferenced documents, so inside one
    /// engine instance the panic is unreachable; use [`Self::resolve`]
    /// when handling ids of untrusted provenance.
    pub fn text(&self, id: DocId) -> &str {
        self.texts[id.0 as usize]
            .as_deref()
            .expect("document was tombstoned by compaction")
    }

    /// Tombstones every document for which `live` returns `false`,
    /// dropping its text and freeing its content-hash entry, and bumps
    /// the store's epoch. Ids of surviving documents are unchanged; ids
    /// of removed documents become permanently invalid (resolving them
    /// errors — slots are never reused).
    ///
    /// The caller is responsible for passing a `live` predicate that
    /// covers *every* id still reachable from its data structures (the
    /// engine marks spans in all relations plus IE-memo entries).
    pub fn compact(&mut self, live: impl Fn(DocId) -> bool) -> CompactionReport {
        let mut removed_docs = 0;
        let mut reclaimed_bytes = 0;
        for (i, slot) in self.texts.iter_mut().enumerate() {
            let id = DocId(i as u32);
            if let Some(text) = slot {
                if !live(id) {
                    removed_docs += 1;
                    reclaimed_bytes += text.len();
                    self.by_content.remove(text.as_ref() as &str);
                    *slot = None;
                }
            }
        }
        self.live_bytes -= reclaimed_bytes;
        self.epoch += 1;
        CompactionReport {
            epoch: self.epoch,
            removed_docs,
            kept_docs: self.by_content.len(),
            reclaimed_bytes,
            live_bytes: self.live_bytes,
        }
    }

    /// Creates a *checked* span over document `id`: offsets must be in
    /// bounds and on UTF-8 character boundaries.
    pub fn span(&self, id: DocId, start: usize, end: usize) -> Result<Span, CoreError> {
        let text = self.resolve(id)?;
        let invalid = CoreError::InvalidSpan {
            start,
            end,
            doc_len: text.len(),
        };
        if start > end || end > text.len() {
            return Err(invalid);
        }
        if !text.is_char_boundary(start) || !text.is_char_boundary(end) {
            return Err(invalid);
        }
        Ok(Span::new(id, start, end))
    }

    /// Resolves a span to its substring.
    pub fn span_text(&self, span: &Span) -> Result<&str, CoreError> {
        let text = self.resolve(span.doc)?;
        let (start, end) = (span.start_usize(), span.end_usize());
        if end > text.len() || !text.is_char_boundary(start) || !text.is_char_boundary(end) {
            return Err(CoreError::InvalidSpan {
                start,
                end,
                doc_len: text.len(),
            });
        }
        Ok(&text[start..end])
    }

    /// Iterates over live `(id, text)` pairs in interning order
    /// (tombstoned slots are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Arc<str>)> {
        self.texts
            .iter()
            .enumerate()
            .filter_map(|(i, t)| Some((DocId(i as u32), t.as_ref()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut store = DocumentStore::new();
        let a = store.intern("hello");
        let b = store.intern("world");
        let c = store.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut store = DocumentStore::new();
        let id = store.intern("some text");
        assert_eq!(store.text(id), "some text");
        assert_eq!(store.resolve(id).unwrap().as_ref(), "some text");
    }

    #[test]
    fn unknown_doc_is_an_error() {
        let store = DocumentStore::new();
        assert_eq!(
            store.resolve(DocId::from_index(7)).unwrap_err(),
            CoreError::UnknownDoc(7)
        );
    }

    #[test]
    fn checked_span_rejects_out_of_bounds() {
        let mut store = DocumentStore::new();
        let id = store.intern("abc");
        assert!(store.span(id, 0, 3).is_ok());
        assert!(store.span(id, 0, 4).is_err());
        assert!(store.span(id, 2, 1).is_err());
    }

    #[test]
    fn checked_span_rejects_non_char_boundaries() {
        let mut store = DocumentStore::new();
        let id = store.intern("héllo"); // 'é' is two bytes: offsets 1..3
        assert!(store.span(id, 1, 3).is_ok());
        assert!(store.span(id, 1, 2).is_err());
        assert!(store.span(id, 2, 3).is_err());
    }

    #[test]
    fn span_text_resolves_substring() {
        let mut store = DocumentStore::new();
        let id = store.intern("acb aacccbbb");
        let span = store.span(id, 4, 6).unwrap();
        assert_eq!(store.span_text(&span).unwrap(), "aa");
    }

    #[test]
    fn intern_arc_shares_existing_entry() {
        let mut store = DocumentStore::new();
        let a = store.intern("shared");
        let b = store.intern_arc(Arc::from("shared"));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut store = DocumentStore::new();
        store.intern("x");
        store.intern("y");
        let collected: Vec<_> = store
            .iter()
            .map(|(id, t)| (id.index(), t.to_string()))
            .collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn lookup_without_interning() {
        let mut store = DocumentStore::new();
        assert_eq!(store.lookup("a"), None);
        let id = store.intern("a");
        assert_eq!(store.lookup("a"), Some(id));
    }

    #[test]
    fn bytes_track_live_text() {
        let mut store = DocumentStore::new();
        assert_eq!(store.bytes(), 0);
        store.intern("12345");
        store.intern("678");
        // Duplicate interning does not double-count.
        store.intern("12345");
        assert_eq!(store.bytes(), 8);
    }

    #[test]
    fn compact_tombstones_dead_docs_and_bumps_epoch() {
        let mut store = DocumentStore::new();
        let keep = store.intern("keep me");
        let drop = store.intern("drop me");
        assert_eq!(store.epoch(), 0);

        let report = store.compact(|id| id == keep);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.removed_docs, 1);
        assert_eq!(report.kept_docs, 1);
        assert_eq!(report.reclaimed_bytes, "drop me".len());
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), "keep me".len());

        // Survivor resolves at its old id; the tombstone errors loudly.
        assert_eq!(store.text(keep), "keep me");
        assert_eq!(
            store.resolve(drop).unwrap_err(),
            CoreError::UnknownDoc(drop.index())
        );
        assert_eq!(store.lookup("drop me"), None);
    }

    #[test]
    fn reinterning_after_compaction_mints_a_fresh_id() {
        let mut store = DocumentStore::new();
        let old = store.intern("text");
        store.compact(|_| false);
        let new = store.intern("text");
        // The slot is never reused: old spans cannot alias new content.
        assert_ne!(old, new);
        assert_eq!(new.index() as usize, store.slots() - 1);
        assert!(store.resolve(old).is_err());
        assert_eq!(store.text(new), "text");
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut store = DocumentStore::new();
        store.intern("a");
        let b = store.intern("b");
        store.intern("c");
        store.compact(|id| id != b);
        let texts: Vec<String> = store.iter().map(|(_, t)| t.to_string()).collect();
        assert_eq!(texts, vec!["a".to_string(), "c".to_string()]);
    }
}
