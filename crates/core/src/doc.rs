//! Interned document storage.
//!
//! Spans must reference their document (the ⟨**d**, i, j⟩ of the paper), but
//! carrying an owned string in every span would make tuples heavyweight.
//! The [`DocumentStore`] interns each distinct document text once and hands
//! out copyable [`DocId`]s; spans then stay three machine words.
//!
//! Interning is content-based: importing the same text twice yields the
//! same id, so spans created independently over equal texts compare equal —
//! exactly the set semantics Spannerlog relations need.

use crate::error::CoreError;
use crate::span::Span;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Identifier of an interned document inside one [`DocumentStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(u32);

impl DocId {
    /// Builds a `DocId` from a raw index. Only meaningful together with the
    /// store that produced the index; exposed for tests and serialization.
    pub fn from_index(index: u32) -> Self {
        DocId(index)
    }

    /// The raw index of this id inside its store.
    pub fn index(&self) -> u32 {
        self.0
    }
}

/// Summary of one [`DocumentStore::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Epoch the store entered when this pass finished.
    pub epoch: u64,
    /// Documents tombstoned by this pass.
    pub removed_docs: usize,
    /// Documents still live after this pass.
    pub kept_docs: usize,
    /// Text bytes released by this pass.
    pub reclaimed_bytes: usize,
    /// Text bytes still resident after this pass.
    pub live_bytes: usize,
}

/// An interning store of document texts.
///
/// The store is append-only between compactions: interning never moves or
/// reuses an id, so `DocId`s held by spans stay valid. Long-lived sessions
/// can reclaim memory with [`DocumentStore::compact`], which *tombstones*
/// documents no longer referenced: the slot's text is dropped (and its
/// content-hash entry removed, so re-interning equal text mints a fresh
/// id) but the slot itself is never reused — a stale id resolves to a loud
/// [`CoreError::UnknownDoc`] instead of silently aliasing new content.
/// Each pass bumps the store's **epoch**, which cache layers use to scope
/// the validity of derived artifacts.
///
/// Texts are held behind [`Arc<str>`] so resolving is cheap and resolved
/// texts can outlive a borrow of the store.
#[derive(Debug, Default, Clone)]
pub struct DocumentStore {
    /// `None` = tombstoned by a compaction pass.
    texts: Vec<Option<Arc<str>>>,
    by_content: FxHashMap<Arc<str>, DocId>,
    /// Text bytes of live (non-tombstoned) documents.
    live_bytes: usize,
    /// Number of compaction passes this store has gone through.
    epoch: u64,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-tombstoned) documents.
    pub fn len(&self) -> usize {
        self.by_content.len()
    }

    /// Whether the store holds no live documents.
    pub fn is_empty(&self) -> bool {
        self.by_content.is_empty()
    }

    /// Total text bytes of live documents — the dominant memory cost of
    /// the store (slot and hash-map overhead is a few machine words per
    /// document).
    pub fn bytes(&self) -> usize {
        self.live_bytes
    }

    /// Number of compaction passes this store has gone through. Bumped by
    /// every [`DocumentStore::compact`] call.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total slots ever allocated, including tombstones (monotone; equals
    /// the next fresh id's index).
    pub fn slots(&self) -> usize {
        self.texts.len()
    }

    /// Interns `text`, returning its id. Repeated calls with equal content
    /// return the same id without storing a second copy.
    pub fn intern(&mut self, text: &str) -> DocId {
        if let Some(&id) = self.by_content.get(text) {
            return id;
        }
        self.push_new(Arc::from(text))
    }

    /// Interns an already-shared text without copying when it is new.
    pub fn intern_arc(&mut self, text: Arc<str>) -> DocId {
        if let Some(&id) = self.by_content.get(text.as_ref()) {
            return id;
        }
        self.push_new(text)
    }

    fn push_new(&mut self, text: Arc<str>) -> DocId {
        let id = DocId(self.texts.len() as u32);
        self.live_bytes += text.len();
        self.texts.push(Some(text.clone()));
        self.by_content.insert(text, id);
        id
    }

    /// Looks up the id of `text` without interning it.
    pub fn lookup(&self, text: &str) -> Option<DocId> {
        self.by_content.get(text).copied()
    }

    /// Resolves an id to its text. Unknown *and tombstoned* ids are
    /// errors — a compacted document is gone, not aliased.
    pub fn resolve(&self, id: DocId) -> Result<&Arc<str>, CoreError> {
        self.texts
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(CoreError::UnknownDoc(id.0))
    }

    /// Resolves an id to its text, panicking on an unknown or tombstoned
    /// id.
    ///
    /// Ids are only minted by this store's `intern*` methods and
    /// compaction only tombstones unreferenced documents, so inside one
    /// engine instance the panic is unreachable; use [`Self::resolve`]
    /// when handling ids of untrusted provenance.
    pub fn text(&self, id: DocId) -> &str {
        self.texts[id.0 as usize]
            .as_deref()
            .expect("document was tombstoned by compaction")
    }

    /// Tombstones every document for which `live` returns `false`,
    /// dropping its text and freeing its content-hash entry, and bumps
    /// the store's epoch. Ids of surviving documents are unchanged; ids
    /// of removed documents become permanently invalid (resolving them
    /// errors — slots are never reused).
    ///
    /// The caller is responsible for passing a `live` predicate that
    /// covers *every* id still reachable from its data structures (the
    /// engine marks spans in all relations plus IE-memo entries).
    pub fn compact(&mut self, live: impl Fn(DocId) -> bool) -> CompactionReport {
        let mut removed_docs = 0;
        let mut reclaimed_bytes = 0;
        for (i, slot) in self.texts.iter_mut().enumerate() {
            let id = DocId(i as u32);
            if let Some(text) = slot {
                if !live(id) {
                    removed_docs += 1;
                    reclaimed_bytes += text.len();
                    self.by_content.remove(text.as_ref() as &str);
                    *slot = None;
                }
            }
        }
        self.live_bytes -= reclaimed_bytes;
        self.epoch += 1;
        CompactionReport {
            epoch: self.epoch,
            removed_docs,
            kept_docs: self.by_content.len(),
            reclaimed_bytes,
            live_bytes: self.live_bytes,
        }
    }

    /// Creates a *checked* span over document `id`: offsets must be in
    /// bounds and on UTF-8 character boundaries.
    pub fn span(&self, id: DocId, start: usize, end: usize) -> Result<Span, CoreError> {
        let text = self.resolve(id)?;
        let invalid = CoreError::InvalidSpan {
            start,
            end,
            doc_len: text.len(),
        };
        if start > end || end > text.len() {
            return Err(invalid);
        }
        if !text.is_char_boundary(start) || !text.is_char_boundary(end) {
            return Err(invalid);
        }
        Ok(Span::new(id, start, end))
    }

    /// Resolves a span to its substring.
    pub fn span_text(&self, span: &Span) -> Result<&str, CoreError> {
        let text = self.resolve(span.doc)?;
        let (start, end) = (span.start_usize(), span.end_usize());
        if end > text.len() || !text.is_char_boundary(start) || !text.is_char_boundary(end) {
            return Err(CoreError::InvalidSpan {
                start,
                end,
                doc_len: text.len(),
            });
        }
        Ok(&text[start..end])
    }

    /// Iterates over live `(id, text)` pairs in interning order
    /// (tombstoned slots are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Arc<str>)> {
        self.texts
            .iter()
            .enumerate()
            .filter_map(|(i, t)| Some((DocId(i as u32), t.as_ref()?)))
    }

    /// Partitions the store into at most `n` contiguous shards of live
    /// documents, balanced by **text bytes** rather than by document
    /// count — one giant note must not ride along with a full share of
    /// small ones. Shards cover disjoint, ascending slot ranges (stable
    /// doc-id order, so parallel per-shard results merge
    /// deterministically) and tombstoned slots contribute nothing.
    ///
    /// Fewer than `n` shards come back when the store has fewer live
    /// documents — a single document is never split.
    pub fn shards(&self, n: usize) -> Vec<DocShard> {
        let mut shards = Vec::new();
        if n == 0 || self.by_content.is_empty() {
            return shards;
        }
        let target = self.live_bytes.div_ceil(n).max(1);
        let mut current: Option<DocShard> = None;
        for (i, slot) in self.texts.iter().enumerate() {
            let Some(text) = slot else { continue };
            let weight = text.len().max(1);
            match current.as_mut() {
                // Close a shard once it has met its byte share — unless
                // doing so would mint more than `n` shards total.
                Some(shard) if shard.bytes + weight > target && shards.len() + 1 < n => {
                    shards.push(current.take().expect("shard is live"));
                }
                _ => {}
            }
            let shard = current.get_or_insert(DocShard {
                start_slot: i,
                end_slot: i,
                docs: 0,
                bytes: 0,
            });
            shard.end_slot = i + 1;
            shard.docs += 1;
            shard.bytes += weight;
        }
        if let Some(shard) = current {
            shards.push(shard);
        }
        shards
    }
}

/// One contiguous slice of a [`DocumentStore`], produced by
/// [`DocumentStore::shards`]. Identifies documents by their slot range
/// so a span's `DocId` maps to its shard with a binary search over
/// `start_slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocShard {
    /// First slot of the range (inclusive). May point at a tombstone;
    /// only live slots in the range belong to the shard.
    pub start_slot: usize,
    /// One past the last slot of the range (exclusive).
    pub end_slot: usize,
    /// Live documents inside the range.
    pub docs: usize,
    /// Live text bytes inside the range (empty texts count 1 so that a
    /// store of empty documents still partitions).
    pub bytes: usize,
}

impl DocShard {
    /// Whether `id` falls in this shard's slot range.
    pub fn contains(&self, id: DocId) -> bool {
        let slot = id.index() as usize;
        self.start_slot <= slot && slot < self.end_slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut store = DocumentStore::new();
        let a = store.intern("hello");
        let b = store.intern("world");
        let c = store.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut store = DocumentStore::new();
        let id = store.intern("some text");
        assert_eq!(store.text(id), "some text");
        assert_eq!(store.resolve(id).unwrap().as_ref(), "some text");
    }

    #[test]
    fn unknown_doc_is_an_error() {
        let store = DocumentStore::new();
        assert_eq!(
            store.resolve(DocId::from_index(7)).unwrap_err(),
            CoreError::UnknownDoc(7)
        );
    }

    #[test]
    fn checked_span_rejects_out_of_bounds() {
        let mut store = DocumentStore::new();
        let id = store.intern("abc");
        assert!(store.span(id, 0, 3).is_ok());
        assert!(store.span(id, 0, 4).is_err());
        assert!(store.span(id, 2, 1).is_err());
    }

    #[test]
    fn checked_span_rejects_non_char_boundaries() {
        let mut store = DocumentStore::new();
        let id = store.intern("héllo"); // 'é' is two bytes: offsets 1..3
        assert!(store.span(id, 1, 3).is_ok());
        assert!(store.span(id, 1, 2).is_err());
        assert!(store.span(id, 2, 3).is_err());
    }

    #[test]
    fn span_text_resolves_substring() {
        let mut store = DocumentStore::new();
        let id = store.intern("acb aacccbbb");
        let span = store.span(id, 4, 6).unwrap();
        assert_eq!(store.span_text(&span).unwrap(), "aa");
    }

    #[test]
    fn intern_arc_shares_existing_entry() {
        let mut store = DocumentStore::new();
        let a = store.intern("shared");
        let b = store.intern_arc(Arc::from("shared"));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut store = DocumentStore::new();
        store.intern("x");
        store.intern("y");
        let collected: Vec<_> = store
            .iter()
            .map(|(id, t)| (id.index(), t.to_string()))
            .collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn lookup_without_interning() {
        let mut store = DocumentStore::new();
        assert_eq!(store.lookup("a"), None);
        let id = store.intern("a");
        assert_eq!(store.lookup("a"), Some(id));
    }

    #[test]
    fn bytes_track_live_text() {
        let mut store = DocumentStore::new();
        assert_eq!(store.bytes(), 0);
        store.intern("12345");
        store.intern("678");
        // Duplicate interning does not double-count.
        store.intern("12345");
        assert_eq!(store.bytes(), 8);
    }

    #[test]
    fn compact_tombstones_dead_docs_and_bumps_epoch() {
        let mut store = DocumentStore::new();
        let keep = store.intern("keep me");
        let drop = store.intern("drop me");
        assert_eq!(store.epoch(), 0);

        let report = store.compact(|id| id == keep);
        assert_eq!(report.epoch, 1);
        assert_eq!(report.removed_docs, 1);
        assert_eq!(report.kept_docs, 1);
        assert_eq!(report.reclaimed_bytes, "drop me".len());
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes(), "keep me".len());

        // Survivor resolves at its old id; the tombstone errors loudly.
        assert_eq!(store.text(keep), "keep me");
        assert_eq!(
            store.resolve(drop).unwrap_err(),
            CoreError::UnknownDoc(drop.index())
        );
        assert_eq!(store.lookup("drop me"), None);
    }

    #[test]
    fn reinterning_after_compaction_mints_a_fresh_id() {
        let mut store = DocumentStore::new();
        let old = store.intern("text");
        store.compact(|_| false);
        let new = store.intern("text");
        // The slot is never reused: old spans cannot alias new content.
        assert_ne!(old, new);
        assert_eq!(new.index() as usize, store.slots() - 1);
        assert!(store.resolve(old).is_err());
        assert_eq!(store.text(new), "text");
    }

    #[test]
    fn shards_of_empty_store_are_empty() {
        let store = DocumentStore::new();
        assert!(store.shards(4).is_empty());
        assert!(store.shards(0).is_empty());
        // Fully compacted == empty for sharding purposes.
        let mut compacted = DocumentStore::new();
        compacted.intern("gone");
        compacted.compact(|_| false);
        assert!(compacted.shards(4).is_empty());
    }

    #[test]
    fn shards_balance_by_bytes_not_count() {
        let mut store = DocumentStore::new();
        // One giant doc followed by eight small ones: a by-count split
        // into two shards would put the giant plus three smalls on one
        // side. By-bytes, the giant stands alone.
        store.intern(&"x".repeat(8_000));
        for i in 0..8 {
            store.intern(&format!("small doc {i} {}", "y".repeat(100)));
        }
        let shards = store.shards(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].docs, 1, "giant doc gets its own shard");
        assert_eq!(shards[1].docs, 8);
        assert!(shards[0].bytes > shards[1].bytes);
        // Ranges are contiguous, ascending, and cover every live slot.
        assert_eq!(shards[0].start_slot, 0);
        assert_eq!(shards[0].end_slot, shards[1].start_slot);
        assert_eq!(shards[1].end_slot, store.slots());
        let total_docs: usize = shards.iter().map(|s| s.docs).sum();
        assert_eq!(total_docs, store.len());
    }

    #[test]
    fn shards_never_exceed_n_and_never_split_a_doc() {
        let mut store = DocumentStore::new();
        store.intern("only one");
        let shards = store.shards(8);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].docs, 1);

        for i in 0..100 {
            store.intern(&format!("doc {i}"));
        }
        let shards = store.shards(7);
        assert_eq!(shards.len(), 7);
        let total: usize = shards.iter().map(|s| s.docs).sum();
        assert_eq!(total, store.len());
    }

    #[test]
    fn shards_skip_tombstoned_ids_after_compact() {
        let mut store = DocumentStore::new();
        let mut keep = Vec::new();
        for i in 0..12 {
            let id = store.intern(&format!("document number {i}"));
            if i % 3 == 0 {
                keep.push(id);
            }
        }
        store.compact(|id| keep.contains(&id));
        let shards = store.shards(2);
        let total_docs: usize = shards.iter().map(|s| s.docs).sum();
        assert_eq!(total_docs, keep.len());
        let live_bytes: usize = store.iter().map(|(_, t)| t.len().max(1)).sum();
        let shard_bytes: usize = shards.iter().map(|s| s.bytes).sum();
        assert_eq!(shard_bytes, live_bytes);
        // Every kept id maps into exactly one shard.
        for &id in &keep {
            assert_eq!(shards.iter().filter(|s| s.contains(id)).count(), 1);
        }
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut store = DocumentStore::new();
        store.intern("a");
        let b = store.intern("b");
        store.intern("c");
        store.compact(|id| id != b);
        let texts: Vec<String> = store.iter().map(|(_, t)| t.to_string()).collect();
        assert_eq!(texts, vec!["a".to_string(), "c".to_string()]);
    }
}
