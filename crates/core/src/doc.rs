//! Interned document storage.
//!
//! Spans must reference their document (the ⟨**d**, i, j⟩ of the paper), but
//! carrying an owned string in every span would make tuples heavyweight.
//! The [`DocumentStore`] interns each distinct document text once and hands
//! out copyable [`DocId`]s; spans then stay three machine words.
//!
//! Interning is content-based: importing the same text twice yields the
//! same id, so spans created independently over equal texts compare equal —
//! exactly the set semantics Spannerlog relations need.

use crate::error::CoreError;
use crate::span::Span;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Identifier of an interned document inside one [`DocumentStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(u32);

impl DocId {
    /// Builds a `DocId` from a raw index. Only meaningful together with the
    /// store that produced the index; exposed for tests and serialization.
    pub fn from_index(index: u32) -> Self {
        DocId(index)
    }

    /// The raw index of this id inside its store.
    pub fn index(&self) -> u32 {
        self.0
    }
}

/// An interning store of document texts.
///
/// The store is append-only: documents are never removed, so `DocId`s stay
/// valid for the lifetime of the store. Texts are held behind [`Arc<str>`]
/// so resolving is cheap and resolved texts can outlive a borrow of the
/// store.
#[derive(Debug, Default, Clone)]
pub struct DocumentStore {
    texts: Vec<Arc<str>>,
    by_content: FxHashMap<Arc<str>, DocId>,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct documents interned so far.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Interns `text`, returning its id. Repeated calls with equal content
    /// return the same id without storing a second copy.
    pub fn intern(&mut self, text: &str) -> DocId {
        if let Some(&id) = self.by_content.get(text) {
            return id;
        }
        let arc: Arc<str> = Arc::from(text);
        let id = DocId(self.texts.len() as u32);
        self.texts.push(arc.clone());
        self.by_content.insert(arc, id);
        id
    }

    /// Interns an already-shared text without copying when it is new.
    pub fn intern_arc(&mut self, text: Arc<str>) -> DocId {
        if let Some(&id) = self.by_content.get(text.as_ref()) {
            return id;
        }
        let id = DocId(self.texts.len() as u32);
        self.texts.push(text.clone());
        self.by_content.insert(text, id);
        id
    }

    /// Looks up the id of `text` without interning it.
    pub fn lookup(&self, text: &str) -> Option<DocId> {
        self.by_content.get(text).copied()
    }

    /// Resolves an id to its text.
    pub fn resolve(&self, id: DocId) -> Result<&Arc<str>, CoreError> {
        self.texts
            .get(id.0 as usize)
            .ok_or(CoreError::UnknownDoc(id.0))
    }

    /// Resolves an id to its text, panicking on an unknown id.
    ///
    /// Ids are only minted by this store's `intern*` methods, so inside one
    /// engine instance the panic is unreachable; use [`Self::resolve`] when
    /// handling ids of untrusted provenance.
    pub fn text(&self, id: DocId) -> &str {
        &self.texts[id.0 as usize]
    }

    /// Creates a *checked* span over document `id`: offsets must be in
    /// bounds and on UTF-8 character boundaries.
    pub fn span(&self, id: DocId, start: usize, end: usize) -> Result<Span, CoreError> {
        let text = self.resolve(id)?;
        let invalid = CoreError::InvalidSpan {
            start,
            end,
            doc_len: text.len(),
        };
        if start > end || end > text.len() {
            return Err(invalid);
        }
        if !text.is_char_boundary(start) || !text.is_char_boundary(end) {
            return Err(invalid);
        }
        Ok(Span::new(id, start, end))
    }

    /// Resolves a span to its substring.
    pub fn span_text(&self, span: &Span) -> Result<&str, CoreError> {
        let text = self.resolve(span.doc)?;
        let (start, end) = (span.start_usize(), span.end_usize());
        if end > text.len() || !text.is_char_boundary(start) || !text.is_char_boundary(end) {
            return Err(CoreError::InvalidSpan {
                start,
                end,
                doc_len: text.len(),
            });
        }
        Ok(&text[start..end])
    }

    /// Iterates over `(id, text)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Arc<str>)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (DocId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut store = DocumentStore::new();
        let a = store.intern("hello");
        let b = store.intern("world");
        let c = store.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut store = DocumentStore::new();
        let id = store.intern("some text");
        assert_eq!(store.text(id), "some text");
        assert_eq!(store.resolve(id).unwrap().as_ref(), "some text");
    }

    #[test]
    fn unknown_doc_is_an_error() {
        let store = DocumentStore::new();
        assert_eq!(
            store.resolve(DocId::from_index(7)).unwrap_err(),
            CoreError::UnknownDoc(7)
        );
    }

    #[test]
    fn checked_span_rejects_out_of_bounds() {
        let mut store = DocumentStore::new();
        let id = store.intern("abc");
        assert!(store.span(id, 0, 3).is_ok());
        assert!(store.span(id, 0, 4).is_err());
        assert!(store.span(id, 2, 1).is_err());
    }

    #[test]
    fn checked_span_rejects_non_char_boundaries() {
        let mut store = DocumentStore::new();
        let id = store.intern("héllo"); // 'é' is two bytes: offsets 1..3
        assert!(store.span(id, 1, 3).is_ok());
        assert!(store.span(id, 1, 2).is_err());
        assert!(store.span(id, 2, 3).is_err());
    }

    #[test]
    fn span_text_resolves_substring() {
        let mut store = DocumentStore::new();
        let id = store.intern("acb aacccbbb");
        let span = store.span(id, 4, 6).unwrap();
        assert_eq!(store.span_text(&span).unwrap(), "aa");
    }

    #[test]
    fn intern_arc_shares_existing_entry() {
        let mut store = DocumentStore::new();
        let a = store.intern("shared");
        let b = store.intern_arc(Arc::from("shared"));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut store = DocumentStore::new();
        store.intern("x");
        store.intern("y");
        let collected: Vec<_> = store
            .iter()
            .map(|(id, t)| (id.index(), t.to_string()))
            .collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn lookup_without_interning() {
        let mut store = DocumentStore::new();
        assert_eq!(store.lookup("a"), None);
        let id = store.intern("a");
        assert_eq!(store.lookup("a"), Some(id));
    }
}
