//! Tuples: fixed-arity sequences of [`Value`]s.
//!
//! Tuples flow through every join and IE-function call, so they use a
//! `SmallVec` with inline capacity for the common short arities — most
//! Spannerlog relations in the paper's examples have 1–4 columns.

use crate::schema::Schema;
use crate::value::Value;
use crate::CoreError;
use smallvec::SmallVec;
use std::fmt;
use std::ops::Index;

/// Inline capacity: tuples up to this arity avoid a heap allocation.
const INLINE: usize = 4;

/// A relation tuple.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    values: SmallVec<[Value; INLINE]>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple {
            values: values.into_iter().collect(),
        }
    }

    /// The empty (nullary) tuple.
    pub fn empty() -> Self {
        Tuple::default()
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether this is the nullary tuple.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at column `i`, if present.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Appends a value in place.
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// A new tuple holding the columns selected by `indices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }

    /// Checks this tuple against a schema: arity and per-column types.
    pub fn check_schema(&self, schema: &Schema) -> Result<(), CoreError> {
        if self.arity() != schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: schema.arity(),
                actual: self.arity(),
            });
        }
        for (i, (v, t)) in self.values.iter().zip(schema.types()).enumerate() {
            if v.value_type() != *t {
                return Err(CoreError::TypeMismatch {
                    column: i,
                    expected: *t,
                    actual: v.value_type(),
                });
            }
        }
        Ok(())
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.values.iter()
    }

    /// Consumes the tuple, yielding its values.
    pub fn into_values(self) -> impl Iterator<Item = Value> {
        self.values.into_iter()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ValueType;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn construction_and_access() {
        let tup = Tuple::new([Value::str("a"), Value::Int(2)]);
        assert_eq!(tup.arity(), 2);
        assert_eq!(tup[0], Value::str("a"));
        assert_eq!(tup.get(1), Some(&Value::Int(2)));
        assert_eq!(tup.get(2), None);
    }

    #[test]
    fn projection_and_concat() {
        let tup = t(&[10, 20, 30]);
        assert_eq!(tup.project(&[2, 0]), t(&[30, 10]));
        assert_eq!(t(&[1]).concat(&t(&[2, 3])), t(&[1, 2, 3]));
    }

    #[test]
    fn schema_check_accepts_matching() {
        let tup = Tuple::new([Value::str("a"), Value::Int(1)]);
        let schema = Schema::new(vec![ValueType::Str, ValueType::Int]);
        assert!(tup.check_schema(&schema).is_ok());
    }

    #[test]
    fn schema_check_rejects_arity() {
        let tup = t(&[1]);
        let schema = Schema::new(vec![ValueType::Int, ValueType::Int]);
        assert_eq!(
            tup.check_schema(&schema).unwrap_err(),
            CoreError::ArityMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn schema_check_rejects_type() {
        let tup = Tuple::new([Value::str("a")]);
        let schema = Schema::new(vec![ValueType::Int]);
        assert_eq!(
            tup.check_schema(&schema).unwrap_err(),
            CoreError::TypeMismatch {
                column: 0,
                expected: ValueType::Int,
                actual: ValueType::Str,
            }
        );
    }

    #[test]
    fn display_renders_parenthesized() {
        let tup = Tuple::new([Value::str("u"), Value::Int(7)]);
        assert_eq!(tup.to_string(), "(\"u\", 7)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut tuples = vec![t(&[2, 1]), t(&[1, 9]), t(&[1, 2])];
        tuples.sort();
        assert_eq!(tuples, vec![t(&[1, 2]), t(&[1, 9]), t(&[2, 1])]);
    }
}
