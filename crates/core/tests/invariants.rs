//! Integration tests for the core value-model invariants the rest of the
//! workspace leans on: span ordering and containment laws, schema/tuple
//! arity and type checking, relation set semantics (dedup, deterministic
//! export order), and document interning.

use spannerlib_core::{
    CoreError, DocId, DocumentStore, Relation, Schema, Span, Tuple, Value, ValueType,
};

fn d(i: u32) -> DocId {
    DocId::from_index(i)
}

// ---------------------------------------------------------------------
// Span ordering and geometry
// ---------------------------------------------------------------------

#[test]
fn span_order_is_lexicographic_by_doc_start_end() {
    let mut spans = vec![
        Span::new(d(1), 0, 2),
        Span::new(d(0), 5, 9),
        Span::new(d(0), 0, 4),
        Span::new(d(0), 0, 2),
    ];
    spans.sort();
    assert_eq!(
        spans,
        vec![
            Span::new(d(0), 0, 2),
            Span::new(d(0), 0, 4),
            Span::new(d(0), 5, 9),
            Span::new(d(1), 0, 2),
        ]
    );
}

#[test]
fn span_order_is_total_and_consistent_with_eq() {
    let a = Span::new(d(0), 1, 3);
    let b = Span::new(d(0), 1, 3);
    assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    assert_eq!(a, b);
    // Antisymmetry on a strict pair.
    let c = Span::new(d(0), 1, 4);
    assert!(a < c && (c >= a));
}

#[test]
#[should_panic(expected = "must not exceed end")]
fn inverted_span_is_rejected() {
    let _ = Span::new(d(0), 3, 2);
}

#[test]
fn containment_is_reflexive_and_transitive() {
    let outer = Span::new(d(0), 0, 10);
    let mid = Span::new(d(0), 2, 8);
    let inner = Span::new(d(0), 3, 5);
    assert!(outer.contains(&outer), "containment must be reflexive");
    assert!(outer.contains(&mid) && mid.contains(&inner));
    assert!(outer.contains(&inner), "containment must be transitive");
    // Cross-document containment never holds.
    assert!(!outer.contains(&Span::new(d(1), 3, 5)));
}

#[test]
fn empty_spans_never_overlap() {
    let empty = Span::new(d(0), 4, 4);
    let wide = Span::new(d(0), 0, 9);
    assert!(empty.is_empty());
    assert!(!empty.overlaps(&wide));
    assert!(!wide.overlaps(&empty));
    // But containment of an empty span inside a wide one holds.
    assert!(wide.contains(&empty));
}

#[test]
fn checked_spans_respect_document_bounds_and_char_boundaries() {
    let mut docs = DocumentStore::new();
    let id = docs.intern("héllo"); // 'é' is 2 bytes: h=0, é=1..3, l=3…
    assert!(docs.span(id, 0, 6).is_ok());
    assert!(matches!(
        docs.span(id, 0, 7),
        Err(CoreError::InvalidSpan { .. })
    ));
    // Byte offset 2 splits the 'é'.
    assert!(matches!(
        docs.span(id, 0, 2),
        Err(CoreError::InvalidSpan { .. })
    ));
}

#[test]
fn interning_is_idempotent_and_spans_align_across_copies() {
    let mut docs = DocumentStore::new();
    let a = docs.intern("same text");
    let b = docs.intern("same text");
    assert_eq!(a, b, "identical texts must intern to one document");
    let s1 = docs.span(a, 0, 4).unwrap();
    let s2 = docs.span(b, 0, 4).unwrap();
    assert_eq!(s1, s2);
    assert_eq!(docs.span_text(&s1).unwrap(), "same");
}

// ---------------------------------------------------------------------
// Schema / tuple checking
// ---------------------------------------------------------------------

#[test]
fn tuple_arity_mismatch_is_reported_with_both_arities() {
    let schema = Schema::new(vec![ValueType::Str, ValueType::Int]);
    let too_short = Tuple::new([Value::str("x")]);
    match too_short.check_schema(&schema) {
        Err(CoreError::ArityMismatch { expected, actual }) => {
            assert_eq!((expected, actual), (2, 1));
        }
        other => panic!("expected ArityMismatch, got {other:?}"),
    }
}

#[test]
fn tuple_type_mismatch_names_the_offending_column() {
    let schema = Schema::new(vec![ValueType::Str, ValueType::Int]);
    let wrong = Tuple::new([Value::str("x"), Value::Bool(true)]);
    match wrong.check_schema(&schema) {
        Err(CoreError::TypeMismatch {
            column,
            expected,
            actual,
        }) => {
            assert_eq!(column, 1);
            assert_eq!(expected, ValueType::Int);
            assert_eq!(actual, ValueType::Bool);
        }
        other => panic!("expected TypeMismatch, got {other:?}"),
    }
}

#[test]
fn well_typed_tuple_passes_and_projects() {
    let schema = Schema::new(vec![ValueType::Str, ValueType::Int, ValueType::Bool]);
    let t = Tuple::new([Value::str("x"), Value::Int(7), Value::Bool(false)]);
    assert!(t.check_schema(&schema).is_ok());
    let p = t.project(&[2, 0]);
    assert_eq!(p.values(), &[Value::Bool(false), Value::str("x")]);
    // Projection follows the projected schema.
    assert!(p.check_schema(&schema.project(&[2, 0])).is_ok());
}

#[test]
fn nullary_tuple_matches_only_empty_schema() {
    let t = Tuple::empty();
    assert!(t.check_schema(&Schema::empty()).is_ok());
    assert!(t.check_schema(&Schema::new(vec![ValueType::Int])).is_err());
}

// ---------------------------------------------------------------------
// Relation set semantics
// ---------------------------------------------------------------------

#[test]
fn relation_deduplicates_inserts() {
    let mut rel = Relation::new(Schema::new(vec![ValueType::Int]));
    assert!(rel.insert(Tuple::new([Value::Int(1)])).unwrap());
    assert!(
        !rel.insert(Tuple::new([Value::Int(1)])).unwrap(),
        "duplicate"
    );
    assert!(rel.insert(Tuple::new([Value::Int(2)])).unwrap());
    assert_eq!(rel.len(), 2);
}

#[test]
fn relation_rejects_ill_typed_tuples() {
    let mut rel = Relation::new(Schema::new(vec![ValueType::Int]));
    assert!(rel.insert(Tuple::new([Value::str("no")])).is_err());
    assert!(rel.insert(Tuple::new([])).is_err());
    assert!(rel.is_empty());
}

#[test]
fn sorted_tuples_is_deterministic_regardless_of_insert_order() {
    let schema = Schema::new(vec![ValueType::Int, ValueType::Str]);
    let rows = [(3, "c"), (1, "b"), (2, "a"), (1, "a")];
    let mut forward = Relation::new(schema.clone());
    for &(n, s) in &rows {
        forward
            .insert(Tuple::new([Value::Int(n), Value::str(s)]))
            .unwrap();
    }
    let mut backward = Relation::new(schema);
    for &(n, s) in rows.iter().rev() {
        backward
            .insert(Tuple::new([Value::Int(n), Value::str(s)]))
            .unwrap();
    }
    assert_eq!(forward.sorted_tuples(), backward.sorted_tuples());
    let firsts: Vec<i64> = forward
        .sorted_tuples()
        .iter()
        .map(|t| t[0].as_int().unwrap())
        .collect();
    assert_eq!(firsts, vec![1, 1, 2, 3]);
}

#[test]
fn union_deduplicates_and_counts_new_tuples() {
    let schema = Schema::new(vec![ValueType::Int]);
    let mut a = Relation::from_tuples(
        schema.clone(),
        [Tuple::new([Value::Int(1)]), Tuple::new([Value::Int(2)])],
    )
    .unwrap();
    let b = Relation::from_tuples(
        schema,
        [Tuple::new([Value::Int(2)]), Tuple::new([Value::Int(3)])],
    )
    .unwrap();
    let added = a.union_in_place(&b).unwrap();
    assert_eq!(added, 1, "only the genuinely new tuple counts");
    assert_eq!(a.len(), 3);
}

#[test]
fn union_requires_matching_schemas() {
    let mut a = Relation::new(Schema::new(vec![ValueType::Int]));
    let b = Relation::new(Schema::new(vec![ValueType::Str]));
    assert!(a.union_in_place(&b).is_err());
}

// ---------------------------------------------------------------------
// Value total order (what makes sorted_tuples well-defined)
// ---------------------------------------------------------------------

#[test]
fn value_order_is_total_across_types() {
    let mut vs = vec![
        Value::Float(1.5),
        Value::str("b"),
        Value::Int(2),
        Value::Bool(true),
        Value::Span(Span::new(d(0), 0, 1)),
        Value::str("a"),
        Value::Int(-1),
    ];
    // A total order must sort without panicking and be stable under
    // re-sorting a rotation.
    vs.sort();
    let mut rotated: Vec<Value> = vs[3..]
        .iter()
        .cloned()
        .chain(vs[..3].iter().cloned())
        .collect();
    rotated.sort();
    assert_eq!(vs, rotated);
    // Same-type values keep their natural order.
    let pos_a = vs.iter().position(|v| v == &Value::str("a")).unwrap();
    let pos_b = vs.iter().position(|v| v == &Value::str("b")).unwrap();
    assert!(pos_a < pos_b);
    let pos_m1 = vs.iter().position(|v| v == &Value::Int(-1)).unwrap();
    let pos_2 = vs.iter().position(|v| v == &Value::Int(2)).unwrap();
    assert!(pos_m1 < pos_2);
}
