//! Property tests for the engine: the two evaluation strategies must be
//! observationally equivalent on random Datalog programs, aggregation
//! must match a hand-rolled reference on random inputs, and the IE memo
//! cache must be semantically invisible (cache-on ≡ cache-off).

use proptest::prelude::*;
use spannerlib_core::Value;
use spannerlog_engine::{EvalStrategy, Session};

/// Random edge relation over a small node universe.
fn edges_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    prop::collection::vec((0u8..8, 0u8..8), 0..24)
}

fn load_graph(session: &mut Session, edges: &[(u8, u8)]) {
    session.run("new Edge(int, int)").unwrap();
    for &(a, b) in edges {
        session
            .add_fact("Edge", [Value::Int(a as i64), Value::Int(b as i64)])
            .unwrap();
    }
}

/// Random short documents over a tiny alphabet, exercising matches,
/// non-matches, and empty texts.
fn texts_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..4, 0..24), 1..6)
}

fn render_text(codes: &[u8]) -> String {
    codes
        .iter()
        .map(|c| ['a', 'b', ' ', 'x'][*c as usize])
        .collect()
}

/// Random IE-heavy program shapes: span extraction with joins, scalar
/// extraction with aggregation, boolean filters with negation.
const IE_PROGRAMS: &[(&str, &[&str])] = &[
    (
        r#"
        A(d, s) <- Texts(d, t), rgx("a+", t) -> (s)
        B(d, s) <- Texts(d, t), rgx("b+", t) -> (s)
        Pair(d, p, q) <- A(d, p), B(d, q)
        "#,
        &["A", "B", "Pair"],
    ),
    (
        r#"
        Tok(d, w) <- Texts(d, t), rgx_string("([ab]+)", t) -> (w)
        Cnt(d, count(w)) <- Tok(d, w)
        "#,
        &["Tok", "Cnt"],
    ),
    (
        r#"
        HasX(d) <- Texts(d, t), rgx_is_match("x", t)
        Plain(d) <- Texts(d, _), not HasX(d)
        Mark(d, s) <- Texts(d, t), HasX(d), rgx("x", t) -> (s)
        "#,
        &["HasX", "Plain", "Mark"],
    ),
];

fn import_texts(session: &mut Session, texts: &[Vec<u8>], round: usize) {
    session
        .import_typed(
            "Texts",
            texts
                .iter()
                .enumerate()
                .map(|(i, codes)| (format!("d{i}"), render_text(codes)))
                .skip(round % texts.len())
                .collect::<Vec<_>>(),
        )
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transitive closure: naive ≡ semi-naive on random graphs.
    #[test]
    fn strategies_agree_on_transitive_closure(edges in edges_strategy()) {
        let program = "
            Path(x, y) <- Edge(x, y)
            Path(x, z) <- Path(x, y), Edge(y, z)
        ";
        let mut naive = Session::with_strategy(EvalStrategy::Naive);
        load_graph(&mut naive, &edges);
        naive.run(program).unwrap();
        let mut semi = Session::with_strategy(EvalStrategy::SemiNaive);
        load_graph(&mut semi, &edges);
        semi.run(program).unwrap();
        prop_assert_eq!(
            naive.relation("Path").unwrap().sorted_tuples(),
            semi.relation("Path").unwrap().sorted_tuples()
        );
    }

    /// Same-generation: a classic mutual-recursion workload.
    #[test]
    fn strategies_agree_on_same_generation(edges in edges_strategy()) {
        let program = "
            Sg(x, x) <- Edge(x, _)
            Sg(x, x) <- Edge(_, x)
            Sg(x, y) <- Edge(px, x), Sg(px, py), Edge(py, y)
        ";
        let mut naive = Session::with_strategy(EvalStrategy::Naive);
        load_graph(&mut naive, &edges);
        naive.run(program).unwrap();
        let mut semi = Session::with_strategy(EvalStrategy::SemiNaive);
        load_graph(&mut semi, &edges);
        semi.run(program).unwrap();
        prop_assert_eq!(
            naive.relation("Sg").unwrap().sorted_tuples(),
            semi.relation("Sg").unwrap().sorted_tuples()
        );
    }

    /// Stratified negation agrees across strategies too.
    #[test]
    fn strategies_agree_with_negation(edges in edges_strategy()) {
        let program = "
            Reach(y) <- Edge(0, y)
            Reach(z) <- Reach(y), Edge(y, z)
            Node(x) <- Edge(x, _)
            Node(y) <- Edge(_, y)
            Dead(x) <- Node(x), not Reach(x)
        ";
        let mut naive = Session::with_strategy(EvalStrategy::Naive);
        load_graph(&mut naive, &edges);
        naive.run(program).unwrap();
        let mut semi = Session::with_strategy(EvalStrategy::SemiNaive);
        load_graph(&mut semi, &edges);
        semi.run(program).unwrap();
        prop_assert_eq!(
            naive.relation("Dead").unwrap().sorted_tuples(),
            semi.relation("Dead").unwrap().sorted_tuples()
        );
    }

    /// The IE memo is semantically invisible: cache-on and cache-off
    /// sessions agree tuple-for-tuple on random programs over random
    /// documents, across re-imports that exercise warm-path replay.
    #[test]
    fn cache_on_and_off_agree_tuple_for_tuple(
        texts in texts_strategy(),
        prog in 0usize..IE_PROGRAMS.len(),
    ) {
        let (program, relations) = IE_PROGRAMS[prog];
        let mut cached = Session::new();
        let mut uncached = Session::builder().ie_cache_capacity(0).build();
        for round in 0..3 {
            import_texts(&mut cached, &texts, round);
            import_texts(&mut uncached, &texts, round);
            if round == 0 {
                cached.run(program).unwrap();
                uncached.run(program).unwrap();
            }
            for name in relations {
                prop_assert_eq!(
                    cached.relation(name).unwrap().sorted_tuples(),
                    uncached.relation(name).unwrap().sorted_tuples(),
                    "relation {} diverged on round {}", name, round
                );
            }
        }
        // The cached session actually exercised the memo.
        let stats = cached.stats().cache;
        prop_assert!(stats.hits + stats.misses > 0);
    }

    /// The cost-based planner is semantically invisible: planner-on and
    /// planner-off sessions agree tuple-for-tuple on random recursive
    /// graph programs (exercising join reordering and index reuse across
    /// fixpoint rounds) under both evaluation strategies.
    #[test]
    fn planner_on_and_off_agree_on_graphs(
        edges in edges_strategy(),
        seminaive in any::<bool>(),
    ) {
        let program = "
            Path(x, y) <- Edge(x, y)
            Path(x, z) <- Path(x, y), Edge(y, z)
            Node(x) <- Edge(x, _)
            Node(y) <- Edge(_, y)
            Dead(x) <- Node(x), not Path(x, x)
        ";
        let strategy = if seminaive { EvalStrategy::SemiNaive } else { EvalStrategy::Naive };
        let run = |planner: bool| {
            let mut session = Session::builder().strategy(strategy).planner(planner).build();
            load_graph(&mut session, &edges);
            session.run(program).unwrap();
            (
                session.relation("Path").unwrap().sorted_tuples(),
                session.relation("Dead").unwrap().sorted_tuples(),
            )
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// Planner equivalence on IE-heavy programs: reordering around
    /// (cacheable and uncacheable) IE calls and negation never changes
    /// the derived relations. Spans are compared by their resolved text
    /// and offsets, not raw doc ids: a reordered run may intern the same
    /// documents under different ids without being observably different.
    #[test]
    fn planner_on_and_off_agree_on_ie_programs(
        texts in texts_strategy(),
        prog in 0usize..IE_PROGRAMS.len(),
    ) {
        let (program, relations) = IE_PROGRAMS[prog];
        let mut on = Session::new();
        let mut off = Session::builder().planner(false).build();
        import_texts(&mut on, &texts, 0);
        import_texts(&mut off, &texts, 0);
        on.run(program).unwrap();
        off.run(program).unwrap();
        let canonical = |session: &mut Session, name: &str| -> Vec<Vec<String>> {
            let mut rows: Vec<Vec<String>> = session
                .relation(name)
                .unwrap()
                .sorted_tuples()
                .iter()
                .map(|t| {
                    t.values()
                        .iter()
                        .map(|v| match v {
                            Value::Span(s) => format!(
                                "{:?}[{}..{}]",
                                session.span_text(s).unwrap(),
                                s.start,
                                s.end
                            ),
                            other => format!("{other:?}"),
                        })
                        .collect()
                })
                .collect();
            rows.sort();
            rows
        };
        for name in relations {
            prop_assert_eq!(
                canonical(&mut on, name),
                canonical(&mut off, name),
                "relation {} diverged with planner on", name
            );
        }
    }

    /// Split-correct parallel evaluation is semantically invisible:
    /// `parallelism(k)` agrees tuple-for-tuple with a pinned-serial
    /// session on random IE programs over random documents, for several
    /// worker counts (including ones exceeding the document count).
    /// Spans canonicalize by resolved text and offsets: shard execution
    /// may intern documents under different ids.
    #[test]
    fn parallelism_is_semantically_invisible(
        texts in texts_strategy(),
        prog in 0usize..IE_PROGRAMS.len(),
    ) {
        let (program, relations) = IE_PROGRAMS[prog];
        let run = |workers: usize| {
            let mut session = Session::builder().parallelism(workers).build();
            import_texts(&mut session, &texts, 0);
            session.run(program).unwrap();
            session
        };
        let canonical = |session: &mut Session, name: &str| -> Vec<Vec<String>> {
            let mut rows: Vec<Vec<String>> = session
                .relation(name)
                .unwrap()
                .sorted_tuples()
                .iter()
                .map(|t| {
                    t.values()
                        .iter()
                        .map(|v| match v {
                            Value::Span(s) => format!(
                                "{:?}[{}..{}]",
                                session.span_text(s).unwrap(),
                                s.start,
                                s.end
                            ),
                            other => format!("{other:?}"),
                        })
                        .collect()
                })
                .collect();
            rows.sort();
            rows
        };
        let mut serial = run(0);
        for workers in [2usize, 4, 7] {
            let mut parallel = run(workers);
            for name in relations {
                prop_assert_eq!(
                    canonical(&mut serial, name),
                    canonical(&mut parallel, name),
                    "relation {} diverged at parallelism({})", name, workers
                );
            }
        }
    }

    /// Aggregation: count/sum/min/max match a reference fold.
    #[test]
    fn aggregates_match_reference(values in prop::collection::vec((0u8..5, -20i64..20), 1..30)) {
        let mut session = Session::new();
        session.run("new M(int, int)").unwrap();
        // Set semantics: dedupe like the engine will.
        let mut dedup: Vec<(u8, i64)> = values.clone();
        dedup.sort_unstable();
        dedup.dedup();
        for &(g, v) in &dedup {
            session
                .add_fact("M", [Value::Int(g as i64), Value::Int(v)])
                .unwrap();
        }
        session
            .run("Stats(g, count(v), sum(v), min(v), max(v)) <- M(g, v)")
            .unwrap();
        let rel = session.relation("Stats").unwrap();

        use std::collections::BTreeMap;
        let mut expected: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for &(g, v) in &dedup {
            expected.entry(g as i64).or_default().push(v);
        }
        prop_assert_eq!(rel.len(), expected.len());
        for tuple in rel.sorted_tuples() {
            let g = tuple[0].as_int().unwrap();
            let members = &expected[&g];
            prop_assert_eq!(tuple[1].as_int().unwrap(), members.len() as i64);
            prop_assert_eq!(tuple[2].as_int().unwrap(), members.iter().sum::<i64>());
            prop_assert_eq!(tuple[3].as_int().unwrap(), *members.iter().min().unwrap());
            prop_assert_eq!(tuple[4].as_int().unwrap(), *members.iter().max().unwrap());
        }
    }

    /// The rgx IE path agrees between a rule and direct library use on
    /// random lowercase documents.
    #[test]
    fn rgx_rule_matches_direct_library(text in "[ab ]{0,20}") {
        let mut session = Session::new();
        session.run("new T(str)").unwrap();
        session.add_fact("T", [Value::str(text.as_str())]).unwrap();
        session
            .run(r#"W(w) <- T(t), rgx_string("[ab]+", t) -> (w)"#)
            .unwrap();
        let rel = session.relation("W").unwrap();
        let via_rule: std::collections::BTreeSet<String> = rel
            .sorted_tuples()
            .iter()
            .map(|t| t[0].as_str().unwrap().to_string())
            .collect();
        let re = spannerlib_regex::Regex::new("[ab]+").unwrap();
        let direct: std::collections::BTreeSet<String> = re
            .find_iter(&text)
            .map(|m| text[m.start..m.end].to_string())
            .collect();
        prop_assert_eq!(via_rule, direct);
    }
}
