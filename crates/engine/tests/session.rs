//! End-to-end session tests: every code snippet from the paper, plus
//! recursion, negation, aggregation, and failure-injection suites.

use spannerlib_core::{Schema, Value, ValueType};
use spannerlib_dataframe::DataFrame;
use spannerlog_engine::{filter_output, EngineError, EvalStrategy, Session};

fn strings(df: &DataFrame, col: usize) -> Vec<String> {
    df.iter_rows()
        .map(|r| r[col].as_str().unwrap().to_string())
        .collect()
}

/// The complete §3.2 embedding example: DataFrame import → rule with
/// rgx → export with a constant filter.
#[test]
fn paper_section_3_2_email_pipeline() {
    let mut session = Session::new();
    let df = DataFrame::from_rows(
        vec!["date".into(), "text".into()],
        vec![
            vec![
                Value::str("2024-01-01"),
                Value::str("write to ann@gmail.com and bob@work.org"),
            ],
            vec![Value::str("2024-01-02"), Value::str("or eve@gmail.com")],
        ],
    )
    .unwrap();
    session.import_dataframe(&df, "Texts").unwrap();

    session
        .run(r#"R(usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom)."#)
        .unwrap();

    let out = session.export(r#"?R(usr, "gmail")"#).unwrap();
    assert_eq!(out.column_names(), &["usr"]);
    assert_eq!(strings(&out, 0), vec!["ann", "eve"]);
}

/// §2's worked example driven through the full engine with span outputs.
#[test]
fn paper_section_2_rgx_example_via_rules() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new Texts(str)
            Texts("acb aacccbbb")
            R(x, y) <- Texts(t), rgx("x{a+}c+y{b+}", t) -> (x, y)
        "#,
        )
        .unwrap();
    let rel = session.relation("R").unwrap();
    let rows = rel.sorted_tuples();
    assert_eq!(rows.len(), 2);
    // (⟨0,1⟩, ⟨2,3⟩) and (⟨4,6⟩, ⟨9,12⟩)
    let spans: Vec<(u32, u32, u32, u32)> = rows
        .iter()
        .map(|t| {
            let a = t[0].as_span().unwrap();
            let b = t[1].as_span().unwrap();
            (a.start, a.end, b.start, b.end)
        })
        .collect();
    assert_eq!(spans, vec![(0, 1, 2, 3), (4, 6, 9, 12)]);
}

/// §3.1's aggregation example: lex_concat of str(y) grouped by document.
#[test]
fn paper_aggregation_lex_concat() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new Texts(str, str)
            Texts("d1", "b a c")
            Texts("d2", "z y")
            R(t, lex_concat(str(y))) <- Texts(d, t), rgx("\w+", t) -> (y)
        "#,
        )
        .unwrap();
    let out = session.export("?R(t, s)").unwrap();
    let pairs: Vec<(String, String)> = out
        .iter_rows()
        .map(|r| {
            (
                r[0].as_str().unwrap().to_string(),
                r[1].as_str().unwrap().to_string(),
            )
        })
        .collect();
    assert!(pairs.contains(&("b a c".to_string(), "abc".to_string())));
    assert!(pairs.contains(&("z y".to_string(), "yz".to_string())));
}

/// §3.3: registering a host closure and composing it with rgx in one
/// rule, exactly like the paper's `foo` example.
#[test]
fn paper_section_3_3_callback_composition() {
    let mut session = Session::new();
    // foo(x, y) -> (z): returns the concatenation reversed (arbitrary
    // host logic standing in for the paper's `foo`).
    session.register("foo", Some(2), |args, _ctx| {
        let x = args[0].as_str().unwrap_or_default();
        let y = args[1].as_str().unwrap_or_default();
        let z: String = format!("{x}{y}").chars().rev().collect();
        Ok(vec![vec![Value::str(z)]])
    });
    session
        .run(
            r#"
            new R(str, str)
            new S(str, str)
            R("ka", "yb")
            S("bob", "ka")
            T(z, w) <- R(x, y), S("bob", x), foo(x, y) -> (z), rgx_string("b\w+", z) -> (w)
        "#,
        )
        .unwrap();
    let out = session.export("?T(z, w)").unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(strings(&out, 0), vec!["byak"]);
    assert_eq!(strings(&out, 1), vec!["byak"]);
}

#[test]
fn recursion_transitive_closure() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new Edge(str, str)
            Edge("a", "b") Edge("b", "c") Edge("c", "d")
            Path(x, y) <- Edge(x, y)
            Path(x, z) <- Path(x, y), Edge(y, z)
        "#,
        )
        .unwrap();
    let out = session.export("?Path(\"a\", y)").unwrap();
    assert_eq!(strings(&out, 0), vec!["b", "c", "d"]);
}

#[test]
fn naive_and_seminaive_agree_on_recursion() {
    let program = r#"
        new Edge(int, int)
        Edge(1, 2) Edge(2, 3) Edge(3, 4) Edge(4, 1) Edge(3, 5)
        Path(x, y) <- Edge(x, y)
        Path(x, z) <- Path(x, y), Edge(y, z)
    "#;
    let mut naive = Session::with_strategy(EvalStrategy::Naive);
    naive.run(program).unwrap();
    let mut semi = Session::with_strategy(EvalStrategy::SemiNaive);
    semi.run(program).unwrap();
    let a = naive.relation("Path").unwrap();
    let b = semi.relation("Path").unwrap();
    assert_eq!(a.sorted_tuples(), b.sorted_tuples());
    assert_eq!(a.len(), 20); // 4×4 pairs within the cycle + 4 nodes reaching 5
}

#[test]
fn stratified_negation() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new Node(str)
            new Edge(str, str)
            Node("a") Node("b") Node("c") Node("d")
            Edge("a", "b") Edge("b", "c")
            Reach(x) <- Edge("a", x)
            Reach(y) <- Reach(x), Edge(x, y)
            Unreach(x) <- Node(x), not Reach(x), x != "a"
        "#,
        )
        .unwrap();
    let out = session.export("?Unreach(x)").unwrap();
    assert_eq!(strings(&out, 0), vec!["d"]);
}

#[test]
fn negation_through_recursion_rejected() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new S(str)
            S("a")
            P(x) <- S(x), not Q(x)
            Q(x) <- S(x), not P(x)
        "#,
        )
        .unwrap();
    let err = session.export("?P(x)").unwrap_err();
    assert!(matches!(err, EngineError::NotStratifiable(_)));
}

#[test]
fn unsafe_rule_rejected_at_query_time() {
    let mut session = Session::new();
    session.run("new S(str)\nR(x, y) <- S(x)").unwrap();
    let err = session.export("?R(x, y)").unwrap_err();
    assert!(matches!(err, EngineError::Unsafe { .. }));
}

#[test]
fn ie_error_propagates() {
    let mut session = Session::new();
    session.register("boom", Some(1), |_args, _ctx| {
        Err(EngineError::IeRuntime {
            function: "boom".into(),
            msg: "injected failure".into(),
        })
    });
    session
        .run("new S(str)\nS(\"a\")\nR(y) <- S(x), boom(x) -> (y)")
        .unwrap();
    let err = session.export("?R(y)").unwrap_err();
    assert!(matches!(err, EngineError::IeRuntime { .. }));
}

#[test]
fn filter_predicate_written_as_plain_atom() {
    // The paper's §4.1 style: `contains(pos, s)` with no arrow.
    let mut session = Session::new();
    let doc = session.intern("hello world");
    let outer = Value::Span(session.make_span(doc, 0, 11).unwrap());
    let inner = Value::Span(session.make_span(doc, 2, 5).unwrap());
    let disjoint = Value::Span(session.make_span(doc, 6, 11).unwrap());
    session
        .declare("Pairs", Schema::new(vec![ValueType::Span, ValueType::Span]))
        .unwrap();
    session
        .add_fact("Pairs", [outer.clone(), inner.clone()])
        .unwrap();
    session.add_fact("Pairs", [inner, disjoint]).unwrap();
    session
        .run("Nested(a, b) <- Pairs(a, b), contains(a, b)")
        .unwrap();
    let rel = session.relation("Nested").unwrap();
    assert_eq!(rel.len(), 1);
}

#[test]
fn comparison_guards() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new N(int)
            N(1) N(5) N(10)
            Big(x) <- N(x), x >= 5
            Pairs(x, y) <- N(x), N(y), x < y
        "#,
        )
        .unwrap();
    assert_eq!(session.relation("Big").unwrap().len(), 2);
    assert_eq!(session.relation("Pairs").unwrap().len(), 3);
}

#[test]
fn queries_inside_run_return_frames() {
    let mut session = Session::new();
    let results = session
        .run(
            r#"
            new S(str)
            S("x") S("y")
            ?S(v)
        "#,
        )
        .unwrap();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].1.num_rows(), 2);
}

#[test]
fn incremental_cells_compose() {
    // The notebook workflow: separate cells accumulate state.
    let mut session = Session::new();
    session.run("new S(str)").unwrap();
    session.run("S(\"a\")").unwrap();
    session.run("R(x) <- S(x)").unwrap();
    assert_eq!(session.export("?R(x)").unwrap().num_rows(), 1);
    // New fact invalidates the fixpoint cache.
    session.run("S(\"b\")").unwrap();
    assert_eq!(session.export("?R(x)").unwrap().num_rows(), 2);
}

#[test]
fn fact_type_errors_are_reported() {
    let mut session = Session::new();
    session.run("new S(int)").unwrap();
    let err = session.run("S(\"oops\")").unwrap_err();
    assert!(matches!(err, EngineError::FactType { .. }));
    let err = session.run("S(1, 2)").unwrap_err();
    assert!(matches!(err, EngineError::Arity { .. }));
}

#[test]
fn fact_for_undeclared_relation_rejected() {
    let mut session = Session::new();
    let err = session.run("S(1)").unwrap_err();
    assert!(matches!(err, EngineError::UnknownRelation(_)));
}

#[test]
fn export_requires_a_query() {
    let mut session = Session::new();
    assert!(matches!(
        session.export("new S(str)").unwrap_err(),
        EngineError::NotAQuery(_)
    ));
}

#[test]
fn head_constants_and_boolean_queries() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new S(str)
            S("a")
            Tagged(x, "seen") <- S(x)
        "#,
        )
        .unwrap();
    let out = session.export("?Tagged(\"a\", \"seen\")").unwrap();
    assert_eq!(out.get(0, 0), Some(Value::Bool(true)));
}

#[test]
fn zero_output_registered_filter() {
    let mut session = Session::new();
    session.register("is_long", Some(1), |args, _ctx| {
        Ok(filter_output(args[0].as_str().is_some_and(|s| s.len() > 3)))
    });
    session
        .run(
            r#"
            new Words(str)
            Words("hi") Words("hello")
            Long(w) <- Words(w), is_long(w)
        "#,
        )
        .unwrap();
    let out = session.export("?Long(w)").unwrap();
    assert_eq!(strings(&out, 0), vec!["hello"]);
}

#[test]
fn multi_aggregate_heads() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new M(str, int)
            M("a", 1) M("a", 3) M("b", 10)
            Stats(g, count(x), sum(x), min(x), max(x)) <- M(g, x)
        "#,
        )
        .unwrap();
    let out = session.export("?Stats(g, c, s, lo, hi)").unwrap();
    let rows: Vec<Vec<Value>> = out.iter_rows().collect();
    assert_eq!(
        rows[0],
        vec![
            Value::str("a"),
            Value::Int(2),
            Value::Int(4),
            Value::Int(1),
            Value::Int(3)
        ]
    );
    assert_eq!(
        rows[1],
        vec![
            Value::str("b"),
            Value::Int(1),
            Value::Int(10),
            Value::Int(10),
            Value::Int(10)
        ]
    );
}

#[test]
fn spans_compose_through_rules() {
    // rgx over a span found by a previous rgx stays anchored in the
    // original document — the property §4.1's pipeline depends on.
    let mut session = Session::new();
    session
        .run(
            r#"
            new Docs(str)
            Docs("num=42; num=7;")
            Stmt(s) <- Docs(d), rgx("num=\d+", d) -> (s)
            Num(n) <- Stmt(s), rgx("\d+", s) -> (n)
        "#,
        )
        .unwrap();
    let rel = session.relation("Num").unwrap();
    let spans: Vec<(u32, u32)> = rel
        .sorted_tuples()
        .iter()
        .map(|t| {
            let s = t[0].as_span().unwrap();
            (s.start, s.end)
        })
        .collect();
    assert_eq!(spans, vec![(4, 6), (12, 13)]);
}

#[test]
fn eval_stats_populated() {
    let mut session = Session::with_strategy(EvalStrategy::Naive);
    session
        .run(
            r#"
            new Edge(int, int)
            Edge(1, 2) Edge(2, 3)
            Path(x, y) <- Edge(x, y)
            Path(x, z) <- Path(x, y), Edge(y, z)
        "#,
        )
        .unwrap();
    session.ensure_evaluated().unwrap();
    let stats = session.stats();
    assert!(stats.eval.rounds >= 2);
    assert!(stats.eval.tuples_new >= 3);
}
