//! Observability integration tests: `EvalProfile` agreement with
//! `EvalStats`, partial profiles and culprit attribution on aborted
//! runs, tracer sinks, stats draining, span-buffer budgets, and the
//! property that tracing never changes query results.

use proptest::prelude::*;
use spannerlib_trace::{SpanKind, TraceLevel, NO_SPAN};
use spannerlog_engine::{EngineError, EvalStats, EvalStrategy, RingTracer, Session};
use std::fmt::Write as _;
use std::sync::Arc;

/// Transitive closure over a six-node chain: two strata worth of work
/// packed into one, with recursion deep enough to need several rounds.
const TC_PROGRAM: &str = "new Edge(int, int)
Edge(1, 2) Edge(2, 3) Edge(3, 4) Edge(4, 5) Edge(5, 6) Edge(6, 7)
Path(x, y) <- Edge(x, y)
Path(x, z) <- Path(x, y), Edge(y, z)";

/// A single IE-bearing rule over one document.
const EMAIL_PROGRAM: &str = r#"new Texts(str)
Texts("reach ann@gmail.com or bob@work.org")
R(usr, dom) <- Texts(t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom)."#;

fn traced_session(level: TraceLevel) -> Session {
    Session::builder().tracing(level).build()
}

#[test]
fn profile_counters_agree_with_eval_stats() {
    let mut session = traced_session(TraceLevel::Summary);
    session.run(TC_PROGRAM).unwrap();
    assert_eq!(session.export("?Path(x, y)").unwrap().num_rows(), 21);

    let profile = session.profile().expect("Summary level yields a profile");
    let eval: EvalStats = session.stats().eval;
    assert_eq!(profile.rounds, eval.rounds as u64);
    assert_eq!(profile.rule_firings, eval.rule_firings as u64);
    assert_eq!(profile.tuples_derived, eval.tuples_derived as u64);
    assert_eq!(profile.tuples_new, eval.tuples_new as u64);
    assert_eq!(profile.error, None);
    assert_eq!(profile.level, TraceLevel::Summary);
    assert!(profile.spans.is_empty(), "no span events below Spans");

    // The per-rule breakdown sums back to the totals.
    let rules: Vec<_> = profile.strata.iter().flat_map(|s| &s.rules).collect();
    assert_eq!(rules.len(), 2);
    assert_eq!(
        rules.iter().map(|r| r.firings).sum::<u64>(),
        profile.rule_firings
    );
    assert_eq!(
        rules.iter().map(|r| r.tuples_new).sum::<u64>(),
        profile.tuples_new
    );
    assert_eq!(
        profile.strata.iter().map(|s| s.rounds).sum::<u64>(),
        profile.rounds
    );
    assert!(rules.iter().all(|r| r.head == "Path" && r.line > 0));
    assert!(rules.iter().any(|r| r.join_rows_scanned > 0));
    assert!(rules.iter().any(|r| r.source.contains("Path")));
}

#[test]
fn spans_level_records_a_well_formed_tree() {
    let mut session = traced_session(TraceLevel::Spans);
    session.run(TC_PROGRAM).unwrap();
    session.export("?Path(x, y)").unwrap();

    let profile = session.profile().unwrap();
    assert!(!profile.spans.is_empty());
    assert_eq!(profile.spans_dropped, 0);

    // Exactly one root (the Execute span); every other parent resolves.
    let ids: std::collections::HashSet<_> = profile.spans.iter().map(|s| s.id).collect();
    let roots: Vec<_> = profile
        .spans
        .iter()
        .filter(|s| s.parent == NO_SPAN)
        .collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].kind, SpanKind::Execute);
    for span in &profile.spans {
        assert!(span.parent == NO_SPAN || ids.contains(&span.parent));
    }
    for kind in [SpanKind::Stratum, SpanKind::Round, SpanKind::Rule] {
        assert!(
            profile.spans.iter().any(|s| s.kind == kind),
            "missing {kind:?} spans"
        );
    }
    // Sorted by start time, and rule spans carry the rule source.
    assert!(profile
        .spans
        .windows(2)
        .all(|w| w[0].start_ns <= w[1].start_ns));
    assert!(profile
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Rule)
        .all(|s| s.label.contains("Path")));
}

#[test]
fn ie_profile_counts_calls_memo_hits_and_latency() {
    // Naive evaluation re-fires the rule until fixpoint, so the second
    // round repeats the same IE call and hits the memo.
    let mut session = Session::builder()
        .strategy(EvalStrategy::Naive)
        .tracing(TraceLevel::Summary)
        .build();
    session.run(EMAIL_PROGRAM).unwrap();
    assert_eq!(session.export("?R(usr, dom)").unwrap().num_rows(), 2);

    let profile = session.profile().unwrap();
    let ie = profile
        .ie_functions
        .iter()
        .find(|f| f.name == "rgx_string")
        .expect("rgx_string profiled");
    assert_eq!(ie.calls, 2);
    assert_eq!(ie.memo_hits, 1);
    assert_eq!(ie.memo_misses, 1);
    assert_eq!(ie.calls, ie.memo_hits + ie.memo_misses);
    assert_eq!(ie.latency.count, ie.calls);

    // The span level adds IE-batch spans for the same run.
    session.set_tracing(TraceLevel::Spans);
    session.export("?R(usr, dom)").unwrap();
    let profile = session.profile().unwrap();
    assert!(profile
        .spans
        .iter()
        .any(|s| s.kind == SpanKind::IeBatch && s.label.starts_with("rgx_string")));
}

#[test]
fn round_limit_abort_names_the_driving_rule_and_keeps_partial_profile() {
    let mut session = Session::builder()
        .max_fixpoint_rounds(2)
        .tracing(TraceLevel::Summary)
        .build();
    session.run(TC_PROGRAM).unwrap();
    let err = session.export("?Path(x, y)").unwrap_err();

    let EngineError::LimitExceeded {
        resource, culprit, ..
    } = &err
    else {
        panic!("expected LimitExceeded, got {err:?}");
    };
    assert_eq!(*resource, "fixpoint rounds");
    assert!(culprit.is_known());
    assert_eq!(culprit.head, "Path");
    assert!(culprit.line > 0);
    let message = err.to_string();
    assert!(message.contains("fixpoint rounds"), "{message}");
    assert!(message.contains("\"Path\""), "{message}");

    // The caret snippet points into the program source.
    let snippet = culprit.snippet(TC_PROGRAM);
    assert!(snippet.contains("  | "), "{snippet}");
    assert!(snippet.contains('^'), "{snippet}");
    assert!(snippet.contains("Path"), "{snippet}");

    // Partial progress survives the abort.
    let profile = session.profile().expect("aborted run keeps its profile");
    let error = profile.error.as_deref().unwrap();
    assert!(error.contains("fixpoint rounds"), "{error}");
    assert!(profile.rounds >= 2);
    assert!(profile.strata[0].rules.iter().any(|r| r.firings > 0));
    assert!(profile.render().contains("aborted"));
}

#[test]
fn limit_snippet_survives_non_ascii_sources() {
    // Multi-byte predicate names before and on the culprit line: the
    // snippet must still excerpt the right line with the caret under it.
    let program = "new Kanté(int, int)
Kanté(1, 2) Kanté(2, 3) Kanté(3, 4) Kanté(4, 5)
Pfäd(x, y) <- Kanté(x, y)
Pfäd(x, z) <- Pfäd(x, y), Kanté(y, z)";
    let mut session = Session::builder()
        .max_fixpoint_rounds(2)
        .tracing(TraceLevel::Summary)
        .build();
    session.run(program).unwrap();
    let err = session.export("?Pfäd(x, y)").unwrap_err();
    let EngineError::LimitExceeded { culprit, .. } = &err else {
        panic!("expected LimitExceeded, got {err:?}");
    };
    assert_eq!(culprit.head, "Pfäd");
    let snippet = culprit.snippet(program);
    let caret_line = snippet
        .lines()
        .find(|l| l.starts_with("  | Pfäd"))
        .unwrap_or_else(|| panic!("no excerpted source line in {snippet:?}"));
    assert!(caret_line.contains("<-"), "{snippet}");
    assert!(snippet.lines().last().unwrap().ends_with('^'), "{snippet}");
}

#[test]
fn row_limit_abort_names_the_inserting_rule() {
    let mut session = Session::builder()
        .max_materialized_rows(5)
        .tracing(TraceLevel::Summary)
        .build();
    session.run(TC_PROGRAM).unwrap();
    let err = session.export("?Path(x, y)").unwrap_err();
    let EngineError::LimitExceeded {
        resource, culprit, ..
    } = &err
    else {
        panic!("expected LimitExceeded, got {err:?}");
    };
    assert_eq!(*resource, "materialized rows");
    assert!(culprit.is_known());
    assert_eq!(culprit.head, "Path");
    assert!(session.profile().is_some());
}

#[test]
fn tracing_off_yields_no_profile_and_set_tracing_forces_one() {
    let mut session = Session::new();
    session.run(TC_PROGRAM).unwrap();
    session.export("?Path(x, y)").unwrap();
    assert!(session.profile().is_none(), "Off is the default");
    assert!(session.snapshot().unwrap().profile().is_none());

    // Enabling tracing re-evaluates even though inputs are unchanged.
    session.set_tracing(TraceLevel::Summary);
    session.export("?Path(x, y)").unwrap();
    assert!(session.profile().is_some());
}

#[test]
fn snapshot_carries_the_producing_runs_profile() {
    let mut session = traced_session(TraceLevel::Summary);
    session.run(TC_PROGRAM).unwrap();
    let snapshot = session.snapshot().unwrap();
    let profile = snapshot.profile().expect("snapshot inherits the profile");
    assert_eq!(profile, session.profile().unwrap());
    assert!(profile.rule_firings > 0);
    assert!(format!("{snapshot:?}").contains("profiled: true"));
}

#[test]
fn span_buffer_budget_bounds_resident_spans_under_churn() {
    let budget = 2 * 1024;
    let mut session = Session::builder()
        .tracing(TraceLevel::Spans)
        .trace_buffer_bytes(budget)
        .build();
    session.run(TC_PROGRAM).unwrap();
    session.export("?Path(x, y)").unwrap();

    let profile = session.profile().unwrap();
    assert!(
        profile.spans_dropped > 0,
        "a deep recursion overflows a {budget}-byte ring"
    );
    let resident: usize = profile.spans.iter().map(|s| s.bytes()).sum();
    assert!(
        resident <= budget,
        "resident {resident} bytes exceed the {budget}-byte budget"
    );
    // Eviction drops oldest-first, so the survivors are the tail.
    assert!(!profile.spans.is_empty());
}

#[test]
fn take_stats_drains_activity_but_keeps_residency() {
    let mut session = Session::new();
    session.run(EMAIL_PROGRAM).unwrap();
    session.export("?R(usr, dom)").unwrap();

    let first = session.take_stats();
    assert!(first.eval.rule_firings > 0);
    assert!(first.cache.insertions > 0);

    let after = session.stats();
    assert_eq!(after.eval, EvalStats::default());
    assert_eq!(
        (after.cache.hits, after.cache.misses, after.cache.insertions),
        (0, 0, 0)
    );
    assert_eq!(
        after.cache.entries, first.cache.entries,
        "residency is state, not activity"
    );
    // A second drain with no evaluation in between is all zero activity.
    assert_eq!(session.take_stats().eval, EvalStats::default());
}

#[test]
fn ring_tracer_attached_to_an_untraced_session_turns_recording_on() {
    let tracer = Arc::new(RingTracer::new(TraceLevel::Spans, 64 * 1024));
    let mut session = Session::builder().tracer(tracer.clone()).build();
    session.run(EMAIL_PROGRAM).unwrap();
    session.export("?R(usr, dom)").unwrap();

    // The tracer's requested level won: spans were recorded and the
    // profile was aggregated into the metrics registry.
    assert!(!tracer.spans().is_empty());
    let metrics = tracer.metrics();
    assert_eq!(metrics.counter("evals").get(), 1);
    assert_eq!(metrics.counter("evals_aborted").get(), 0);
    assert!(metrics.counter("rule_firings").get() > 0);
    assert!(metrics.counter("ie.rgx_string.calls").get() > 0);
    assert_eq!(metrics.histogram("eval_ns").snapshot().count, 1);

    // Mutating the input re-evaluates and keeps aggregating.
    session.run(r#"Texts("also eve@mail.net")"#).unwrap();
    session.export("?R(usr, dom)").unwrap();
    assert_eq!(metrics.counter("evals").get(), 2);
}

#[test]
fn profile_renders_a_table_and_exports_json_lines() {
    let mut session = traced_session(TraceLevel::Spans);
    session.run(TC_PROGRAM).unwrap();
    session.export("?Path(x, y)").unwrap();
    let profile = session.profile().unwrap();

    let table = profile.render();
    assert!(table.contains("Path"), "{table}");
    assert!(table.contains("stratum"), "{table}");

    let json = profile.to_json_lines();
    assert!(json.lines().count() >= 1 + 2 + profile.spans.len());
    for line in json.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    assert!(json.contains(r#""type":"profile""#));
    assert!(json.contains(r#""type":"rule""#));
    assert!(json.contains(r#""type":"span""#));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tracing is observation only: for random edge sets, the derived
    /// relation is identical with tracing off and at full span capture,
    /// under both evaluation strategies.
    #[test]
    fn tracing_level_never_changes_results(
        edges in prop::collection::vec((0..6i64, 0..6i64), 1..12),
        seminaive in any::<bool>(),
    ) {
        let mut facts = String::new();
        for (a, b) in &edges {
            write!(facts, "Edge({a}, {b}) ").unwrap();
        }
        let program = format!(
            "new Edge(int, int)\n{facts}\nPath(x, y) <- Edge(x, y)\nPath(x, z) <- Path(x, y), Edge(y, z)"
        );
        let strategy = if seminaive { EvalStrategy::SemiNaive } else { EvalStrategy::Naive };
        let run = |level: TraceLevel| -> Vec<(i64, i64)> {
            let mut session = Session::builder().strategy(strategy).tracing(level).build();
            session.run(&program).unwrap();
            let mut rows: Vec<(i64, i64)> = session.export_typed("?Path(x, y)").unwrap();
            rows.sort_unstable();
            rows
        };
        let baseline = run(TraceLevel::Off);
        prop_assert_eq!(&baseline, &run(TraceLevel::Summary));
        prop_assert_eq!(&baseline, &run(TraceLevel::Spans));
    }
}
