//! Split-correct parallel evaluation: compile-time shard-plan verdicts,
//! parallel ≡ serial result equivalence, serial fallback for rules the
//! analysis rejects, and the `par:` summary in evaluation profiles.

use spannerlib_core::Value;
use spannerlog_engine::{Session, TraceLevel};

/// A mixed program: one shardable extraction rule, one aggregation
/// (serial), one IE-free join (serial), and one cross-document join
/// feeding an IE call (serial).
const MIXED_RULES: &str = r#"
Word(d, w) <- Texts(d, t), rgx_string("([a-z]+)", t) -> (w)
Cnt(d, count(w)) <- Word(d, w)
Shared(w) <- Word(d1, w), Word(d2, w), d1 < d2
Cross(s) <- Pats(p), Texts(d, t), rgx_string(p, t) -> (s)
"#;

fn corpus() -> Vec<(String, String)> {
    (0..12)
        .map(|i| {
            (
                format!("d{i}"),
                format!("alpha beta{i} gamma delta{} epsilon", i % 3),
            )
        })
        .collect()
}

fn load(session: &mut Session) {
    session.import_typed("Texts", corpus()).unwrap();
    session.run("new Pats(str)").unwrap();
    session
        .add_fact("Pats", [Value::str("beta[0-9]+")])
        .unwrap();
}

/// The compile-time analysis classifies each rule, exposing verdicts
/// (and serial-fallback reasons) through the prepared program.
#[test]
fn shard_plan_classifies_rules() {
    let mut session = Session::new();
    load(&mut session);
    session.run(MIXED_RULES).unwrap();
    let program = session.prepare_program().unwrap();
    let plan = program.program().shard_plan();
    assert_eq!(plan.rules.len(), 4);
    assert_eq!(plan.parallel_rules(), 1);
    assert_eq!(plan.serial_rules(), 3);

    let by_head = |head: &str| {
        plan.rules
            .iter()
            .find(|r| r.head == head)
            .unwrap_or_else(|| panic!("no verdict for {head}"))
    };

    let word = by_head("Word");
    assert!(word.parallel, "single-scan IE rule shards: {word:?}");
    assert_eq!(word.doc_var.as_deref(), Some("t"));
    assert!(word.reason.is_none());

    let cnt = by_head("Cnt");
    assert!(!cnt.parallel);
    assert_eq!(cnt.reason, Some("aggregation folds across documents"));

    let shared = by_head("Shared");
    assert!(!shared.parallel);
    assert_eq!(shared.reason, Some("no IE step to parallelize"));

    let cross = by_head("Cross");
    assert!(!cross.parallel, "two scan roots feed rgx_string: {cross:?}");
    assert_eq!(cross.reason, Some("cross-document join feeds an IE call"));
}

/// Canonicalized tuples (spans resolved to text + offsets: doc ids are
/// not stable across sessions).
fn canonical(session: &mut Session, name: &str) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = session
        .relation(name)
        .unwrap()
        .sorted_tuples()
        .iter()
        .map(|t| {
            t.values()
                .iter()
                .map(|v| match v {
                    Value::Span(s) => {
                        format!(
                            "{:?}[{}..{}]",
                            session.span_text(s).unwrap(),
                            s.start,
                            s.end
                        )
                    }
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

/// Parallel and pinned-serial sessions derive identical relations —
/// including the serial-fallback rules, which must still be correct
/// when the rest of the program runs sharded.
#[test]
fn parallel_matches_serial_on_mixed_program() {
    let run = |workers: usize| {
        let mut session = Session::builder().parallelism(workers).build();
        load(&mut session);
        session.run(MIXED_RULES).unwrap();
        session
    };
    let mut serial = run(0);
    let mut parallel = run(4);
    for name in ["Word", "Cnt", "Shared", "Cross"] {
        assert_eq!(
            canonical(&mut serial, name),
            canonical(&mut parallel, name),
            "relation {name} diverged under parallelism(4)"
        );
    }
    // Sanity: the extraction actually produced rows to compare.
    assert!(!canonical(&mut serial, "Word").is_empty());
    assert!(!canonical(&mut serial, "Cross").is_empty());
}

/// With workers and a shardable rule, the profile carries the parallel
/// counters and renders the `par:` summary line.
#[test]
fn profile_reports_parallel_summary() {
    let mut session = Session::builder()
        .parallelism(4)
        .tracing(TraceLevel::Summary)
        .build();
    load(&mut session);
    session.run(MIXED_RULES).unwrap();
    session.export("?Word(d, w)").unwrap();
    let profile = session.profile().expect("summary tracing yields a profile");
    assert_eq!(profile.par_workers, 4);
    assert!(
        profile.par_shards > 0,
        "the Word rule must fan out shard tasks (profile: {profile:?})"
    );
    assert!(profile.par_serial_rules > 0);
    let table = profile.render();
    assert!(table.contains("par:"), "parallel summary line:\n{table}");
}

/// `parallelism(0)` pins evaluation serial: no pool, no parallel
/// counters, no `par:` line.
#[test]
fn parallelism_zero_stays_serial() {
    let mut session = Session::builder()
        .parallelism(0)
        .tracing(TraceLevel::Summary)
        .build();
    load(&mut session);
    session.run(MIXED_RULES).unwrap();
    session.export("?Word(d, w)").unwrap();
    let profile = session.profile().unwrap();
    assert_eq!(profile.par_workers, 0);
    assert_eq!(profile.par_shards, 0);
    assert!(!profile.render().contains("par:"));
}
