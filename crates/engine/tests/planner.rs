//! Cost-based planner integration tests: step ordering by estimated
//! cardinality, index reuse across fixpoint rounds, trace surfacing of
//! plan choices, and the structured-error degradation path for malformed
//! plans (which safety analysis never produces, but `plan::execute` must
//! reject instead of panicking).

use rustc_hash::FxHashMap;
use spannerlib_core::{DocumentStore, Relation, Value};
use spannerlib_trace::{RunTrace, TraceLevel, NO_SPAN};
use spannerlog_engine::plan::{self, ExecCtx, HeadOut, PTerm, ParTally, RulePlan, Step, TraceCtx};
use spannerlog_engine::{optimizer, EngineError, Registry, Session};

/// A hand-built (unannotated) plan skeleton for malformed-plan tests.
fn bare_plan(steps: Vec<Step>, head: Vec<HeadOut>, var_names: &[&str]) -> RulePlan {
    RulePlan {
        head_predicate: "Broken".into(),
        steps,
        head,
        var_names: var_names.iter().map(|s| s.to_string()).collect(),
        line: 1,
        source: "Broken(x) <- ...".into(),
        dependencies: Vec::new(),
        opt: None,
    }
}

/// Runs a plan against an empty database and returns its error.
fn run_expect_err(plan: &RulePlan) -> EngineError {
    let registry = Registry::new();
    let relations: FxHashMap<String, Relation> = FxHashMap::default();
    let deltas: FxHashMap<String, Relation> = FxHashMap::default();
    let mut docs = DocumentStore::new();
    let tally = ParTally::default();
    let ctx = ExecCtx {
        registry: &registry,
        delta_at: None,
        deltas: &deltas,
        cache: None,
        planner: true,
        indexes: None,
        par: None,
        tally: &tally,
        deadline: None,
    };
    let mut trace = RunTrace::disabled();
    let mut tr = TraceCtx {
        trace: &mut trace,
        rule: 0,
        parent: NO_SPAN,
    };
    plan::execute(plan, &relations, &mut docs, &ctx, &mut tr)
        .expect_err("malformed plan must error, not panic")
}

fn assert_internal(err: EngineError, detail_fragment: &str) {
    let EngineError::Internal { rule, detail } = err else {
        panic!("expected EngineError::Internal, got {err:?}");
    };
    assert_eq!(rule, "Broken(x) <- ...");
    assert!(
        detail.contains(detail_fragment),
        "detail {detail:?} missing {detail_fragment:?}"
    );
    // The rendered message names the rule for the user.
    let msg = EngineError::Internal { rule, detail }.to_string();
    assert!(msg.contains("internal planner error"), "{msg}");
    assert!(msg.contains("Broken"), "{msg}");
}

#[test]
fn out_of_range_var_index_is_an_internal_error() {
    // Var(5) with only one declared variable: every row-binding access
    // would index out of bounds; validation must catch it up front.
    let plan = bare_plan(
        vec![Step::Scan {
            relation: "R".into(),
            terms: vec![PTerm::Var(5)],
        }],
        vec![HeadOut::Var(0)],
        &["x"],
    );
    assert_internal(run_expect_err(&plan), "out of range");
}

#[test]
fn out_of_range_head_var_is_an_internal_error() {
    let plan = bare_plan(vec![], vec![HeadOut::Var(3)], &["x"]);
    assert_internal(run_expect_err(&plan), "out of range");
}

#[test]
fn unbound_head_var_is_an_internal_error() {
    // No step binds x, but the head projects it.
    let plan = bare_plan(vec![], vec![HeadOut::Var(0)], &["x"]);
    assert_internal(run_expect_err(&plan), "unbound");
}

#[test]
fn unbound_ie_input_is_an_internal_error() {
    // Safety would order a producer before the IE call; a plan that
    // feeds an unbound variable must degrade to a structured error.
    let plan = bare_plan(
        vec![Step::Ie {
            function: "rgx".into(),
            inputs: vec![PTerm::Var(0), PTerm::Var(1)],
            outputs: vec![],
        }],
        vec![HeadOut::Const(Value::Int(1))],
        &["p", "t"],
    );
    assert_internal(run_expect_err(&plan), "unbound");
}

#[test]
fn unbound_compare_operand_is_an_internal_error() {
    let plan = bare_plan(
        vec![Step::Compare {
            left: PTerm::Var(0),
            op: spannerlog_parser::CmpOp::Lt,
            right: PTerm::Const(Value::Int(3)),
        }],
        vec![HeadOut::Const(Value::Int(1))],
        &["x"],
    );
    assert_internal(run_expect_err(&plan), "unbound");
}

#[test]
fn order_steps_moves_selective_scan_first() {
    // Big(x, y) ⋈ Small(y, z): textual order scans Big unkeyed (1000
    // rows); cost order starts from Small (4 rows) so the Big probe is
    // keyed on y.
    let mut plan = bare_plan(
        vec![
            Step::Scan {
                relation: "Big".into(),
                terms: vec![PTerm::Var(0), PTerm::Var(1)],
            },
            Step::Scan {
                relation: "Small".into(),
                terms: vec![PTerm::Var(1), PTerm::Var(2)],
            },
        ],
        vec![HeadOut::Var(0), HeadOut::Var(2)],
        &["x", "y", "z"],
    );
    let registry = Registry::new();
    optimizer::annotate(&mut plan, &registry);
    let opt = plan.opt.clone().unwrap();
    let sizes = |i: usize| if i == 0 { 1000 } else { 4 };
    assert_eq!(optimizer::order_steps(&plan, &opt, sizes), vec![1, 0]);
    // With the sizes reversed the textual order already wins.
    let sizes = |i: usize| if i == 0 { 4 } else { 1000 };
    assert_eq!(optimizer::order_steps(&plan, &opt, sizes), vec![0, 1]);
    let label = optimizer::describe(&plan, &[1, 0], |i| if i == 0 { 1000 } else { 4 });
    assert_eq!(label, "Small[4]* ⋈ Big[1000]*");
}

#[test]
fn filters_run_before_scans_once_runnable() {
    // Scan(x) then compare x < 3 then scan joining on x: the compare
    // should run immediately after its producer, ahead of the second
    // scan.
    let mut plan = bare_plan(
        vec![
            Step::Scan {
                relation: "A".into(),
                terms: vec![PTerm::Var(0)],
            },
            Step::Scan {
                relation: "B".into(),
                terms: vec![PTerm::Var(0), PTerm::Var(1)],
            },
            Step::Compare {
                left: PTerm::Var(0),
                op: spannerlog_parser::CmpOp::Lt,
                right: PTerm::Const(Value::Int(3)),
            },
        ],
        vec![HeadOut::Var(1)],
        &["x", "y"],
    );
    let registry = Registry::new();
    optimizer::annotate(&mut plan, &registry);
    let opt = plan.opt.clone().unwrap();
    assert_eq!(
        optimizer::order_steps(&plan, &opt, |_| 100),
        vec![0, 2, 1],
        "the comparison must be hoisted ahead of the second scan"
    );
}

#[test]
fn planner_session_reuses_indexes_and_reports_plans() {
    let program = "new Edge(int, int)
Edge(1, 2) Edge(2, 3) Edge(3, 4) Edge(4, 5) Edge(5, 6)
Path(x, y) <- Edge(x, y)
Path(x, z) <- Path(x, y), Edge(y, z)";
    let mut on = Session::builder().tracing(TraceLevel::Summary).build();
    on.run(program).unwrap();
    let rows_on = on.relation("Path").unwrap().sorted_tuples();
    let profile = on.profile().expect("summary tracing yields a profile");
    assert!(profile.index_builds > 0, "planner builds scan indexes");
    assert!(
        profile.index_hits > 0,
        "fixpoint rounds must reuse the Edge index (builds={}, hits={})",
        profile.index_builds,
        profile.index_hits
    );
    let table = profile.render();
    assert!(table.contains("plan:"), "per-rule plan lines:\n{table}");
    assert!(table.contains("indexes built"), "planner summary:\n{table}");

    // Planner off: same relation, no planner activity in the profile.
    let mut off = Session::builder()
        .planner(false)
        .tracing(TraceLevel::Summary)
        .build();
    off.run(program).unwrap();
    assert_eq!(rows_on, off.relation("Path").unwrap().sorted_tuples());
    let profile = off.profile().unwrap();
    assert_eq!((profile.index_builds, profile.index_hits), (0, 0));
    assert!(!profile.render().contains("plan:"));
}

#[test]
fn prefilter_counters_reach_the_profile() {
    // A literal-prefixed pattern over non-matching documents: every
    // search is prefilter-pruned, and the deltas land in the profile.
    let program = r#"new Texts(str)
Texts("nothing to see") Texts("still nothing")
Hit(s) <- Texts(t), rgx("zebra+", t) -> (s)"#;
    let mut session = Session::builder().tracing(TraceLevel::Summary).build();
    session.run(program).unwrap();
    session.export("?Hit(s)").unwrap();
    let profile = session.profile().unwrap();
    assert!(
        profile.prefilter_searches > 0,
        "rgx must route through the prefilter"
    );
    assert!(profile.prefilter_pruned > 0);
    assert!(profile.render().contains("prefilter:"));
}
