//! Integration tests for the `spannerlib_cache` subsystem: memoized IE
//! evaluation (hit accounting, invalidation on re-registration) and the
//! refcounted document-store lifecycle (bounded memory under long-lived
//! churn, compaction correctness, snapshot sharing).

use spannerlog_engine::{DocGc, Session};

/// One synthetic "clinical note"-sized document, unique per round.
fn churn_doc(round: usize) -> String {
    let mut text = format!("note {round}: ");
    for w in 0..300 {
        text.push_str(&format!("word{round}x{w} "));
        if w % 10 == 0 {
            text.push_str(&format!("code-{round}-{w} "));
        }
    }
    text
}

const CHURN_RULE: &str = r#"Code(d, s) <- Texts(d, t), rgx("code-[0-9]+-[0-9]+", t) -> (s)"#;

/// The ROADMAP churn scenario: a long-lived session streaming distinct
/// documents through import → execute → remove_relation. With a GC
/// threshold configured, doc-store bytes stay bounded — compaction
/// reclaims removed documents instead of growing without bound.
#[test]
fn long_lived_churn_keeps_doc_store_bounded() {
    const MEMO_BUDGET: usize = 32 * 1024;
    const GC_WATERMARK: usize = 64 * 1024;
    let mut session = Session::builder()
        .ie_cache_capacity(MEMO_BUDGET)
        .doc_gc(DocGc::Threshold {
            bytes: GC_WATERMARK,
        })
        .build();
    session
        .import_typed("Texts", vec![("d".to_string(), churn_doc(0))])
        .unwrap();
    session.run(CHURN_RULE).unwrap();
    let query = session.prepare("?Code(d, s)").unwrap();

    let mut total_text_bytes = 0usize;
    let mut peak_bytes = 0usize;
    for round in 0..100 {
        let text = churn_doc(round);
        total_text_bytes += text.len();
        session
            .import_typed("Texts", vec![(format!("doc-{round}"), text)])
            .unwrap();
        let out = query.execute(&mut session).unwrap();
        assert!(out.num_rows() > 0, "round {round} extracted nothing");
        session.remove_relation("Texts").unwrap();
        peak_bytes = peak_bytes.max(session.docs().bytes());
    }

    // The stream interned far more text than the bound we assert.
    assert!(
        total_text_bytes > 180 * 1024,
        "workload too small to prove anything"
    );
    // Bounded: watermark + one in-flight document + memo-pinned docs
    // (the memo's byte budget also bounds what it can root).
    let bound = GC_WATERMARK + MEMO_BUDGET + 8 * 1024;
    assert!(
        peak_bytes < bound,
        "doc store peaked at {peak_bytes} bytes (bound {bound})"
    );
    assert!(
        session.docs().epoch() > 0,
        "threshold policy never ran a compaction pass"
    );

    // The derived relation still roots the final round's document —
    // compaction is exact, not eager.
    session.clear_ie_cache();
    let partial = session.compact_docs();
    assert_eq!(partial.kept_docs, 1, "Code(d, s) spans pin the last doc");

    // Dropping that last root releases everything.
    session.remove_relation("Code").unwrap();
    let report = session.compact_docs();
    assert_eq!(session.docs().bytes(), 0, "final report: {report:?}");
    assert_eq!(session.docs().len(), 0);
}

/// Cold/warm accounting: re-running the fixpoint over unchanged
/// documents serves IE calls from the memo, and the counters say so.
#[test]
fn warm_reruns_hit_the_memo() {
    let mut session = Session::new();
    session
        .import_typed(
            "Texts",
            vec![
                (
                    "a".to_string(),
                    "reach me at ann@work and bob@home".to_string(),
                ),
                ("b".to_string(), "nothing to see".to_string()),
            ],
        )
        .unwrap();
    session
        .run(r#"Email(d, s) <- Texts(d, t), rgx_string("[a-z]+@[a-z]+", t) -> (s)"#)
        .unwrap();
    // A side relation the program reads, so bumping it forces reruns.
    session.run("new Tick(int)\nTicked(x) <- Tick(x)").unwrap();
    let query = session.prepare("?Email(d, s)").unwrap();

    let cold = query.execute(&mut session).unwrap();
    let after_cold = session.stats().cache;
    assert!(after_cold.misses > 0);
    assert_eq!(after_cold.hits, 0);

    for i in 0..5 {
        session.add_fact("Tick", [i64::from(i).into()]).unwrap();
        let warm = query.execute(&mut session).unwrap();
        assert_eq!(warm, cold);
    }
    let after_warm = session.stats().cache;
    assert!(
        after_warm.hits >= 5 * 2,
        "five forced reruns over two documents should all hit: {after_warm:?}"
    );
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "no new IE computation on warm reruns"
    );
}

/// Re-registering a function under a cached name must invalidate its
/// memoized results — the new body wins.
#[test]
fn reregistration_invalidates_memoized_results() {
    let mut session = Session::new();
    session.register("probe", Some(1), |args, _| Ok(vec![vec![args[0].clone()]]));
    session
        .run("new S(int)\nS(1)\nD(y) <- S(x), probe(x) -> (y)")
        .unwrap();
    let first: Vec<(i64,)> = session.export_typed("?D(y)").unwrap();
    assert_eq!(first, vec![(1,)]);

    session.register("probe", Some(1), |args, _| {
        Ok(vec![vec![(args[0].as_int().unwrap() + 100).into()]])
    });
    let second: Vec<(i64,)> = session.export_typed("?D(y)").unwrap();
    assert_eq!(second, vec![(101,)], "stale memo served the old body");
}

/// Uncached closures are re-invoked on every rerun even with the cache
/// enabled.
#[test]
fn uncached_closures_bypass_the_memo() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let calls = Arc::new(AtomicUsize::new(0));
    let seen = calls.clone();
    let mut session = Session::builder()
        .register_uncached("volatile", Some(1), move |args, _| {
            seen.fetch_add(1, Ordering::SeqCst);
            Ok(vec![vec![args[0].clone()]])
        })
        .build();
    session
        .run("new S(int)\nnew Tick(int)\nS(1)\nTicked(x) <- Tick(x)\nD(y) <- S(x), volatile(x) -> (y)")
        .unwrap();
    let query = session.prepare("?D(y)").unwrap();
    query.execute(&mut session).unwrap();
    let baseline = calls.load(Ordering::SeqCst);
    session.add_fact("Tick", [1i64.into()]).unwrap();
    query.execute(&mut session).unwrap();
    assert!(
        calls.load(Ordering::SeqCst) > baseline,
        "uncached function was served from the memo"
    );
    assert_eq!(session.stats().cache.hits, 0);
}

/// Binding rows that share an argument tuple are deduplicated into one
/// call for cacheable functions — but an *uncached* function is invoked
/// once per row (its repeated calls may legitimately differ).
#[test]
fn shared_argument_rows_batch_only_for_cacheable_functions() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn run_with(register_uncached: bool) -> usize {
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = calls.clone();
        let f = move |args: &[spannerlib_core::Value],
                      _: &mut spannerlog_engine::IeContext<'_>|
              -> spannerlog_engine::Result<spannerlog_engine::IeOutput> {
            seen.fetch_add(1, Ordering::SeqCst);
            Ok(vec![vec![args[0].clone()]])
        };
        let builder = Session::builder();
        let mut session = if register_uncached {
            builder.register_uncached("probe", Some(1), f).build()
        } else {
            builder.register("probe", Some(1), f).build()
        };
        // Three rows project the same argument value 7.
        session
            .import_typed("S", vec![(7i64, 1i64), (7, 2), (7, 3)])
            .unwrap();
        session.run("D(a, y) <- S(a, b), probe(a) -> (y)").unwrap();
        session.ensure_evaluated().unwrap();
        calls.load(Ordering::SeqCst)
    }

    assert_eq!(run_with(false), 1, "cacheable: one call per distinct tuple");
    assert_eq!(run_with(true), 3, "uncached: one call per binding row");
}

/// Compaction keeps every id a live span references (across extensional
/// *and* derived relations), and snapshots share the memo read-only.
#[test]
fn compaction_preserves_live_spans_and_snapshots_observe_stats() {
    let mut session = Session::new();
    session
        .import_typed(
            "Texts",
            vec![
                ("keep".to_string(), "alpha beta".to_string()),
                ("drop".to_string(), "gamma delta".to_string()),
            ],
        )
        .unwrap();
    session
        .run(r#"W(d, s) <- Texts(d, t), rgx("[a-z]+", t) -> (s)"#)
        .unwrap();
    session.ensure_evaluated().unwrap();
    assert_eq!(session.docs().len(), 2);

    // Re-import without the second text: its spans die with the next
    // fixpoint; clearing the memo drops the last roots.
    session
        .import_typed(
            "Texts",
            vec![("keep".to_string(), "alpha beta".to_string())],
        )
        .unwrap();
    session.ensure_evaluated().unwrap();
    session.clear_ie_cache();
    let report = session.compact_docs();
    assert_eq!(report.removed_docs, 1);
    assert_eq!(session.docs().len(), 1);

    // Surviving spans still resolve to their text.
    let words = session.relation("W").unwrap();
    for tuple in words.sorted_tuples() {
        let span = tuple[1].as_span().unwrap();
        assert!(!session.span_text(span).unwrap().is_empty());
    }

    // Snapshots share the memo: stats observed through the snapshot
    // match the session's.
    let snapshot = session.snapshot().unwrap();
    assert_eq!(snapshot.cache_stats(), session.stats().cache);
}
