//! Lifecycle tests for the prepare-once/execute-many API: builder,
//! prepared programs/queries, typed exports, snapshots, generation
//! counters, and resource limits.

use spannerlib_core::{Schema, Value, ValueType};
use spannerlib_dataframe::{DataFrame, FrameError, FromRow};
use spannerlog_engine::{EngineError, Session, Snapshot};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const EMAIL_RULE: &str =
    r#"R(usr, dom) <- Texts(d, t), rgx_string("(\w+)@(\w+)\.\w+", t) -> (usr, dom)."#;

fn texts_frame(rows: &[(&str, &str)]) -> DataFrame {
    DataFrame::from_rows(
        vec!["date".into(), "text".into()],
        rows.iter()
            .map(|(d, t)| vec![Value::str(*d), Value::str(*t)])
            .collect(),
    )
    .unwrap()
}

/// One prepared query, re-executed across three fresh imports, must
/// match a fresh session per batch (the split-correctness factoring).
#[test]
fn prepared_query_reused_across_imports_matches_fresh_sessions() {
    let batches: Vec<Vec<(&str, &str)>> = vec![
        vec![("d1", "ann@gmail.com and bob@work.org")],
        vec![("d2", "eve@gmail.com"), ("d3", "no emails here")],
        vec![("d4", "zed@mail.net or ann@gmail.com")],
    ];

    let mut session = Session::new();
    session
        .import_dataframe(&texts_frame(&batches[0]), "Texts")
        .unwrap();
    session.run(EMAIL_RULE).unwrap();
    let query = session.prepare(r#"?R(usr, dom)"#).unwrap();

    for batch in &batches {
        session
            .import_dataframe(&texts_frame(batch), "Texts")
            .unwrap();
        let prepared_out = query.execute(&mut session).unwrap();

        // Reference: a brand-new session driven with the paper verbs.
        let mut fresh = Session::new();
        fresh
            .import_dataframe(&texts_frame(batch), "Texts")
            .unwrap();
        fresh.run(EMAIL_RULE).unwrap();
        let fresh_out = fresh.export("?R(usr, dom)").unwrap();

        assert_eq!(prepared_out, fresh_out, "batch {batch:?}");
    }
}

/// The fixpoint reruns only when an *input* relation of the prepared
/// program changed — observed via an IE call counter.
#[test]
fn unchanged_edb_skips_the_fixpoint() {
    let calls = Arc::new(AtomicUsize::new(0));
    let seen = calls.clone();
    let mut session = Session::builder()
        .register("probe", Some(1), move |args, _ctx| {
            seen.fetch_add(1, Ordering::SeqCst);
            Ok(vec![vec![args[0].clone()]])
        })
        .build();
    session
        .run("new S(int)\nnew Unrelated(int)\nS(1)\nP(y) <- S(x), probe(x) -> (y)")
        .unwrap();
    let query = session.prepare("?P(y)").unwrap();

    query.execute(&mut session).unwrap();
    let after_first = calls.load(Ordering::SeqCst);
    assert!(after_first > 0);

    // Re-executing with nothing changed: no IE calls.
    query.execute(&mut session).unwrap();
    query.execute(&mut session).unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), after_first);

    // Mutating a relation the program does not read: still no re-run.
    session.add_fact("Unrelated", [Value::Int(7)]).unwrap();
    query.execute(&mut session).unwrap();
    assert_eq!(calls.load(Ordering::SeqCst), after_first);

    // Mutating an input relation: the fixpoint reruns.
    session.add_fact("S", [Value::Int(2)]).unwrap();
    query.execute(&mut session).unwrap();
    assert!(calls.load(Ordering::SeqCst) > after_first);
}

/// Importing over a name that was only rule-derived until now makes it
/// extensional — dependent queries must see the change (regression
/// test: the derived-name branch used to skip invalidation and serve
/// stale results).
#[test]
fn import_over_materialized_derived_relation_retriggers_fixpoint() {
    let mut session = Session::new();
    session
        .run("new S(int)\nS(1)\nD(x) <- S(x)\nH(x) <- D(x)")
        .unwrap();
    // Prepare while D is still derived-only, then materialize it.
    let query = session.prepare("?H(x)").unwrap();
    assert_eq!(query.execute(&mut session).unwrap().num_rows(), 1);

    // Shadow D with imported facts; H must re-derive over the union of
    // the import and the still-active rule — through the *old* prepared
    // query (regression: D was once excluded from its fingerprint
    // inputs because it was derived at prepare time) and through a
    // fresh export alike.
    session.import_typed("D", vec![(5i64,)]).unwrap();
    let via_prepared: Vec<(i64,)> = query.execute_typed(&mut session).unwrap();
    assert_eq!(via_prepared, vec![(1,), (5,)]);
    let via_export: Vec<(i64,)> = session.export_typed("?H(x)").unwrap();
    assert_eq!(via_export, via_prepared);
}

/// A relation that is both extensional and a rule head: host facts
/// added to it between executions must re-trigger the fixpoint
/// (regression test — excluding rule heads from the fingerprint's input
/// set silently served stale results here).
#[test]
fn fact_into_extensional_rule_head_retriggers_fixpoint() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new G(int)
            new E(int)
            G(1)
            E(x) <- G(x)
            H(x) <- E(x)
        "#,
        )
        .unwrap();
    let query = session.prepare("?H(x)").unwrap();
    assert_eq!(query.execute(&mut session).unwrap().num_rows(), 1);

    // E is a rule head *and* extensional; a direct fact must show up.
    session.add_fact("E", [Value::Int(5)]).unwrap();
    let live = query.execute(&mut session).unwrap();

    let mut fresh = Session::new();
    fresh
        .run("new G(int)\nnew E(int)\nG(1)\nE(5)\nE(x) <- G(x)\nH(x) <- E(x)")
        .unwrap();
    let reference = fresh.export("?H(x)").unwrap();
    assert_eq!(live, reference);
    assert_eq!(live.num_rows(), 2);
}

/// Per-tuple provenance regression: a relation that is both imported
/// and a rule head must drop *stale derived* tuples when the rule's
/// inputs are re-imported, while keeping host-asserted facts — exact
/// re-import semantics, matching a fresh session per batch.
#[test]
fn reimport_retracts_stale_derived_tuples_from_extensional_heads() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new In(int)
            new Out(int)
            Out(99)
            In(1)
            Out(x) <- In(x)
        "#,
        )
        .unwrap();
    let query = session.prepare("?Out(x)").unwrap();
    let first: Vec<(i64,)> = query.execute_typed(&mut session).unwrap();
    assert_eq!(first, vec![(1,), (99,)]);

    // Re-import the rule's input: Out(1) was derived from the old
    // In(1) and must vanish; the fact Out(99) must survive.
    session.import_typed("In", vec![(2i64,)]).unwrap();
    let second: Vec<(i64,)> = query.execute_typed(&mut session).unwrap();
    assert_eq!(second, vec![(2,), (99,)]);

    // Repeated churn stays exact (no accumulation across batches).
    for batch in [vec![(3i64,)], vec![(4i64,), (5,)], vec![]] {
        session.import_typed("In", batch.clone()).unwrap();
        let got: Vec<(i64,)> = query.execute_typed(&mut session).unwrap();
        let mut expected: Vec<(i64,)> = batch;
        expected.push((99,));
        expected.sort();
        assert_eq!(got, expected);
    }
}

/// Compile-time assertion: snapshots cross and are shared between
/// threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>()
};

/// Four threads querying one snapshot agree with serial execution, and
/// the writer session keeps mutating independently.
#[test]
fn snapshot_concurrent_queries_agree_with_serial() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new Edge(int, int)
            Edge(1, 2) Edge(2, 3) Edge(3, 4) Edge(4, 5) Edge(2, 5)
            Path(x, y) <- Edge(x, y)
            Path(x, z) <- Path(x, y), Edge(y, z)
        "#,
        )
        .unwrap();
    let query = session.prepare("?Path(x, y)").unwrap();
    let snapshot = session.snapshot().unwrap();
    let serial = snapshot.execute(&query).unwrap();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let snapshot = &snapshot;
                let query = &query;
                scope.spawn(move || snapshot.execute(query).unwrap())
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), serial);
        }
    });

    // The writer is not locked out: mutate and diverge from the frozen
    // snapshot.
    session
        .add_fact("Edge", [Value::Int(5), Value::Int(6)])
        .unwrap();
    let live = query.execute(&mut session).unwrap();
    assert!(live.num_rows() > serial.num_rows());
    assert_eq!(snapshot.execute(&query).unwrap(), serial);
}

/// Safety-checker rejection surfaces at prepare() time, carrying the
/// offending rule's source position.
#[test]
fn unsafe_rule_rejected_at_prepare_time_with_position() {
    let mut session = Session::new();
    session.run("new S(str)\nR(x, y) <- S(x)").unwrap();
    let err = session.prepare("?R(x, y)").unwrap_err();
    match err {
        EngineError::Unsafe { line, ref msg } => {
            assert_eq!(line, 2, "span points at the rule head: {msg}");
        }
        other => panic!("expected Unsafe, got {other:?}"),
    }
}

/// Parse errors at prepare() time carry byte offsets and render a caret
/// diagnostic pointing at the offending token.
#[test]
fn prepare_parse_error_renders_caret() {
    let mut session = Session::new();
    let src = "?R(x, \nbad syntax here)";
    let err = session.prepare(src).unwrap_err();
    let EngineError::Parse(parse_err) = err else {
        panic!("expected Parse error");
    };
    assert_eq!(parse_err.line, 2);
    assert!(parse_err.offset > 0);
    let rendered = parse_err.render(src);
    assert!(rendered.contains('^'), "{rendered}");
    assert!(rendered.contains("bad syntax here"), "{rendered}");
}

/// Importing over an existing relation with a different schema is a
/// real error now.
#[test]
fn import_schema_mismatch_is_rejected() {
    let mut session = Session::new();
    let original = DataFrame::from_rows(
        vec!["user".into(), "count".into()],
        vec![vec![Value::str("ann"), Value::Int(3)]],
    )
    .unwrap();
    session.import_dataframe(&original, "Counts").unwrap();

    // Same schema: replacement is fine.
    let same = DataFrame::from_rows(
        vec!["user".into(), "count".into()],
        vec![vec![Value::str("bob"), Value::Int(9)]],
    )
    .unwrap();
    session.import_dataframe(&same, "Counts").unwrap();

    // Different schema: rejected, relation untouched.
    let retyped = DataFrame::from_rows(
        vec!["user".into(), "count".into()],
        vec![vec![Value::str("eve"), Value::str("not a count")]],
    )
    .unwrap();
    let err = session.import_dataframe(&retyped, "Counts").unwrap_err();
    assert!(matches!(err, EngineError::SchemaMismatch { .. }));
    let out = session.export("?Counts(u, c)").unwrap();
    assert_eq!(out.get(0, 0), Some(Value::str("bob")));
}

/// remove_relation evicts state; the slot can then be retyped.
#[test]
fn remove_relation_evicts_and_allows_retyping() {
    let mut session = Session::new();
    session.run("new S(int)\nS(1)").unwrap();
    session.remove_relation("S").unwrap();
    assert!(matches!(
        session.remove_relation("S").unwrap_err(),
        EngineError::UnknownRelation(_)
    ));
    // The name is free again, with a new schema.
    session
        .declare("S", Schema::new(vec![ValueType::Str]))
        .unwrap();
    session.add_fact("S", [Value::str("now a string")]).unwrap();
    assert_eq!(session.export("?S(x)").unwrap().num_rows(), 1);
}

/// clear_rules drops derived content but keeps facts and registrations.
#[test]
fn clear_rules_keeps_facts() {
    let mut session = Session::new();
    session.run("new S(int)\nS(1)\nD(x) <- S(x)").unwrap();
    assert_eq!(session.export("?D(x)").unwrap().num_rows(), 1);
    session.clear_rules();
    assert_eq!(session.rule_count(), 0);
    assert_eq!(session.export("?D(x)").unwrap().num_rows(), 0);
    assert_eq!(session.export("?S(x)").unwrap().num_rows(), 1);
}

/// Builder-configured resource limits abort runaway evaluations.
#[test]
fn limits_abort_runaway_evaluation() {
    let program = r#"
        new Edge(int, int)
        Edge(1, 2) Edge(2, 3) Edge(3, 4) Edge(4, 5) Edge(5, 6) Edge(6, 7)
        Path(x, y) <- Edge(x, y)
        Path(x, z) <- Path(x, y), Edge(y, z)
    "#;

    let mut capped_rounds = Session::builder().max_fixpoint_rounds(2).build();
    capped_rounds.run(program).unwrap();
    assert!(matches!(
        capped_rounds.export("?Path(x, y)").unwrap_err(),
        EngineError::LimitExceeded {
            resource: "fixpoint rounds",
            limit: 2,
            ..
        }
    ));

    let mut capped_rows = Session::builder().max_materialized_rows(5).build();
    capped_rows.run(program).unwrap();
    assert!(matches!(
        capped_rows.export("?Path(x, y)").unwrap_err(),
        EngineError::LimitExceeded {
            resource: "materialized rows",
            limit: 5,
            ..
        }
    ));

    // Generous limits do not interfere.
    let mut roomy = Session::builder()
        .max_fixpoint_rounds(1_000)
        .max_materialized_rows(1_000_000)
        .build();
    roomy.run(program).unwrap();
    assert_eq!(roomy.export("?Path(\"1\", y)").unwrap().num_rows(), 0);
    assert_eq!(roomy.export("?Path(1, y)").unwrap().num_rows(), 6);
}

/// Typed export: rows land in host tuples and domain structs.
#[test]
fn typed_export_and_import() {
    #[derive(Debug, PartialEq)]
    struct Email {
        user: String,
        domain: String,
    }

    impl FromRow for Email {
        fn from_row(row: &[Value]) -> Result<Self, FrameError> {
            let (user, domain) = FromRow::from_row(row)?;
            Ok(Email { user, domain })
        }
    }

    let mut session = Session::new();
    // Typed import: tuples of primitives become a relation.
    session
        .import_typed(
            "Texts",
            vec![
                ("2024-01-01", "write to ann@gmail.com"),
                ("2024-01-02", "or eve@gmail.com"),
            ],
        )
        .unwrap();
    session.run(EMAIL_RULE).unwrap();

    let emails: Vec<Email> = session.export_typed("?R(usr, dom)").unwrap();
    assert_eq!(
        emails,
        vec![
            Email {
                user: "ann".into(),
                domain: "gmail".into()
            },
            Email {
                user: "eve".into(),
                domain: "gmail".into()
            },
        ]
    );

    // Tuple form works without a struct, on sessions and snapshots.
    let pairs: Vec<(String, String)> = session.export_typed("?R(usr, dom)").unwrap();
    assert_eq!(pairs[0].0, "ann");
    let query = session.prepare("?R(usr, dom)").unwrap();
    let snapshot = session.snapshot().unwrap();
    let from_snapshot: Vec<(String, String)> = snapshot.execute_typed(&query).unwrap();
    assert_eq!(from_snapshot, pairs);

    // Type mismatches are real errors, not silent coercions.
    let err = session
        .export_typed::<(i64, String)>("?R(usr, dom)")
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Frame(FrameError::CellType { index: 0, .. })
    ));
}

/// An empty typed import needs an existing relation for its schema; a
/// non-empty one replaces content wholesale.
#[test]
fn typed_import_empty_and_replacement() {
    let mut session = Session::new();
    let no_rows: Vec<(i64,)> = Vec::new();
    assert!(matches!(
        session
            .import_typed("Missing", no_rows.clone())
            .unwrap_err(),
        EngineError::UnknownRelation(_)
    ));

    session.import_typed("N", vec![(1i64,), (2,)]).unwrap();
    assert_eq!(session.export("?N(x)").unwrap().num_rows(), 2);
    session.import_typed("N", no_rows).unwrap();
    assert_eq!(session.export("?N(x)").unwrap().num_rows(), 0);
}

/// `Snapshot::fingerprint()` is a content identity for serving-layer
/// validators (ETags): stable across no-op snapshots and mutations of
/// relations the program never reads, changed by input churn and by
/// recompilation.
#[test]
fn snapshot_fingerprint_tracks_read_relations_only() {
    let mut session = Session::new();
    session
        .run("new S(int)\nnew Unrelated(int)\nS(1)\nP(x) <- S(x)")
        .unwrap();
    let fp1 = session.snapshot().unwrap().fingerprint();
    // Stable across no-op snapshots.
    assert_eq!(session.snapshot().unwrap().fingerprint(), fp1);
    // A mutation the program does not read leaves it unchanged.
    session.add_fact("Unrelated", [Value::Int(7)]).unwrap();
    assert_eq!(session.snapshot().unwrap().fingerprint(), fp1);
    // Churning an input relation moves it.
    session.add_fact("S", [Value::Int(2)]).unwrap();
    let fp2 = session.snapshot().unwrap().fingerprint();
    assert_ne!(fp2, fp1);
    // A recompile moves it even with inputs untouched.
    session.run("Q(x) <- S(x)").unwrap();
    let fp3 = session.snapshot().unwrap().fingerprint();
    assert_ne!(fp3, fp2);
}

/// Serving-shaped churn: one writer keeps importing and publishing new
/// snapshots while reader threads execute against whichever snapshot is
/// current. Every observation must be internally consistent (a snapshot
/// of `n` inputs always yields exactly `n * n` join rows).
#[test]
fn writer_churn_under_concurrent_snapshot_readers() {
    use std::sync::atomic::AtomicBool;
    use std::sync::RwLock;

    let mut session = Session::new();
    session.run("new V(int)\nD(x, y) <- V(x), V(y)").unwrap();
    session.import_typed("V", vec![(0i64,)]).unwrap();
    let query = session.prepare("?D(x, y)").unwrap();
    let published: RwLock<Arc<(usize, Snapshot)>> =
        RwLock::new(Arc::new((1, session.snapshot().unwrap())));
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let published = &published;
                let stop = &stop;
                let query = &query;
                scope.spawn(move || {
                    let mut executions = 0usize;
                    while !stop.load(Ordering::SeqCst) {
                        let current = published.read().unwrap().clone();
                        let (n, snapshot) = &*current;
                        let frame = snapshot.execute(query).unwrap();
                        assert_eq!(frame.num_rows(), n * n, "torn snapshot at n={n}");
                        executions += 1;
                    }
                    executions
                })
            })
            .collect();

        // The writer churns imports and republishes; readers are never
        // blocked and never observe a half-applied import.
        for n in 2..=20usize {
            let rows: Vec<(i64,)> = (0..n as i64).map(|i| (i,)).collect();
            session.import_typed("V", rows).unwrap();
            let snapshot = session.snapshot().unwrap();
            *published.write().unwrap() = Arc::new((n, snapshot));
        }
        stop.store(true, Ordering::SeqCst);
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers must have made progress");
    });
}

/// A prepared program hands out many queries over one compilation.
#[test]
fn prepared_program_serves_multiple_queries() {
    let mut session = Session::new();
    session
        .run(
            r#"
            new M(str, int)
            M("a", 1) M("a", 3) M("b", 10)
            Stats(g, sum(x)) <- M(g, x)
        "#,
        )
        .unwrap();
    let program = session.prepare_program().unwrap();
    assert_eq!(program.program().rule_count(), 1);
    assert_eq!(program.program().input_relations(), ["M"]);

    let by_group = program.query("?Stats(g, s)").unwrap();
    let just_a = program.query(r#"?Stats("a", s)"#).unwrap();
    assert_eq!(by_group.execute(&mut session).unwrap().num_rows(), 2);
    let a: Vec<(i64,)> = just_a.execute_typed(&mut session).unwrap();
    assert_eq!(a, vec![(4,)]);
}
