//! Cost-based step ordering and per-execution index reuse.
//!
//! Safety analysis ([`crate::safety`]) emits each rule body as a
//! *correct* pipeline — every step's variables are bound by the time it
//! runs — but in textual atom order. This module adds the planner on
//! top of that invariant:
//!
//! * [`annotate`] runs once per rule at compile time (from
//!   `CompiledProgram::compile`) and records, per step, which variables
//!   it **needs** bound, which it can **bind**, and whether it is an
//!   ordering **barrier** (an uncacheable IE call: invoked once per
//!   binding row, so its observable behaviour depends on its position).
//! * [`order_steps`] runs per rule firing, when relation cardinalities
//!   are known, and greedily picks the cheapest runnable step: filters
//!   first, then IE calls whose inputs are bound, then scans by
//!   estimated fan-out (relation size discounted per bound join
//!   column). Barriers are never crossed in either direction.
//! * [`IndexCache`] keeps the hash indexes [`crate::plan`] builds for
//!   scan joins alive for the whole evaluation run, keyed by
//!   `(relation, row count, key columns)`. Within one run relations
//!   only grow (their extensional generation is fixed and derived
//!   inserts are append-only), so the row count is a faithful
//!   within-run generation: fixpoint rounds and sibling rules reuse
//!   identical indexes instead of rebuilding them.
//!
//! Any permutation respecting the `needs ⊆ bound` invariant and the
//! barriers is observationally equivalent: scans, negations, and
//! comparisons are pure, joins commute, and the head projection works
//! on set semantics. The `planner_on_off_agree` property test
//! (`crates/engine/tests/properties.rs`) pins that equivalence.

use crate::plan::{PTerm, RulePlan, Step};
use crate::registry::Registry;
use rustc_hash::FxHashMap;
use spannerlib_core::{Tuple, Value};
use std::rc::Rc;

/// Per-step scheduling metadata (see [`annotate`]).
#[derive(Debug, Clone, Default)]
pub struct StepMeta {
    /// Variables that must already be bound for the step to run.
    pub needs: Vec<usize>,
    /// Variables the step can bind.
    pub binds: Vec<usize>,
    /// Whether the step pins the relative order of everything around it
    /// (uncacheable IE calls — one invocation per row, order-sensitive).
    pub barrier: bool,
}

/// Compile-time planner annotation of one rule, stored on
/// [`RulePlan::opt`].
#[derive(Debug, Clone, Default)]
pub struct RuleOpt {
    /// One entry per plan step, in plan order.
    pub steps: Vec<StepMeta>,
    /// Split-correctness verdict: may the rule's firings be sharded by
    /// document and evaluated on worker threads?
    pub split: SplitClass,
}

/// Compile-time split-correctness classification of one rule (after
/// Doleschal et al.: a program split that evaluates each document
/// independently is *split-correct* when the per-document unions equal
/// the whole-corpus result).
///
/// The analysis is conservative: a rule is `Parallel` only when every
/// IE call is rooted at a single scan variable (the *document
/// variable*), so partitioning binding rows by that variable's document
/// provably commutes with the remaining steps. Everything else —
/// aggregation (which folds across documents), uncacheable IE calls
/// (order-sensitive), cross-document joins feeding IE — falls back to
/// the serial path with a human-readable reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitClass {
    /// Shard-parallel: binding rows may be partitioned on `doc_var`
    /// (a plan variable index) and evaluated per shard.
    Parallel {
        /// Index of the document variable the shards partition on.
        doc_var: usize,
    },
    /// Serial fallback, with the reason the analysis rejected sharding.
    Serial {
        /// Human-readable rejection reason (surfaced by `ShardPlan`).
        reason: &'static str,
    },
}

impl Default for SplitClass {
    fn default() -> Self {
        SplitClass::Serial {
            reason: "unclassified",
        }
    }
}

impl SplitClass {
    /// Whether the rule may run shard-parallel.
    pub fn is_parallel(&self) -> bool {
        matches!(self, SplitClass::Parallel { .. })
    }
}

fn term_vars(terms: &[PTerm], out: &mut Vec<usize>) {
    for t in terms {
        if let PTerm::Var(v) = t {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    }
}

/// Computes and stores the scheduling metadata for `plan`. Called once
/// from `CompiledProgram::compile`; plans without the annotation (e.g.
/// hand-built) simply execute in textual order.
pub fn annotate(plan: &mut RulePlan, registry: &Registry) {
    let steps: Vec<StepMeta> = plan
        .steps
        .iter()
        .map(|step| {
            let mut meta = StepMeta::default();
            match step {
                Step::Scan { terms, .. } => term_vars(terms, &mut meta.binds),
                Step::Ie {
                    function,
                    inputs,
                    outputs,
                } => {
                    term_vars(inputs, &mut meta.needs);
                    term_vars(outputs, &mut meta.binds);
                    // Unknown functions stay conservative barriers; the
                    // execute-time registry lookup reports the error.
                    meta.barrier = registry
                        .ie(function)
                        .map(|f| !f.cacheable())
                        .unwrap_or(true);
                }
                Step::Negation { terms, .. } => term_vars(terms, &mut meta.needs),
                Step::Compare { left, op: _, right } => {
                    term_vars(std::slice::from_ref(left), &mut meta.needs);
                    term_vars(std::slice::from_ref(right), &mut meta.needs);
                }
            }
            meta
        })
        .collect();
    let split = classify(plan, &steps);
    plan.opt = Some(RuleOpt { steps, split });
}

/// Split-correctness analysis (see [`SplitClass`]). Walks the body in
/// textual order tracing each variable back to the scan that *roots*
/// it: scans root their own variables, IE outputs inherit the root of
/// the IE inputs. A rule shards cleanly iff every IE call is fed from
/// exactly one root — that root's first IE input variable becomes the
/// document variable the shards partition on.
fn classify(plan: &RulePlan, metas: &[StepMeta]) -> SplitClass {
    if plan.has_aggregation() {
        return SplitClass::Serial {
            reason: "aggregation folds across documents",
        };
    }
    if metas.iter().any(|m| m.barrier) {
        return SplitClass::Serial {
            reason: "order-sensitive (uncacheable) IE call",
        };
    }
    if !plan.steps.iter().any(|s| matches!(s, Step::Ie { .. })) {
        return SplitClass::Serial {
            reason: "no IE step to parallelize",
        };
    }
    // For each variable: the index of the scan step that (transitively)
    // produced it, or `None` while unbound.
    let mut var_root: Vec<Option<usize>> = vec![None; plan.var_names.len()];
    let mut ie_root: Option<usize> = None;
    let mut doc_var: Option<usize> = None;
    for (i, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Scan { terms, .. } => {
                for t in terms {
                    if let PTerm::Var(v) = t {
                        if let Some(slot) = var_root.get_mut(*v) {
                            if slot.is_none() {
                                *slot = Some(i);
                            }
                        }
                    }
                }
            }
            Step::Ie {
                inputs, outputs, ..
            } => {
                let mut roots: Vec<usize> = Vec::new();
                let mut first_var: Option<usize> = None;
                for t in inputs {
                    if let PTerm::Var(v) = t {
                        first_var.get_or_insert(*v);
                        match var_root.get(*v).copied().flatten() {
                            Some(r) => {
                                if !roots.contains(&r) {
                                    roots.push(r);
                                }
                            }
                            None => {
                                return SplitClass::Serial {
                                    reason: "IE input not rooted at a scan",
                                }
                            }
                        }
                    }
                }
                let root = match roots[..] {
                    [] => {
                        return SplitClass::Serial {
                            reason: "IE call with constant-only inputs",
                        }
                    }
                    [r] => r,
                    _ => {
                        return SplitClass::Serial {
                            reason: "cross-document join feeds an IE call",
                        }
                    }
                };
                match ie_root {
                    None => {
                        ie_root = Some(root);
                        doc_var = first_var;
                    }
                    Some(r) if r != root => {
                        return SplitClass::Serial {
                            reason: "IE calls rooted at different scans",
                        }
                    }
                    Some(_) => {}
                }
                for t in outputs {
                    if let PTerm::Var(v) = t {
                        if let Some(slot) = var_root.get_mut(*v) {
                            if slot.is_none() {
                                *slot = Some(root);
                            }
                        }
                    }
                }
            }
            Step::Negation { .. } | Step::Compare { .. } => {}
        }
    }
    match doc_var {
        Some(doc_var) => SplitClass::Parallel { doc_var },
        None => SplitClass::Serial {
            reason: "IE call with constant-only inputs",
        },
    }
}

/// Assumed output rows per input row of a cacheable IE call — a handful
/// of matches per document. Scans estimating a larger fan-out run after
/// the IE call; smaller ones run before it.
const IE_FANOUT: usize = 4;

/// Estimated cost of running `step` next given the currently bound
/// variables: the approximate number of result rows per input row.
fn step_cost(
    step: &Step,
    index: usize,
    bound: &[bool],
    scan_rows: &mut dyn FnMut(usize) -> usize,
) -> usize {
    match step {
        // Pure filters can only shrink the row set.
        Step::Compare { .. } => 0,
        Step::Negation { .. } => 1,
        Step::Ie { .. } => IE_FANOUT,
        Step::Scan { terms, .. } => {
            let n = scan_rows(index);
            // Each bound join column is assumed ~8x selective.
            let k = terms
                .iter()
                .filter(|t| match t {
                    PTerm::Const(_) => true,
                    PTerm::Var(v) => bound.get(*v).copied().unwrap_or(false),
                    PTerm::Wildcard => false,
                })
                .count();
            if k == 0 {
                n
            } else {
                (n >> (3 * k).min(63)).max(1)
            }
        }
    }
}

/// Greedily orders the steps of `plan` by estimated cost, returning a
/// permutation of the original step indices. `scan_rows(i)` reports the
/// (delta-aware) cardinality of the relation scanned by step `i`.
///
/// Steps become *runnable* once their needed variables are bound;
/// uncacheable IE calls split the body into segments that are ordered
/// independently, so nothing migrates across them. The permutation
/// always exists: the textual order itself satisfies the binding
/// invariant, so the lowest unscheduled original index is runnable at
/// every point (ties prefer it, keeping the choice deterministic).
pub fn order_steps(
    plan: &RulePlan,
    opt: &RuleOpt,
    mut scan_rows: impl FnMut(usize) -> usize,
) -> Vec<usize> {
    let n = plan.steps.len();
    if n <= 1 || opt.steps.len() != n {
        return (0..n).collect();
    }
    let mut order = Vec::with_capacity(n);
    let mut bound = vec![false; plan.var_names.len()];
    let mut emitted = vec![false; n];
    // Segment boundaries: barriers pin themselves and fence both sides.
    let mut lo = 0;
    while lo < n {
        let hi = (lo..n).find(|&i| opt.steps[i].barrier).unwrap_or(n);
        // Order the pure segment [lo, hi).
        while order.len() < hi {
            let mut best: Option<(usize, usize)> = None;
            for (i, &done) in emitted.iter().enumerate().take(hi).skip(lo) {
                if done {
                    continue;
                }
                let meta = &opt.steps[i];
                if !meta.needs.iter().all(|&v| bound.get(v) == Some(&true)) {
                    continue;
                }
                let cost = step_cost(&plan.steps[i], i, &bound, &mut scan_rows);
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, i));
                }
            }
            // Unreachable for safety-produced plans; bail out to textual
            // order for anything malformed (execute reports the error).
            let Some((_, pick)) = best else {
                return (0..n).collect();
            };
            emitted[pick] = true;
            for &v in &opt.steps[pick].binds {
                if let Some(b) = bound.get_mut(v) {
                    *b = true;
                }
            }
            order.push(pick);
        }
        // Emit the barrier itself in place.
        if hi < n {
            emitted[hi] = true;
            for &v in &opt.steps[hi].binds {
                if let Some(b) = bound.get_mut(v) {
                    *b = true;
                }
            }
            order.push(hi);
        }
        lo = hi + 1;
    }
    order
}

/// Renders a chosen order as a one-line plan description for the trace,
/// e.g. `Docs[3] ⋈ rgx → Mentions[1200]` with estimated input
/// cardinalities. `moved` marks steps that left their textual position.
pub fn describe(
    plan: &RulePlan,
    order: &[usize],
    mut scan_rows: impl FnMut(usize) -> usize,
) -> String {
    let parts: Vec<String> = order
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            let moved = pos != i;
            let tag = |s: String| if moved { format!("{s}*") } else { s };
            match &plan.steps[i] {
                Step::Scan { relation, .. } => tag(format!("{relation}[{}]", scan_rows(i))),
                Step::Ie { function, .. } => tag(format!("{function}()")),
                Step::Negation { relation, .. } => tag(format!("!{relation}")),
                Step::Compare { .. } => tag("cmp".to_string()),
            }
        })
        .collect();
    parts.join(" ⋈ ")
}

/// An owned hash index over one relation, keyed by a fixed set of
/// columns. Shared via `Rc` between the cache and the borrowing scan.
#[derive(Debug)]
pub struct TupleIndex {
    /// Arity of the indexed tuples (uniform per relation). Checked
    /// against the scan's term count on reuse so an arity-mismatched
    /// plan errors exactly like the uncached path.
    pub arity: usize,
    /// Key projection → tuples with that projection.
    pub map: FxHashMap<Vec<Value>, Vec<Tuple>>,
}

/// Per-evaluation cache of scan-join indexes (see module docs for why
/// the row count is a sound within-run generation stand-in).
#[derive(Debug, Default)]
pub struct IndexCache {
    entries: FxHashMap<(String, usize, Vec<usize>), Rc<TupleIndex>>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Indexes built (cache misses).
    pub builds: u64,
}

impl IndexCache {
    /// Returns the cached index for `(relation, rows, key_cols)`.
    pub fn lookup(
        &mut self,
        relation: &str,
        rows: usize,
        key_cols: &[usize],
    ) -> Option<Rc<TupleIndex>> {
        let found = self
            .entries
            .get(&(relation.to_string(), rows, key_cols.to_vec()))
            .cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Stores a freshly built index.
    pub fn store(
        &mut self,
        relation: &str,
        rows: usize,
        key_cols: Vec<usize>,
        index: Rc<TupleIndex>,
    ) {
        self.builds += 1;
        self.entries
            .insert((relation.to_string(), rows, key_cols), index);
    }
}
