//! Query evaluation: `?R(usr, "gmail")` → DataFrame.
//!
//! Query terms follow the paper's §3.2 export syntax: constants and
//! wildcards *filter* the relation, variables *project* columns. A
//! repeated variable adds an equality constraint and projects once. A
//! variable-free query returns a single boolean column reporting whether
//! any tuple matched.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::safety::constant_value;
use rustc_hash::FxHashMap;
use spannerlib_core::{Relation, Schema, Tuple, Value};
use spannerlib_dataframe::DataFrame;
use spannerlog_parser::{Query, Term};

/// Evaluates `query` against (already fixpointed) `db`.
pub fn run_query(db: &Database, query: &Query) -> Result<DataFrame> {
    let empty = Relation::new(Schema::empty());
    let relation: &Relation = match db.relation(&query.predicate) {
        Ok(r) => r,
        // A derived relation that produced no tuples does not exist in
        // the database; treat as empty rather than unknown if some rule
        // could have produced it — the session layer passes only resolved
        // queries, so map unknown to an empty result with the right shape.
        Err(EngineError::UnknownRelation(_)) => &empty,
        Err(e) => return Err(e),
    };

    if !relation.schema().is_empty() && relation.schema().arity() != query.terms.len() {
        return Err(EngineError::Arity {
            relation: query.predicate.clone(),
            expected: relation.schema().arity(),
            actual: query.terms.len(),
        });
    }

    // Column plan: projected variables in first-occurrence order.
    let mut var_cols: Vec<(String, usize)> = Vec::new();
    let mut seen: FxHashMap<&str, usize> = FxHashMap::default();
    for (i, t) in query.terms.iter().enumerate() {
        if let Term::Variable(v) = t {
            if !seen.contains_key(v.as_str()) {
                seen.insert(v, i);
                var_cols.push((v.clone(), i));
            }
        }
    }

    let matches = |tuple: &Tuple| -> bool {
        query.terms.iter().enumerate().all(|(i, t)| match t {
            Term::Wildcard => true,
            Term::Const(c) => tuple[i] == constant_value(c),
            Term::Variable(v) => {
                // Repeated variables force equality with first occurrence.
                let first = seen[v.as_str()];
                tuple[i] == tuple[first]
            }
        })
    };

    if var_cols.is_empty() {
        // Boolean query.
        let holds = relation.iter().any(matches);
        return Ok(DataFrame::from_rows(
            vec!["result".to_string()],
            vec![vec![Value::Bool(holds)]],
        )?);
    }

    let names: Vec<String> = var_cols.iter().map(|(v, _)| v.clone()).collect();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for tuple in relation.sorted_tuples() {
        if matches(&tuple) {
            rows.push(var_cols.iter().map(|&(_, i)| tuple[i].clone()).collect());
        }
    }
    if rows.is_empty() {
        // Typed empty frame is impossible without tuples; fall back to
        // string columns, documenting the convention.
        return Ok(DataFrame::new(
            names
                .into_iter()
                .map(|n| (n, spannerlib_core::ValueType::Str))
                .collect(),
        )?);
    }
    Ok(DataFrame::from_rows(names, rows)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlib_core::ValueType;
    use spannerlog_parser::{parse_program, Statement};

    fn query(src: &str) -> Query {
        match parse_program(src).unwrap().statements.remove(0) {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.declare("R", Schema::new(vec![ValueType::Str, ValueType::Str]))
            .unwrap();
        for (a, b) in [("ann", "gmail"), ("bob", "work"), ("eve", "gmail")] {
            db.insert("R", Tuple::new([Value::str(a), Value::str(b)]))
                .unwrap();
        }
        db
    }

    #[test]
    fn constant_filters_variable_projects() {
        let df = run_query(&sample_db(), &query("?R(usr, \"gmail\")")).unwrap();
        assert_eq!(df.column_names(), &["usr"]);
        let users: Vec<Value> = df.iter_rows().map(|r| r[0].clone()).collect();
        assert_eq!(users, vec![Value::str("ann"), Value::str("eve")]);
    }

    #[test]
    fn wildcard_matches_anything() {
        let df = run_query(&sample_db(), &query("?R(usr, _)")).unwrap();
        assert_eq!(df.num_rows(), 3);
    }

    #[test]
    fn full_projection_sorted() {
        let df = run_query(&sample_db(), &query("?R(u, d)")).unwrap();
        assert_eq!(df.column_names(), &["u", "d"]);
        assert_eq!(df.get(0, 0), Some(Value::str("ann")));
    }

    #[test]
    fn repeated_variable_is_equality() {
        let mut db = Database::new();
        db.declare("P", Schema::new(vec![ValueType::Int, ValueType::Int]))
            .unwrap();
        db.insert("P", Tuple::new([Value::Int(1), Value::Int(1)]))
            .unwrap();
        db.insert("P", Tuple::new([Value::Int(1), Value::Int(2)]))
            .unwrap();
        let df = run_query(&db, &query("?P(x, x)")).unwrap();
        assert_eq!(df.num_rows(), 1);
        assert_eq!(df.column_names(), &["x"]);
    }

    #[test]
    fn boolean_query() {
        let df = run_query(&sample_db(), &query("?R(\"ann\", \"gmail\")")).unwrap();
        assert_eq!(df.get(0, 0), Some(Value::Bool(true)));
        let df = run_query(&sample_db(), &query("?R(\"ann\", \"work\")")).unwrap();
        assert_eq!(df.get(0, 0), Some(Value::Bool(false)));
    }

    #[test]
    fn empty_result_has_columns() {
        let df = run_query(&sample_db(), &query("?R(u, \"none\")")).unwrap();
        assert_eq!(df.num_rows(), 0);
        assert_eq!(df.column_names(), &["u"]);
    }

    #[test]
    fn missing_relation_is_empty() {
        let df = run_query(&Database::new(), &query("?Nothing(x)")).unwrap();
        assert_eq!(df.num_rows(), 0);
    }

    #[test]
    fn arity_mismatch_is_error() {
        assert!(matches!(
            run_query(&sample_db(), &query("?R(x)")),
            Err(EngineError::Arity { .. })
        ));
    }
}
