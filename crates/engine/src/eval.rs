//! Bottom-up fixpoint evaluation: naive and semi-naive.
//!
//! The paper's implementation "extended the naive bottom-up evaluation
//! method to include evaluation of IE clauses" (§3.1). [`EvalStrategy::Naive`]
//! reproduces that; [`EvalStrategy::SemiNaive`] is the standard delta
//! refinement (Green et al., *Datalog and Recursive Query Processing*),
//! kept behaviourally identical — the equivalence is property-tested —
//! and benchmarked as ablation A in EXPERIMENTS.md.
//!
//! Evaluation respects the session's [`EvalLimits`]: a bound on fixpoint
//! rounds guards against runaway recursion, a bound on materialized
//! tuples guards against blow-up — both surface as
//! [`EngineError::LimitExceeded`].

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::plan::{self, RulePlan, Step};
use crate::registry::Registry;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_cache::SharedIeMemo;
use spannerlib_core::Relation;

/// Fixpoint algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-evaluate every rule against full relations each round.
    #[default]
    Naive,
    /// Evaluate rule variants against per-round deltas of recursive
    /// predicates.
    SemiNaive,
}

/// Resource limits applied to one fixpoint run (`None` = unlimited).
/// Configured through `SessionBuilder`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum fixpoint rounds summed across all strata.
    pub max_rounds: Option<usize>,
    /// Maximum newly materialized tuples across the whole run.
    pub max_rows: Option<usize>,
}

impl EvalLimits {
    fn check(&self, stats: &EvalStats) -> Result<()> {
        if let Some(max) = self.max_rounds {
            if stats.rounds > max {
                return Err(EngineError::LimitExceeded {
                    resource: "fixpoint rounds",
                    limit: max,
                });
            }
        }
        self.check_rows(stats)
    }

    /// The row bound is also checked inside the insert loops, so one
    /// round cannot materialize unboundedly far past the cap (tuples
    /// buffered while a single rule plan executes are only bounded once
    /// that plan returns).
    fn check_rows(&self, stats: &EvalStats) -> Result<()> {
        if let Some(max) = self.max_rows {
            if stats.tuples_new > max {
                return Err(EngineError::LimitExceeded {
                    resource: "materialized rows",
                    limit: max,
                });
            }
        }
        Ok(())
    }
}

/// Counters filled during evaluation (consumed by benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds across all strata.
    pub rounds: usize,
    /// Rule-plan executions (including semi-naive variants).
    pub rule_firings: usize,
    /// Tuples derived (including duplicates rejected by set semantics).
    pub tuples_derived: usize,
    /// Tuples that were actually new.
    pub tuples_new: usize,
}

/// Runs all strata to fixpoint, inserting derived tuples into `db`.
/// `cache`, when set, memoizes IE calls across rounds and runs.
pub fn evaluate(
    db: &mut Database,
    strata: &[Vec<RulePlan>],
    registry: &Registry,
    strategy: EvalStrategy,
    limits: EvalLimits,
    cache: Option<&SharedIeMemo>,
) -> Result<EvalStats> {
    let mut stats = EvalStats::default();
    for stratum in strata {
        match strategy {
            EvalStrategy::Naive => naive_stratum(db, stratum, registry, limits, cache, &mut stats)?,
            EvalStrategy::SemiNaive => {
                seminaive_stratum(db, stratum, registry, limits, cache, &mut stats)?
            }
        }
    }
    Ok(stats)
}

fn naive_stratum(
    db: &mut Database,
    rules: &[RulePlan],
    registry: &Registry,
    limits: EvalLimits,
    cache: Option<&SharedIeMemo>,
    stats: &mut EvalStats,
) -> Result<()> {
    let no_deltas: FxHashMap<String, Relation> = FxHashMap::default();
    loop {
        stats.rounds += 1;
        let mut changed = false;
        for rule in rules {
            stats.rule_firings += 1;
            let derived = {
                let (relations, docs) = db.split_mut();
                plan::execute(rule, relations, docs, registry, None, &no_deltas, cache)?
            };
            stats.tuples_derived += derived.len();
            for tuple in derived {
                if db.insert_derived(&rule.head_predicate, tuple)? {
                    stats.tuples_new += 1;
                    changed = true;
                    limits.check_rows(stats)?;
                }
            }
        }
        limits.check(stats)?;
        if !changed {
            return Ok(());
        }
    }
}

fn seminaive_stratum(
    db: &mut Database,
    rules: &[RulePlan],
    registry: &Registry,
    limits: EvalLimits,
    cache: Option<&SharedIeMemo>,
    stats: &mut EvalStats,
) -> Result<()> {
    // Heads of this stratum: atoms over them are "recursive" here.
    let heads: FxHashSet<&str> = rules.iter().map(|r| r.head_predicate.as_str()).collect();

    // Round 1: full evaluation of every rule (relations of lower strata
    // are complete; recursive relations start empty or with imported
    // facts). New tuples seed the deltas.
    let mut deltas: FxHashMap<String, Relation> = FxHashMap::default();
    let no_deltas: FxHashMap<String, Relation> = FxHashMap::default();
    stats.rounds += 1;
    for rule in rules {
        stats.rule_firings += 1;
        let derived = {
            let (relations, docs) = db.split_mut();
            plan::execute(rule, relations, docs, registry, None, &no_deltas, cache)?
        };
        stats.tuples_derived += derived.len();
        for tuple in derived {
            if db.insert_derived(&rule.head_predicate, tuple.clone())? {
                stats.tuples_new += 1;
                limits.check_rows(stats)?;
                let rel = db.relation(&rule.head_predicate)?;
                deltas
                    .entry(rule.head_predicate.clone())
                    .or_insert_with(|| Relation::new(rel.schema().clone()))
                    .insert(tuple)?;
            }
        }
    }
    limits.check(stats)?;

    // Subsequent rounds: for each rule and each scan step over a
    // recursive predicate, run the variant with that step reading the
    // delta. Rules without recursive scans fired completely in round 1.
    while deltas.values().any(|d| !d.is_empty()) {
        stats.rounds += 1;
        let mut next_deltas: FxHashMap<String, Relation> = FxHashMap::default();
        for rule in rules {
            let recursive_steps: Vec<usize> = rule
                .steps
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Step::Scan { relation, .. } if heads.contains(relation.as_str()) => Some(i),
                    _ => None,
                })
                .collect();
            for step_idx in recursive_steps {
                stats.rule_firings += 1;
                let derived = {
                    let (relations, docs) = db.split_mut();
                    plan::execute(
                        rule,
                        relations,
                        docs,
                        registry,
                        Some(step_idx),
                        &deltas,
                        cache,
                    )?
                };
                stats.tuples_derived += derived.len();
                for tuple in derived {
                    if db.insert_derived(&rule.head_predicate, tuple.clone())? {
                        stats.tuples_new += 1;
                        limits.check_rows(stats)?;
                        let rel = db.relation(&rule.head_predicate)?;
                        next_deltas
                            .entry(rule.head_predicate.clone())
                            .or_insert_with(|| Relation::new(rel.schema().clone()))
                            .insert(tuple)?;
                    }
                }
            }
        }
        limits.check(stats)?;
        deltas = next_deltas;
    }
    Ok(())
}
