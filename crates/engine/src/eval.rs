//! Bottom-up fixpoint evaluation: naive and semi-naive.
//!
//! The paper's implementation "extended the naive bottom-up evaluation
//! method to include evaluation of IE clauses" (§3.1). [`EvalStrategy::Naive`]
//! reproduces that; [`EvalStrategy::SemiNaive`] is the standard delta
//! refinement (Green et al., *Datalog and Recursive Query Processing*),
//! kept behaviourally identical — the equivalence is property-tested —
//! and benchmarked as ablation A in EXPERIMENTS.md.
//!
//! Evaluation respects the session's [`EvalLimits`]: a bound on fixpoint
//! rounds guards against runaway recursion, a bound on materialized
//! tuples guards against blow-up — both surface as
//! [`EngineError::LimitExceeded`], attributed to the culprit rule.
//!
//! Every run is threaded through a [`RunTrace`] (see `spannerlib_trace`):
//! at `TraceLevel::Off` each call is a branch; at `Summary` per-rule and
//! per-IE counters and wall times accumulate; at `Spans` the hierarchy
//! execute → stratum → round → rule → join / IE batch is recorded as
//! timed span events.

use crate::database::Database;
use crate::error::{EngineError, LimitCulprit, Result};
use crate::ie::{DocsHandle, SharedDocs};
use crate::optimizer::IndexCache;
use crate::plan::{self, ExecCtx, ParExec, ParTally, RulePlan, Step, TraceCtx};
use crate::registry::Registry;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_cache::SharedIeMemo;
use spannerlib_core::Relation;
use spannerlib_par::ThreadPool;
use spannerlib_trace::{RunTrace, SpanId, SpanKind, NO_SPAN};
use std::cell::RefCell;
use std::sync::atomic::Ordering;

/// Fixpoint algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Re-evaluate every rule against full relations each round.
    #[default]
    Naive,
    /// Evaluate rule variants against per-round deltas of recursive
    /// predicates.
    SemiNaive,
}

/// Resource limits applied to one fixpoint run (`None` = unlimited).
/// Configured through `SessionBuilder`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum fixpoint rounds summed across all strata.
    pub max_rounds: Option<usize>,
    /// Maximum newly materialized tuples across the whole run.
    pub max_rows: Option<usize>,
    /// Wall-clock budget in milliseconds for the whole run (checked
    /// between fixpoint rounds and before each IE batch).
    pub max_millis: Option<u64>,
}

/// The wall-clock budget of one evaluation run
/// ([`EvalLimits::max_millis`]), anchored when the run starts. Checked
/// once per fixpoint round and once per IE batch — the two places an
/// evaluation can sink unbounded time — so an overrun surfaces as
/// [`EngineError::LimitExceeded`] naming the rule that was executing,
/// not as a hung serving request.
#[derive(Debug, Clone, Copy)]
pub struct EvalDeadline {
    at: std::time::Instant,
    limit_ms: u64,
}

impl EvalDeadline {
    /// The deadline for `limits`, anchored at now; `None` when no
    /// wall-clock limit is configured.
    pub(crate) fn start(limits: &EvalLimits) -> Option<EvalDeadline> {
        limits.max_millis.map(|ms| EvalDeadline {
            at: std::time::Instant::now() + std::time::Duration::from_millis(ms),
            limit_ms: ms,
        })
    }

    /// Errors with the wall-clock [`EngineError::LimitExceeded`]
    /// (blaming `rule`) once the budget is spent.
    pub(crate) fn check(&self, rule: Option<&RulePlan>) -> Result<()> {
        if std::time::Instant::now() >= self.at {
            return Err(EngineError::LimitExceeded {
                resource: "eval wall-clock millis",
                limit: self.limit_ms as usize,
                culprit: culprit_of(rule),
            });
        }
        Ok(())
    }
}

/// The rule a limit overrun is blamed on, as a boxed error payload.
fn culprit_of(rule: Option<&RulePlan>) -> Box<LimitCulprit> {
    Box::new(match rule {
        Some(r) => LimitCulprit {
            head: r.head_predicate.clone(),
            source: r.source.clone(),
            line: r.line,
        },
        None => LimitCulprit::unknown(),
    })
}

impl EvalLimits {
    /// The round bound trips *between* rounds, so `rule` is the last
    /// rule that derived new tuples — the one still driving the
    /// fixpoint.
    fn check(&self, stats: &EvalStats, rule: Option<&RulePlan>) -> Result<()> {
        if let Some(max) = self.max_rounds {
            if stats.rounds > max {
                return Err(EngineError::LimitExceeded {
                    resource: "fixpoint rounds",
                    limit: max,
                    culprit: culprit_of(rule),
                });
            }
        }
        self.check_rows(stats, rule)
    }

    /// The row bound is also checked inside the insert loops, so one
    /// round cannot materialize unboundedly far past the cap (tuples
    /// buffered while a single rule plan executes are only bounded once
    /// that plan returns). `rule` is the rule whose insert crossed it.
    fn check_rows(&self, stats: &EvalStats, rule: Option<&RulePlan>) -> Result<()> {
        if let Some(max) = self.max_rows {
            if stats.tuples_new > max {
                return Err(EngineError::LimitExceeded {
                    resource: "materialized rows",
                    limit: max,
                    culprit: culprit_of(rule),
                });
            }
        }
        Ok(())
    }
}

/// Counters filled during evaluation (consumed by benches and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixpoint rounds across all strata.
    pub rounds: usize,
    /// Rule-plan executions (including semi-naive variants).
    pub rule_firings: usize,
    /// Tuples derived (including duplicates rejected by set semantics).
    pub tuples_derived: usize,
    /// Tuples that were actually new.
    pub tuples_new: usize,
}

/// Everything one evaluation run needs besides the database, the
/// program, and the trace collector.
pub struct EvalCtx<'a> {
    /// IE / aggregate / conversion registry.
    pub registry: &'a Registry,
    /// Fixpoint algorithm.
    pub strategy: EvalStrategy,
    /// Resource limits.
    pub limits: EvalLimits,
    /// IE memo table, when enabled.
    pub cache: Option<&'a SharedIeMemo>,
    /// Cost-based step ordering + scan-index reuse
    /// (`SessionBuilder::planner`; on by default).
    pub planner: bool,
    /// Worker pool for split-correct parallel evaluation
    /// (`SessionBuilder::parallelism`); `None` runs fully serial.
    pub pool: Option<&'a ThreadPool>,
}

/// The trace scope of one stratum: the run collector plus the stratum's
/// index, span, and per-rule profiling handles.
struct StratumScope<'a, 'b> {
    trace: &'a mut RunTrace,
    stratum: usize,
    rule_ids: &'b [usize],
    span: SpanId,
    /// Evaluation-wide scan-index cache (`None` with the planner off).
    indexes: Option<&'b RefCell<IndexCache>>,
    /// Parallel-execution environment (`None` runs fully serial).
    par: Option<ParExec<'b>>,
    /// Shared evaluation-wide counters.
    tally: &'b ParTally,
    /// Wall-clock budget of the run (`None` = unlimited).
    deadline: Option<EvalDeadline>,
}

impl StratumScope<'_, '_> {
    /// Checks the round-level limits: counters first, then the
    /// wall-clock budget, both blaming the driving rule.
    fn check_round(
        &self,
        limits: &EvalLimits,
        stats: &EvalStats,
        rule: Option<&RulePlan>,
    ) -> Result<()> {
        limits.check(stats, rule)?;
        match self.deadline {
            Some(d) => d.check(rule),
            None => Ok(()),
        }
    }
}

/// Whether the compile-time split-correctness analysis cleared `rule`
/// for shard-parallel execution.
fn rule_is_parallel(rule: &RulePlan) -> bool {
    rule.opt.as_ref().is_some_and(|o| o.split.is_parallel())
}

/// Runs all strata to fixpoint, inserting derived tuples into `db`.
/// `ctx.cache`, when set, memoizes IE calls across rounds and runs.
/// Progress is reported through `trace` (free when tracing is off); on
/// a limit abort the trace keeps the partial per-stratum progress.
///
/// With a pool configured and at least one split-correct rule, the
/// documents move behind a [`SharedDocs`] lock for the duration of the
/// run so shard workers can resolve and intern concurrently, and move
/// back afterwards. If a worker task panics, the panic propagates and
/// the store is *not* restored — the session is considered poisoned
/// (see the threading contract in `crate::session`).
pub fn evaluate(
    db: &mut Database,
    strata: &[Vec<RulePlan>],
    ctx: &EvalCtx<'_>,
    trace: &mut RunTrace,
) -> Result<EvalStats> {
    let any_parallel = strata.iter().flatten().any(rule_is_parallel);
    match ctx.pool.filter(|_| any_parallel) {
        Some(pool) => {
            let shared = SharedDocs::new(std::mem::take(&mut db.docs));
            let par = ParExec {
                pool,
                docs: &shared,
            };
            let result = evaluate_impl(db, strata, ctx, trace, Some(par));
            db.docs = shared.into_inner();
            result
        }
        None => evaluate_impl(db, strata, ctx, trace, None),
    }
}

/// [`evaluate`] proper, after the document-store mode (exclusive vs
/// shared) has been fixed for the run.
fn evaluate_impl(
    db: &mut Database,
    strata: &[Vec<RulePlan>],
    ctx: &EvalCtx<'_>,
    trace: &mut RunTrace,
    par: Option<ParExec<'_>>,
) -> Result<EvalStats> {
    let mut stats = EvalStats::default();
    let tally = ParTally::default();
    let deadline = EvalDeadline::start(&ctx.limits);
    let stolen_before = par.map_or(0, |p| p.pool.stats().stolen);
    // Folds the run's parallel counters into the trace — on both the
    // success and the abort path, like the index-cache counters.
    let par_summary = |trace: &mut RunTrace, tally: &ParTally| {
        let Some(p) = par else { return };
        let serial_rules = strata
            .iter()
            .flatten()
            .filter(|r| !rule_is_parallel(r))
            .count() as u64;
        trace.parallel_summary(
            p.pool.workers() as u64,
            tally.shard_tasks.load(Ordering::Relaxed),
            tally.ie_batches.load(Ordering::Relaxed),
            p.pool.stats().stolen.saturating_sub(stolen_before),
            serial_rules,
        );
    };
    // One scan-index cache per evaluation run: relations only grow
    // while a run executes (derived state was cleared before it), so
    // indexes keyed by (relation, row count, key columns) stay valid
    // across fixpoint rounds, rules, and strata.
    let index_cache = RefCell::new(IndexCache::default());
    let indexes = ctx.planner.then_some(&index_cache);
    let root = trace.open(NO_SPAN, SpanKind::Execute, || {
        format!("evaluate ({} strata)", strata.len())
    });
    for (si, stratum) in strata.iter().enumerate() {
        let rule_ids: Vec<usize> = stratum
            .iter()
            .map(|r| trace.register_rule(si, &r.head_predicate, &r.source, r.line as u32))
            .collect();
        let t0 = trace.now_ns();
        let span = trace.open(root, SpanKind::Stratum, || {
            format!("stratum {si} ({} rules)", stratum.len())
        });
        let mut scope = StratumScope {
            trace,
            stratum: si,
            rule_ids: &rule_ids,
            span,
            indexes,
            par,
            tally: &tally,
            deadline,
        };
        let result = match ctx.strategy {
            EvalStrategy::Naive => naive_stratum(db, stratum, ctx, &mut stats, &mut scope),
            EvalStrategy::SemiNaive => seminaive_stratum(db, stratum, ctx, &mut stats, &mut scope),
        };
        trace.stratum_done(si, t0);
        trace.close(span);
        if let Err(e) = result {
            let ic = index_cache.borrow();
            trace.index_cache(ic.hits, ic.builds);
            par_summary(trace, &tally);
            return Err(e);
        }
    }
    trace.close(root);
    let ic = index_cache.borrow();
    trace.index_cache(ic.hits, ic.builds);
    par_summary(trace, &tally);
    Ok(stats)
}

/// Callback invoked for each genuinely new tuple a rule firing inserts.
type OnNewTuple<'a> = &'a mut dyn FnMut(&mut Database, &spannerlib_core::Tuple) -> Result<()>;

/// Executes one rule plan and inserts its derivations, reporting the
/// firing to the trace (also on the limit-abort path, so an aborted run
/// still profiles the culprit's partial work). Returns whether any
/// tuple was new.
fn fire_rule(
    db: &mut Database,
    rule: &RulePlan,
    exec: &ExecCtx<'_>,
    limits: EvalLimits,
    stats: &mut EvalStats,
    tr: &mut TraceCtx<'_>,
    // Called once per genuinely new tuple (semi-naive delta seeding);
    // `None` skips the tuple clone the callback would need.
    mut on_new: Option<OnNewTuple<'_>>,
) -> Result<bool> {
    stats.rule_firings += 1;
    let t0 = tr.trace.now_ns();
    let derived = {
        let (relations, docs) = db.split_mut();
        // On the parallel path the live store sits behind the shared
        // lock (`db.docs` is empty until `evaluate` restores it).
        let mut handle = match exec.par {
            Some(p) => DocsHandle::Shared(p.docs),
            None => DocsHandle::Exclusive(docs),
        };
        plan::execute_with(rule, relations, &mut handle, exec, tr)
    };
    let derived = match derived {
        Ok(d) => d,
        Err(e) => {
            tr.trace.rule_fired(tr.rule, 0, 0, t0);
            return Err(e);
        }
    };
    stats.tuples_derived += derived.len();
    let derived_n = derived.len() as u64;
    let mut new_n = 0u64;
    let mut limit_err = None;
    for tuple in derived {
        let inserted = match &mut on_new {
            Some(f) => {
                let inserted = db.insert_derived(&rule.head_predicate, tuple.clone())?;
                if inserted {
                    f(db, &tuple)?;
                }
                inserted
            }
            None => db.insert_derived(&rule.head_predicate, tuple)?,
        };
        if inserted {
            stats.tuples_new += 1;
            new_n += 1;
            if let Err(e) = limits.check_rows(stats, Some(rule)) {
                limit_err = Some(e);
                break;
            }
        }
    }
    tr.trace.rule_fired(tr.rule, derived_n, new_n, t0);
    match limit_err {
        Some(e) => Err(e),
        None => Ok(new_n > 0),
    }
}

fn naive_stratum(
    db: &mut Database,
    rules: &[RulePlan],
    ctx: &EvalCtx<'_>,
    stats: &mut EvalStats,
    scope: &mut StratumScope<'_, '_>,
) -> Result<()> {
    let no_deltas: FxHashMap<String, Relation> = FxHashMap::default();
    let exec = ExecCtx {
        registry: ctx.registry,
        delta_at: None,
        deltas: &no_deltas,
        cache: ctx.cache,
        planner: ctx.planner,
        indexes: scope.indexes,
        par: scope.par,
        tally: scope.tally,
        deadline: scope.deadline,
    };
    // Last rule to derive a new tuple — the round-limit culprit.
    let mut driver: Option<usize> = None;
    loop {
        stats.rounds += 1;
        scope.trace.round(scope.stratum);
        let rounds = stats.rounds;
        let round_span = scope
            .trace
            .open(scope.span, SpanKind::Round, || format!("round {rounds}"));
        let mut changed = false;
        for (ri, rule) in rules.iter().enumerate() {
            let rule_span = scope
                .trace
                .open(round_span, SpanKind::Rule, || rule.source.clone());
            let mut tr = TraceCtx {
                trace: &mut *scope.trace,
                rule: scope.rule_ids[ri],
                parent: rule_span,
            };
            let fired = fire_rule(db, rule, &exec, ctx.limits, stats, &mut tr, None);
            scope.trace.close(rule_span);
            if fired? {
                changed = true;
                driver = Some(ri);
            }
        }
        scope.trace.close(round_span);
        scope.check_round(&ctx.limits, stats, driver.map(|ri| &rules[ri]))?;
        if !changed {
            return Ok(());
        }
    }
}

fn seminaive_stratum(
    db: &mut Database,
    rules: &[RulePlan],
    ctx: &EvalCtx<'_>,
    stats: &mut EvalStats,
    scope: &mut StratumScope<'_, '_>,
) -> Result<()> {
    // Heads of this stratum: atoms over them are "recursive" here.
    let heads: FxHashSet<&str> = rules.iter().map(|r| r.head_predicate.as_str()).collect();

    // Round 1: full evaluation of every rule (relations of lower strata
    // are complete; recursive relations start empty or with imported
    // facts). New tuples seed the deltas.
    let mut deltas: FxHashMap<String, Relation> = FxHashMap::default();
    let no_deltas: FxHashMap<String, Relation> = FxHashMap::default();
    let mut driver: Option<usize> = None;
    stats.rounds += 1;
    scope.trace.round(scope.stratum);
    let round_span = scope
        .trace
        .open(scope.span, SpanKind::Round, || "round 1".to_string());
    for (ri, rule) in rules.iter().enumerate() {
        let exec = ExecCtx {
            registry: ctx.registry,
            delta_at: None,
            deltas: &no_deltas,
            cache: ctx.cache,
            planner: ctx.planner,
            indexes: scope.indexes,
            par: scope.par,
            tally: scope.tally,
            deadline: scope.deadline,
        };
        let rule_span = scope
            .trace
            .open(round_span, SpanKind::Rule, || rule.source.clone());
        let mut tr = TraceCtx {
            trace: &mut *scope.trace,
            rule: scope.rule_ids[ri],
            parent: rule_span,
        };
        let head = rule.head_predicate.clone();
        let mut seed = |db: &mut Database, tuple: &spannerlib_core::Tuple| {
            let rel = db.relation(&head)?;
            deltas
                .entry(head.clone())
                .or_insert_with(|| Relation::new(rel.schema().clone()))
                .insert(tuple.clone())?;
            Ok(())
        };
        let fired = fire_rule(db, rule, &exec, ctx.limits, stats, &mut tr, Some(&mut seed));
        scope.trace.close(rule_span);
        if fired? {
            driver = Some(ri);
        }
    }
    scope.trace.close(round_span);
    scope.check_round(&ctx.limits, stats, driver.map(|ri| &rules[ri]))?;

    // Subsequent rounds: for each rule and each scan step over a
    // recursive predicate, run the variant with that step reading the
    // delta. Rules without recursive scans fired completely in round 1.
    while deltas.values().any(|d| !d.is_empty()) {
        stats.rounds += 1;
        scope.trace.round(scope.stratum);
        let rounds = stats.rounds;
        let round_span = scope
            .trace
            .open(scope.span, SpanKind::Round, || format!("round {rounds}"));
        let mut next_deltas: FxHashMap<String, Relation> = FxHashMap::default();
        for (ri, rule) in rules.iter().enumerate() {
            let recursive_steps: Vec<usize> = rule
                .steps
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Step::Scan { relation, .. } if heads.contains(relation.as_str()) => Some(i),
                    _ => None,
                })
                .collect();
            for step_idx in recursive_steps {
                let exec = ExecCtx {
                    registry: ctx.registry,
                    delta_at: Some(step_idx),
                    deltas: &deltas,
                    cache: ctx.cache,
                    planner: ctx.planner,
                    indexes: scope.indexes,
                    par: scope.par,
                    tally: scope.tally,
                    deadline: scope.deadline,
                };
                let rule_span = scope
                    .trace
                    .open(round_span, SpanKind::Rule, || rule.source.clone());
                let mut tr = TraceCtx {
                    trace: &mut *scope.trace,
                    rule: scope.rule_ids[ri],
                    parent: rule_span,
                };
                let head = rule.head_predicate.clone();
                let mut seed = |db: &mut Database, tuple: &spannerlib_core::Tuple| {
                    let rel = db.relation(&head)?;
                    next_deltas
                        .entry(head.clone())
                        .or_insert_with(|| Relation::new(rel.schema().clone()))
                        .insert(tuple.clone())?;
                    Ok(())
                };
                let fired = fire_rule(db, rule, &exec, ctx.limits, stats, &mut tr, Some(&mut seed));
                scope.trace.close(rule_span);
                if fired? {
                    driver = Some(ri);
                }
            }
        }
        scope.trace.close(round_span);
        scope.check_round(&ctx.limits, stats, driver.map(|ri| &rules[ri]))?;
        deltas = next_deltas;
    }
    Ok(())
}
