//! The semantic safety checker (paper §3.1).
//!
//! "Spannerlog requires a more intricate definition of rule safety, which
//! in turn determines IE function execution order within a rule" — this
//! module implements that analysis, following the safety definitions of
//! Nahshon, Peterfreund & Vansummeren (WebDB 2016):
//!
//! 1. every variable of an IE atom's **input** must be bound by other
//!    body elements scheduled before it;
//! 2. every variable of a negated atom or comparison must be bound;
//! 3. every head variable (including aggregated ones) must be bound by
//!    the positive body.
//!
//! The checker greedily schedules body elements (source order among the
//! schedulable), which simultaneously *derives the IE execution order*
//! and rejects unsafe rules — e.g. circular IE dependencies such as
//! `f(x) -> (y), g(y) -> (x)` with neither `x` nor `y` otherwise bound.
//!
//! Atoms written relation-style whose predicate is actually a registered
//! IE function (`contains(pos, s)` in the paper's §4.1) are rewritten
//! into zero-output IE atoms here.

use crate::error::{EngineError, Result};
use crate::plan::{HeadOut, PTerm, RulePlan, Step};
use crate::registry::Registry;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_core::Value;
use spannerlog_parser::{BodyElem, Constant, HeadTerm, Rule, Term};

/// Converts a parsed constant into an engine value.
pub fn constant_value(c: &Constant) -> Value {
    match c {
        Constant::Str(s) => Value::str(s.as_str()),
        Constant::Int(i) => Value::Int(*i),
        Constant::Float(f) => Value::Float(*f),
        Constant::Bool(b) => Value::Bool(*b),
    }
}

/// Context the checker needs: which names are relations (declared or any
/// rule head) — everything else must be an IE function.
pub struct SafetyContext<'a> {
    /// Names that resolve to stored relations.
    pub relations: &'a FxHashSet<String>,
    /// The IE/aggregation registry.
    pub registry: &'a Registry,
}

/// Analyzes one rule: checks safety and produces the executable plan.
pub fn analyze(rule: &Rule, ctx: &SafetyContext<'_>) -> Result<RulePlan> {
    let unsafe_err = |msg: String| EngineError::Unsafe {
        line: rule.line,
        msg,
    };

    // Variable table: name → index, in first-mention order (head first so
    // diagnostics read naturally).
    let mut vars: FxHashMap<String, usize> = FxHashMap::default();
    let mut var_names: Vec<String> = Vec::new();
    let var_index =
        |name: &str, vars: &mut FxHashMap<String, usize>, var_names: &mut Vec<String>| {
            if let Some(&i) = vars.get(name) {
                return i;
            }
            let i = var_names.len();
            vars.insert(name.to_string(), i);
            var_names.push(name.to_string());
            i
        };

    // Resolve body elements, rewriting relation-style atoms over IE
    // function names into zero-output IE atoms (filters).
    #[derive(Debug)]
    enum Elem {
        Scan {
            relation: String,
            terms: Vec<Term>,
        },
        Ie {
            function: String,
            inputs: Vec<Term>,
            outputs: Vec<Term>,
        },
        Neg {
            relation: String,
            terms: Vec<Term>,
        },
        Cmp {
            left: Term,
            op: spannerlog_parser::CmpOp,
            right: Term,
        },
    }

    let mut elems: Vec<Elem> = Vec::new();
    for b in &rule.body {
        match b {
            BodyElem::Relation(a) => {
                if ctx.relations.contains(&a.predicate) {
                    elems.push(Elem::Scan {
                        relation: a.predicate.clone(),
                        terms: a.terms.clone(),
                    });
                } else if ctx.registry.has_ie(&a.predicate) {
                    elems.push(Elem::Ie {
                        function: a.predicate.clone(),
                        inputs: a.terms.clone(),
                        outputs: Vec::new(),
                    });
                } else {
                    return Err(EngineError::UnknownPredicate(a.predicate.clone()));
                }
            }
            BodyElem::Negated(a) => {
                if !ctx.relations.contains(&a.predicate) {
                    return Err(EngineError::UnknownRelation(a.predicate.clone()));
                }
                elems.push(Elem::Neg {
                    relation: a.predicate.clone(),
                    terms: a.terms.clone(),
                });
            }
            BodyElem::Ie(ie) => {
                if !ctx.registry.has_ie(&ie.function) {
                    return Err(EngineError::UnknownIeFunction(ie.function.clone()));
                }
                // Static input-arity check when declared.
                if let Some(expected) = ctx.registry.ie(&ie.function)?.input_arity() {
                    if ie.inputs.len() != expected {
                        return Err(EngineError::IeArity {
                            function: ie.function.clone(),
                            expected,
                            actual: ie.inputs.len(),
                        });
                    }
                }
                // Wildcards cannot be IE inputs (nothing to pass).
                if ie.inputs.iter().any(|t| matches!(t, Term::Wildcard)) {
                    return Err(unsafe_err(format!(
                        "IE function {:?} has a wildcard input",
                        ie.function
                    )));
                }
                elems.push(Elem::Ie {
                    function: ie.function.clone(),
                    inputs: ie.inputs.clone(),
                    outputs: ie.outputs.clone(),
                });
            }
            BodyElem::Comparison { left, op, right } => elems.push(Elem::Cmp {
                left: left.clone(),
                op: *op,
                right: right.clone(),
            }),
        }
    }

    let term_vars = |terms: &[Term]| -> Vec<String> {
        terms
            .iter()
            .filter_map(|t| match t {
                Term::Variable(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    };

    // Greedy scheduling: repeatedly pick the first schedulable element.
    let mut bound: FxHashSet<String> = FxHashSet::default();
    let mut scheduled: Vec<Elem> = Vec::new();
    let mut pending: Vec<Elem> = elems;
    while !pending.is_empty() {
        let pick = pending.iter().position(|e| match e {
            Elem::Scan { .. } => true,
            Elem::Ie { inputs, .. } => term_vars(inputs).iter().all(|v| bound.contains(v)),
            Elem::Neg { terms, .. } => term_vars(terms).iter().all(|v| bound.contains(v)),
            Elem::Cmp { left, right, .. } => {
                let mut ts = Vec::new();
                if let Term::Variable(v) = left {
                    ts.push(v.clone());
                }
                if let Term::Variable(v) = right {
                    ts.push(v.clone());
                }
                ts.iter().all(|v| bound.contains(v))
            }
        });
        let Some(i) = pick else {
            let blocked: Vec<String> = pending
                .iter()
                .map(|e| match e {
                    Elem::Scan { relation, .. } => relation.clone(),
                    Elem::Ie {
                        function, inputs, ..
                    } => {
                        let missing: Vec<String> = term_vars(inputs)
                            .into_iter()
                            .filter(|v| !bound.contains(v))
                            .collect();
                        format!("{function} (unbound inputs: {})", missing.join(", "))
                    }
                    Elem::Neg { relation, terms } => {
                        let missing: Vec<String> = term_vars(terms)
                            .into_iter()
                            .filter(|v| !bound.contains(v))
                            .collect();
                        format!("not {relation} (unbound: {})", missing.join(", "))
                    }
                    Elem::Cmp { left, op, right } => format!("{left} {op} {right}"),
                })
                .collect();
            return Err(unsafe_err(format!(
                "no safe evaluation order: cannot schedule {}",
                blocked.join("; ")
            )));
        };
        let e = pending.remove(i);
        match &e {
            Elem::Scan { terms, .. } => {
                for v in term_vars(terms) {
                    bound.insert(v);
                }
            }
            Elem::Ie { outputs, .. } => {
                for v in term_vars(outputs) {
                    bound.insert(v);
                }
            }
            Elem::Neg { .. } | Elem::Cmp { .. } => {}
        }
        scheduled.push(e);
    }

    // Head checks: wildcards rejected; every variable bound.
    let mut head: Vec<HeadOut> = Vec::new();
    for t in &rule.head_terms {
        match t {
            HeadTerm::Term(Term::Wildcard) => {
                return Err(unsafe_err("wildcard in rule head".into()))
            }
            HeadTerm::Term(Term::Variable(v)) => {
                if !bound.contains(v) {
                    return Err(unsafe_err(format!(
                        "head variable {v:?} is not bound by the body"
                    )));
                }
                head.push(HeadOut::Var(var_index(v, &mut vars, &mut var_names)));
            }
            HeadTerm::Term(Term::Const(c)) => head.push(HeadOut::Const(constant_value(c))),
            HeadTerm::Aggregate {
                func,
                conversions,
                var,
            } => {
                // Validate function and conversions exist.
                ctx.registry.aggregate(func)?;
                for c in conversions {
                    ctx.registry.conversion(c)?;
                }
                if !bound.contains(var) {
                    return Err(unsafe_err(format!(
                        "aggregated variable {var:?} is not bound by the body"
                    )));
                }
                head.push(HeadOut::Aggregate {
                    func: func.clone(),
                    conversions: conversions.clone(),
                    var: var_index(var, &mut vars, &mut var_names),
                });
            }
        }
    }

    // Build plan steps with variable indices.
    let mut pterm = |t: &Term| -> PTerm {
        match t {
            Term::Variable(v) => PTerm::Var(var_index(v, &mut vars, &mut var_names)),
            Term::Wildcard => PTerm::Wildcard,
            Term::Const(c) => PTerm::Const(constant_value(c)),
        }
    };
    let mut steps: Vec<Step> = Vec::new();
    let mut dependencies: Vec<(String, bool)> = Vec::new();
    let negative_deps = rule.has_aggregation();
    for e in &scheduled {
        match e {
            Elem::Scan { relation, terms } => {
                dependencies.push((relation.clone(), negative_deps));
                steps.push(Step::Scan {
                    relation: relation.clone(),
                    terms: terms.iter().map(&mut pterm).collect(),
                });
            }
            Elem::Ie {
                function,
                inputs,
                outputs,
            } => steps.push(Step::Ie {
                function: function.clone(),
                inputs: inputs.iter().map(&mut pterm).collect(),
                outputs: outputs.iter().map(&mut pterm).collect(),
            }),
            Elem::Neg { relation, terms } => {
                dependencies.push((relation.clone(), true));
                steps.push(Step::Negation {
                    relation: relation.clone(),
                    terms: terms.iter().map(&mut pterm).collect(),
                });
            }
            Elem::Cmp { left, op, right } => steps.push(Step::Compare {
                left: pterm(left),
                op: *op,
                right: pterm(right),
            }),
        }
    }

    Ok(RulePlan {
        head_predicate: rule.head_predicate.clone(),
        steps,
        head,
        var_names,
        line: rule.line,
        source: rule.to_string(),
        dependencies,
        // Filled by `optimizer::annotate` during program compilation.
        opt: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spannerlog_parser::parse_program;
    use spannerlog_parser::Statement;

    fn rule(src: &str) -> Rule {
        match parse_program(src).unwrap().statements.remove(0) {
            Statement::Rule(r) => r,
            other => panic!("expected rule, got {other:?}"),
        }
    }

    fn ctx_with(relations: &[&str]) -> (FxHashSet<String>, Registry) {
        let rels: FxHashSet<String> = relations.iter().map(|s| s.to_string()).collect();
        (rels, Registry::new())
    }

    fn analyze_src(src: &str, relations: &[&str]) -> Result<RulePlan> {
        let (rels, registry) = ctx_with(relations);
        analyze(
            &rule(src),
            &SafetyContext {
                relations: &rels,
                registry: &registry,
            },
        )
    }

    #[test]
    fn paper_email_rule_is_safe() {
        let plan = analyze_src(
            r#"R(usr, dom) <- Texts(d, t), rgx("(\w+)@(\w+)", t) -> (usr, dom)"#,
            &["Texts"],
        )
        .unwrap();
        assert_eq!(plan.steps.len(), 2);
        assert!(matches!(plan.steps[0], Step::Scan { .. }));
        assert!(matches!(plan.steps[1], Step::Ie { .. }));
    }

    #[test]
    fn ie_scheduled_after_binding_even_if_written_first() {
        // The IE atom appears first in source but needs `t` from Texts.
        let plan = analyze_src(r#"R(x) <- rgx("a", t) -> (x), Texts(d, t)"#, &["Texts"]).unwrap();
        assert!(matches!(plan.steps[0], Step::Scan { .. }));
        assert!(matches!(plan.steps[1], Step::Ie { .. }));
    }

    #[test]
    fn chained_ie_functions_order_correctly() {
        // §2's example: foo feeds rgx.
        let plan = analyze_src(
            r#"T(z, v, w) <- Texts(d, t), rgx("x{.}", z) -> (w, v), foo(d, t) -> (z)"#,
            &["Texts"],
        );
        // `foo` is not registered — register it first.
        assert!(matches!(plan, Err(EngineError::UnknownIeFunction(_))));

        let (rels, mut registry) = ctx_with(&["Texts"]);
        registry.register_closure("foo", Some(2), |_args, _ctx| Ok(vec![]));
        let plan = analyze(
            &rule(r#"T(z, v, w) <- Texts(d, t), rgx("x{.}y{.}", z) -> (w, v), foo(d, t) -> (z)"#),
            &SafetyContext {
                relations: &rels,
                registry: &registry,
            },
        )
        .unwrap();
        // Order must be Texts, foo, rgx.
        match (&plan.steps[0], &plan.steps[1], &plan.steps[2]) {
            (
                Step::Scan { relation, .. },
                Step::Ie { function: f1, .. },
                Step::Ie { function: f2, .. },
            ) => {
                assert_eq!(relation, "Texts");
                assert_eq!(f1, "foo");
                assert_eq!(f2, "rgx");
            }
            other => panic!("unexpected order {other:?}"),
        }
    }

    #[test]
    fn circular_ie_dependency_is_unsafe() {
        let (rels, mut registry) = ctx_with(&[]);
        registry.register_closure("f", Some(1), |_a, _c| Ok(vec![]));
        registry.register_closure("g", Some(1), |_a, _c| Ok(vec![]));
        let err = analyze(
            &rule("R(x) <- f(x) -> (y), g(y) -> (x)"),
            &SafetyContext {
                relations: &rels,
                registry: &registry,
            },
        )
        .unwrap_err();
        match err {
            EngineError::Unsafe { msg, .. } => assert!(msg.contains("no safe evaluation order")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_head_variable_is_unsafe() {
        let err = analyze_src("R(x, y) <- S(x)", &["S"]).unwrap_err();
        match err {
            EngineError::Unsafe { msg, .. } => assert!(msg.contains("y")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_needs_bound_vars() {
        let err = analyze_src("R(x) <- S(x), not T(y)", &["S", "T"]).unwrap_err();
        assert!(matches!(err, EngineError::Unsafe { .. }));
        // Bound version is fine; negation scheduled after the scan.
        let plan = analyze_src("R(x) <- not T(x), S(x)", &["S", "T"]).unwrap();
        assert!(matches!(plan.steps[0], Step::Scan { .. }));
        assert!(matches!(plan.steps[1], Step::Negation { .. }));
    }

    #[test]
    fn comparison_needs_bound_vars() {
        assert!(analyze_src("R(x) <- S(x), x < y", &["S"]).is_err());
        assert!(analyze_src("R(x) <- S(x), x < 10", &["S"]).is_ok());
    }

    #[test]
    fn relation_style_ie_filter_is_rewritten() {
        // `contains(x, y)` written as a plain atom (paper §4.1 style).
        let plan = analyze_src("R(x, y) <- S(x, y), contains(x, y)", &["S"]).unwrap();
        match &plan.steps[1] {
            Step::Ie {
                function, outputs, ..
            } => {
                assert_eq!(function, "contains");
                assert!(outputs.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_predicate_reported() {
        let err = analyze_src("R(x) <- Mystery(x)", &[]).unwrap_err();
        assert!(matches!(err, EngineError::UnknownPredicate(_)));
    }

    #[test]
    fn wildcard_in_head_rejected() {
        let err = analyze_src("R(_) <- S(x)", &["S"]).unwrap_err();
        assert!(matches!(err, EngineError::Unsafe { .. }));
    }

    #[test]
    fn wildcard_ie_input_rejected() {
        let err = analyze_src(r#"R(x) <- S(x), rgx("a", _) -> (y)"#, &["S"]).unwrap_err();
        assert!(matches!(err, EngineError::Unsafe { .. }));
    }

    #[test]
    fn ie_input_arity_checked_statically() {
        let err = analyze_src(r#"R(x) <- S(t), rgx("a") -> (x)"#, &["S"]).unwrap_err();
        assert!(matches!(err, EngineError::IeArity { .. }));
    }

    #[test]
    fn aggregation_marks_dependencies_negative() {
        let plan = analyze_src("R(x, count(y)) <- S(x, y)", &["S"]).unwrap();
        assert!(plan.has_aggregation());
        assert_eq!(plan.dependencies, vec![("S".to_string(), true)]);
        let plain = analyze_src("R(x) <- S(x)", &["S"]).unwrap();
        assert_eq!(plain.dependencies, vec![("S".to_string(), false)]);
    }

    #[test]
    fn unknown_aggregate_rejected() {
        let err = analyze_src("R(bogus(y)) <- S(y)", &["S"]).unwrap_err();
        assert!(matches!(err, EngineError::UnknownAggregate(_)));
    }

    #[test]
    fn head_constants_allowed() {
        let plan = analyze_src(r#"R(x, "tag") <- S(x)"#, &["S"]).unwrap();
        assert!(matches!(plan.head[1], HeadOut::Const(_)));
    }
}
