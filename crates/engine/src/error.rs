//! Engine error type.

use spannerlib_core::{CoreError, ValueType};
use spannerlog_parser::{caret_snippet, ParseError};
use std::fmt;
use thiserror::Error;

/// The rule an evaluation limit is attributed to. For the row limit
/// this is the rule whose insert crossed the bound; for the round limit
/// — which only trips *between* rounds — it is the last rule that
/// derived new tuples, i.e. the one still driving the fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitCulprit {
    /// Head predicate of the rule.
    pub head: String,
    /// The rule's source text (as reconstructed by the parser).
    pub source: String,
    /// 1-based source line of the rule; `0` when unknown.
    pub line: usize,
}

impl LimitCulprit {
    /// A placeholder culprit for runs where no rule can be blamed
    /// (e.g. an empty stratum still counts a round).
    pub fn unknown() -> LimitCulprit {
        LimitCulprit {
            head: String::new(),
            source: String::new(),
            line: 0,
        }
    }

    /// Whether a rule was actually attributed.
    pub fn is_known(&self) -> bool {
        !self.head.is_empty()
    }

    /// Renders a caret diagnostic pointing at the culprit rule's line in
    /// `program_source` (the text the rules were parsed from), reusing
    /// the parser's snippet machinery:
    ///
    /// ```text
    ///   | Path(x, z) <- Path(x, y), Edge(y, z).
    ///   | ^
    /// ```
    ///
    /// Returns the bare culprit description when the rule is unknown or
    /// the line is out of range of `program_source`.
    pub fn snippet(&self, program_source: &str) -> String {
        if !self.is_known() || self.line == 0 {
            return self.to_string();
        }
        format!("{self}\n{}", caret_snippet(program_source, self.line, 1))
    }
}

impl fmt::Display for LimitCulprit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(
                f,
                "while evaluating rule for {:?} (line {}): {}",
                self.head, self.line, self.source
            )
        } else {
            f.write_str("no single rule attributable")
        }
    }
}

/// Errors raised while loading or evaluating Spannerlog programs.
#[derive(Debug, Error)]
pub enum EngineError {
    /// Source text failed to parse.
    #[error(transparent)]
    Parse(#[from] ParseError),

    /// Core value-model error (span bounds, schema mismatch, …).
    #[error(transparent)]
    Core(#[from] CoreError),

    /// Reference to a relation that was never declared, imported, or
    /// derived by a rule.
    #[error("unknown relation {0:?}")]
    UnknownRelation(String),

    /// A body atom's predicate is neither a relation nor a registered IE
    /// function.
    #[error("unknown predicate {0:?}: not a relation and not a registered IE function")]
    UnknownPredicate(String),

    /// Reference to an IE function that is not registered.
    #[error("unknown IE function {0:?}")]
    UnknownIeFunction(String),

    /// Reference to an aggregation function that is not registered.
    #[error("unknown aggregation function {0:?}")]
    UnknownAggregate(String),

    /// Reference to a conversion function (inside an aggregation term)
    /// that is not registered.
    #[error("unknown conversion function {0:?}")]
    UnknownConversion(String),

    /// A declaration or import collides with an existing relation.
    #[error("relation {0:?} already exists")]
    DuplicateRelation(String),

    /// An import tried to replace a relation with one of a different
    /// schema.
    #[error(
        "import into {relation:?} would change its schema from {expected} to {actual} \
         (remove_relation first to retype it)"
    )]
    SchemaMismatch {
        /// Relation name.
        relation: String,
        /// Existing schema, rendered as `(str, int, …)`.
        expected: String,
        /// Schema of the incoming data.
        actual: String,
    },

    /// A resource limit configured via `SessionBuilder` was exceeded
    /// during evaluation. `culprit` names the rule the overrun is
    /// attributed to (see [`LimitCulprit`]); a traced run additionally
    /// keeps the partial per-stratum progress in its `EvalProfile`.
    #[error("evaluation exceeded the configured limit of {limit} {resource} ({culprit})")]
    LimitExceeded {
        /// Which limit (e.g. "fixpoint rounds", "materialized rows").
        resource: &'static str,
        /// The configured bound.
        limit: usize,
        /// The rule the overrun is attributed to.
        culprit: Box<LimitCulprit>,
    },

    /// An atom used a relation with the wrong number of arguments.
    #[error("arity mismatch for {relation:?}: declared {expected}, used with {actual}")]
    Arity {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity at the use site.
        actual: usize,
    },

    /// An IE function was called with the wrong number of inputs.
    #[error("IE function {function:?} takes {expected} inputs, called with {actual}")]
    IeArity {
        /// Function name.
        function: String,
        /// Declared input arity.
        expected: usize,
        /// Arity at the call site.
        actual: usize,
    },

    /// A fact's constant does not match the declared column type.
    #[error("fact for {relation:?}, column {column}: expected {expected}, got {actual}")]
    FactType {
        /// Relation name.
        relation: String,
        /// Zero-based column index.
        column: usize,
        /// Declared type.
        expected: ValueType,
        /// Supplied type.
        actual: ValueType,
    },

    /// Rule safety violation (paper §3.1: the semantic safety checker).
    #[error("unsafe rule (line {line}): {msg}")]
    Unsafe {
        /// 1-based source line of the rule head.
        line: usize,
        /// Explanation of the violation.
        msg: String,
    },

    /// Negation (or aggregation) through recursion — no stratification
    /// exists.
    #[error("program is not stratifiable: {0}")]
    NotStratifiable(String),

    /// An IE callback reported a failure.
    #[error("IE function {function:?} failed: {msg}")]
    IeRuntime {
        /// Function name.
        function: String,
        /// Explanation from the callback.
        msg: String,
    },

    /// An IE callback returned a row of unexpected arity.
    #[error("IE function {function:?} returned a row of arity {actual}, atom expects {expected}")]
    IeOutputArity {
        /// Function name.
        function: String,
        /// Arity expected by the IE atom.
        expected: usize,
        /// Arity of the offending returned row.
        actual: usize,
    },

    /// A comparison guard applied to incomparable values.
    #[error("cannot compare {left} with {right}")]
    Incomparable {
        /// Type of the left operand.
        left: ValueType,
        /// Type of the right operand.
        right: ValueType,
    },

    /// An aggregation function failed.
    #[error("aggregation {function:?} failed: {msg}")]
    AggRuntime {
        /// Aggregation function name.
        function: String,
        /// Explanation.
        msg: String,
    },

    /// DataFrame bridge failure.
    #[error("dataframe error: {0}")]
    Frame(#[from] spannerlib_dataframe::FrameError),

    /// A query used in `export` must be a single query statement.
    #[error("expected a single query statement (e.g. ?R(x, \"c\")), got {0}")]
    NotAQuery(String),

    /// An invariant the planner relies on was violated at execution time
    /// (e.g. a step consumed a variable no earlier step bound). Safety
    /// analysis makes these impossible for plans it produced; a
    /// hand-built or corrupted plan degrades to this error instead of a
    /// process abort.
    #[error("internal planner error in rule {rule:?}: {detail}")]
    Internal {
        /// Head predicate (or source text) of the offending rule.
        rule: String,
        /// What invariant was violated.
        detail: String,
    },
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;
