//! The IE-function framework — pillar 3 of the paper (§3.3).
//!
//! An IE function is a **stateless** mapping from an input tuple to a
//! relation of output tuples. Anything implementing [`IeFunction`] — in
//! particular, any plain closure registered through
//! [`crate::Session::register`] — can be called from Spannerlog rules as
//! an IE atom `f(inputs) -> (outputs)`, turning host code into a callback
//! of the declarative layer.
//!
//! Functions receive an [`IeContext`] giving access to the session's
//! document store, so they can resolve spans to text and mint spans over
//! new or existing documents.

use crate::error::{EngineError, Result};
use spannerlib_core::{DocId, DocumentStore, Span, Value};
use std::sync::Arc;

/// Execution context handed to every IE call.
pub struct IeContext<'a> {
    docs: &'a mut DocumentStore,
}

impl<'a> IeContext<'a> {
    /// Wraps a document store.
    pub fn new(docs: &'a mut DocumentStore) -> Self {
        IeContext { docs }
    }

    /// Resolves a span to its substring.
    pub fn span_text(&self, span: &Span) -> Result<String> {
        Ok(self.docs.span_text(span)?.to_string())
    }

    /// Resolves a document id to its full text.
    pub fn doc_text(&self, id: DocId) -> Result<Arc<str>> {
        Ok(self.docs.resolve(id)?.clone())
    }

    /// Interns a text, returning its document id (idempotent).
    pub fn intern(&mut self, text: &str) -> DocId {
        self.docs.intern(text)
    }

    /// Creates a checked span over an interned document.
    pub fn make_span(&self, doc: DocId, start: usize, end: usize) -> Result<Span> {
        Ok(self.docs.span(doc, start, end)?)
    }

    /// Resolves a `str`-or-`span` value to `(text, doc, base_offset)` —
    /// the common entry point for text-consuming IE functions like `rgx`:
    /// a string argument is interned (so result spans can reference it),
    /// a span argument yields its substring with its own document and
    /// offset so result spans land in the *original* document.
    pub fn text_argument(&mut self, v: &Value) -> Result<(String, DocId, usize)> {
        match v {
            Value::Str(s) => {
                let doc = self.docs.intern(s);
                Ok((s.to_string(), doc, 0))
            }
            Value::Span(span) => {
                let text = self.docs.span_text(span)?.to_string();
                Ok((text, span.doc, span.start_usize()))
            }
            other => Err(EngineError::IeRuntime {
                function: "<text argument>".into(),
                msg: format!("expected str or span, got {}", other.value_type()),
            }),
        }
    }
}

/// Output of an IE call: a list of rows.
pub type IeOutput = Vec<Vec<Value>>;

/// A registered IE function.
pub trait IeFunction: Send + Sync {
    /// Number of inputs, or `None` for variadic functions (e.g. `format`).
    fn input_arity(&self) -> Option<usize>;

    /// Invokes the function on one input tuple. `n_outputs` is the arity
    /// expected by the calling IE atom — functions with shape-dependent
    /// output (like `rgx`, whose arity is the pattern's group count) may
    /// use it for validation.
    fn call(&self, args: &[Value], n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput>;
}

/// Adapter turning a closure into an [`IeFunction`].
pub struct ClosureIe<F> {
    arity: Option<usize>,
    f: F,
}

impl<F> ClosureIe<F>
where
    F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync,
{
    /// Wraps `f` with a fixed (or variadic, `None`) input arity.
    pub fn new(arity: Option<usize>, f: F) -> Self {
        ClosureIe { arity, f }
    }
}

impl<F> IeFunction for ClosureIe<F>
where
    F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync,
{
    fn input_arity(&self) -> Option<usize> {
        self.arity
    }

    fn call(&self, args: &[Value], _n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput> {
        (self.f)(args, ctx)
    }
}

/// Helper for boolean *filter* functions (zero outputs): `true` keeps the
/// binding row, `false` drops it.
pub fn filter_output(keep: bool) -> IeOutput {
    if keep {
        vec![vec![]]
    } else {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_interns_and_resolves() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let id = ctx.intern("hello world");
        let span = ctx.make_span(id, 0, 5).unwrap();
        assert_eq!(ctx.span_text(&span).unwrap(), "hello");
        assert_eq!(ctx.doc_text(id).unwrap().as_ref(), "hello world");
    }

    #[test]
    fn text_argument_interns_strings() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let (text, doc, base) = ctx.text_argument(&Value::str("abc")).unwrap();
        assert_eq!(text, "abc");
        assert_eq!(base, 0);
        assert_eq!(docs.text(doc), "abc");
    }

    #[test]
    fn text_argument_offsets_spans() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("xxabcxx");
        let span = docs.span(id, 2, 5).unwrap();
        let mut ctx = IeContext::new(&mut docs);
        let (text, doc, base) = ctx.text_argument(&Value::Span(span)).unwrap();
        assert_eq!(text, "abc");
        assert_eq!(doc, id);
        assert_eq!(base, 2);
    }

    #[test]
    fn text_argument_rejects_ints() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        assert!(ctx.text_argument(&Value::Int(3)).is_err());
    }

    #[test]
    fn closure_adapter() {
        let f = ClosureIe::new(Some(1), |args: &[Value], _ctx: &mut IeContext<'_>| {
            let n = args[0].as_int().unwrap();
            Ok((0..n).map(|i| vec![Value::Int(i)]).collect())
        });
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let out = f.call(&[Value::Int(3)], 1, &mut ctx).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(f.input_arity(), Some(1));
    }

    #[test]
    fn filter_output_shapes() {
        assert_eq!(filter_output(true), vec![Vec::<Value>::new()]);
        assert!(filter_output(false).is_empty());
    }
}
