//! The IE-function framework — pillar 3 of the paper (§3.3).
//!
//! An IE function is a **stateless** mapping from an input tuple to a
//! relation of output tuples. Anything implementing [`IeFunction`] — in
//! particular, any plain closure registered through
//! [`crate::Session::register`] — can be called from Spannerlog rules as
//! an IE atom `f(inputs) -> (outputs)`, turning host code into a callback
//! of the declarative layer.
//!
//! Functions receive an [`IeContext`] giving access to the session's
//! document store, so they can resolve spans to text and mint spans over
//! new or existing documents.

use crate::error::{EngineError, Result};
use spannerlib_cache::{MemoKey, SharedIeMemo};
use spannerlib_core::{DocId, DocumentStore, Span, Value};
use std::sync::Arc;

/// Execution context handed to every IE call.
pub struct IeContext<'a> {
    docs: &'a mut DocumentStore,
}

impl<'a> IeContext<'a> {
    /// Wraps a document store.
    pub fn new(docs: &'a mut DocumentStore) -> Self {
        IeContext { docs }
    }

    /// Resolves a span to its substring.
    pub fn span_text(&self, span: &Span) -> Result<String> {
        Ok(self.docs.span_text(span)?.to_string())
    }

    /// Resolves a document id to its full text.
    pub fn doc_text(&self, id: DocId) -> Result<Arc<str>> {
        Ok(self.docs.resolve(id)?.clone())
    }

    /// Interns a text, returning its document id (idempotent).
    pub fn intern(&mut self, text: &str) -> DocId {
        self.docs.intern(text)
    }

    /// Creates a checked span over an interned document.
    pub fn make_span(&self, doc: DocId, start: usize, end: usize) -> Result<Span> {
        Ok(self.docs.span(doc, start, end)?)
    }

    /// Resolves a `str`-or-`span` value to a [`TextArg`] — the common
    /// entry point for text-consuming IE functions like `rgx`. The text
    /// is available immediately (zero-copy for string arguments, which
    /// already share their `Arc<str>`); the backing *document* is minted
    /// lazily by [`TextArg::doc_base`], so functions whose output
    /// contains no spans over the text (`rgx_string`, filters, scalar
    /// extractors) never inflate the document store.
    pub fn text_arg(&self, v: &Value) -> Result<TextArg> {
        match v {
            Value::Str(s) => Ok(TextArg {
                text: s.clone(),
                origin: None,
            }),
            Value::Span(span) => Ok(TextArg {
                text: Arc::from(self.docs.span_text(span)?),
                origin: Some((span.doc, span.start_usize())),
            }),
            other => Err(EngineError::IeRuntime {
                function: "<text argument>".into(),
                msg: format!("expected str or span, got {}", other.value_type()),
            }),
        }
    }

    /// Eager variant of [`IeContext::text_arg`]: resolves to
    /// `(text, doc, base_offset)`, interning string arguments
    /// immediately. Prefer `text_arg` in functions that may not emit
    /// spans over the text.
    pub fn text_argument(&mut self, v: &Value) -> Result<(String, DocId, usize)> {
        let mut arg = self.text_arg(v)?;
        let (doc, base) = arg.doc_base(self);
        Ok((arg.text().to_string(), doc, base))
    }
}

/// A text-typed IE argument resolved by [`IeContext::text_arg`].
///
/// Spans produced over the text need a `(document, base offset)` pair;
/// for a *span* argument that pair is the argument's own document, while
/// for a *string* argument a document only exists once the text is
/// interned. `TextArg` defers that interning to the first
/// [`TextArg::doc_base`] call, so scalar-only extractions keep the
/// document store untouched.
pub struct TextArg {
    text: Arc<str>,
    /// `(doc, base)` — `None` until a string argument is interned.
    origin: Option<(DocId, usize)>,
}

impl TextArg {
    /// The argument's text content.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// A shared handle on the text (cheap clone; sidesteps borrowing
    /// `self` while iterating matches and minting spans).
    pub fn shared_text(&self) -> Arc<str> {
        self.text.clone()
    }

    /// The document and base offset for spans over this text. The first
    /// call on a string argument interns the text (sharing the existing
    /// `Arc`); span arguments and subsequent calls are free.
    pub fn doc_base(&mut self, ctx: &mut IeContext<'_>) -> (DocId, usize) {
        if let Some(origin) = self.origin {
            return origin;
        }
        let doc = ctx.docs.intern_arc(self.text.clone());
        self.origin = Some((doc, 0));
        (doc, 0)
    }
}

/// Output of an IE call: a list of rows.
pub type IeOutput = Vec<Vec<Value>>;

/// A registered IE function.
pub trait IeFunction: Send + Sync {
    /// Number of inputs, or `None` for variadic functions (e.g. `format`).
    fn input_arity(&self) -> Option<usize>;

    /// Invokes the function on one input tuple. `n_outputs` is the arity
    /// expected by the calling IE atom — functions with shape-dependent
    /// output (like `rgx`, whose arity is the pattern's group count) may
    /// use it for validation.
    fn call(&self, args: &[Value], n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput>;

    /// Whether results may be memoized by the session's IE cache.
    ///
    /// Defaults to `true`: the IE contract (paper §3.3) is a *stateless*
    /// mapping from inputs to output rows, which makes memoization
    /// transparent. Override to `false` for functions that break the
    /// contract on purpose (clocks, RNGs, external lookups that must
    /// stay fresh) — or register closures via `register_uncached`.
    fn cacheable(&self) -> bool {
        true
    }
}

/// Adapter turning a closure into an [`IeFunction`].
pub struct ClosureIe<F> {
    arity: Option<usize>,
    cacheable: bool,
    f: F,
}

impl<F> ClosureIe<F>
where
    F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync,
{
    /// Wraps `f` with a fixed (or variadic, `None`) input arity.
    pub fn new(arity: Option<usize>, f: F) -> Self {
        ClosureIe {
            arity,
            cacheable: true,
            f,
        }
    }

    /// Wraps a closure whose results must never be memoized (it is not
    /// a pure function of its arguments).
    pub fn uncached(arity: Option<usize>, f: F) -> Self {
        ClosureIe {
            arity,
            cacheable: false,
            f,
        }
    }
}

impl<F> IeFunction for ClosureIe<F>
where
    F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync,
{
    fn input_arity(&self) -> Option<usize> {
        self.arity
    }

    fn call(&self, args: &[Value], _n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput> {
        (self.f)(args, ctx)
    }

    fn cacheable(&self) -> bool {
        self.cacheable
    }
}

/// Invokes `f` on one argument tuple through the session's memo table:
/// a hit replays the cached rows without re-entering the function; a
/// miss calls it and stores the result. Uncacheable functions and
/// cache-off sessions fall straight through. The memo lock is never
/// held across the user function.
///
/// The second return value reports the memo outcome for tracing:
/// `Some(true)` hit, `Some(false)` miss, `None` when the call bypassed
/// the memo entirely.
pub(crate) fn cached_ie_call(
    f: &dyn IeFunction,
    name: &str,
    args: &[Value],
    n_outputs: usize,
    docs: &mut DocumentStore,
    cache: Option<&SharedIeMemo>,
) -> Result<(Arc<IeOutput>, Option<bool>)> {
    let Some(cache) = cache.filter(|_| f.cacheable()) else {
        let mut ctx = IeContext::new(docs);
        return Ok((Arc::new(f.call(args, n_outputs, &mut ctx)?), None));
    };
    let key = MemoKey::new(name, args, n_outputs);
    if let Some(hit) = cache.lock().get(&key) {
        return Ok((hit, Some(true)));
    }
    let mut ctx = IeContext::new(docs);
    let out = Arc::new(f.call(args, n_outputs, &mut ctx)?);
    // Entries are GC roots, so the memo charges each entry the full
    // text of every document its spans pin.
    cache.lock().insert(key, out.clone(), |id| {
        docs.resolve(id).map(|t| t.len()).unwrap_or(0)
    });
    Ok((out, Some(false)))
}

/// Helper for boolean *filter* functions (zero outputs): `true` keeps the
/// binding row, `false` drops it.
pub fn filter_output(keep: bool) -> IeOutput {
    if keep {
        vec![vec![]]
    } else {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_interns_and_resolves() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let id = ctx.intern("hello world");
        let span = ctx.make_span(id, 0, 5).unwrap();
        assert_eq!(ctx.span_text(&span).unwrap(), "hello");
        assert_eq!(ctx.doc_text(id).unwrap().as_ref(), "hello world");
    }

    #[test]
    fn text_argument_interns_strings() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let (text, doc, base) = ctx.text_argument(&Value::str("abc")).unwrap();
        assert_eq!(text, "abc");
        assert_eq!(base, 0);
        assert_eq!(docs.text(doc), "abc");
    }

    #[test]
    fn text_argument_offsets_spans() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("xxabcxx");
        let span = docs.span(id, 2, 5).unwrap();
        let mut ctx = IeContext::new(&mut docs);
        let (text, doc, base) = ctx.text_argument(&Value::Span(span)).unwrap();
        assert_eq!(text, "abc");
        assert_eq!(doc, id);
        assert_eq!(base, 2);
    }

    #[test]
    fn text_argument_rejects_ints() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        assert!(ctx.text_argument(&Value::Int(3)).is_err());
    }

    #[test]
    fn lazy_text_arg_does_not_intern_until_doc_base() {
        let mut docs = DocumentStore::new();
        let mut arg = {
            let ctx = IeContext::new(&mut docs);
            ctx.text_arg(&Value::str("scalar only")).unwrap()
        };
        assert_eq!(arg.text(), "scalar only");
        assert!(docs.is_empty(), "no span requested, nothing interned");

        let mut ctx = IeContext::new(&mut docs);
        let mut arg2 = ctx.text_arg(&Value::str("scalar only")).unwrap();
        let (doc, base) = arg2.doc_base(&mut ctx);
        assert_eq!(base, 0);
        assert_eq!(docs.text(doc), "scalar only");
        assert_eq!(docs.len(), 1);
        // Redundant: arg was dropped uninterned; doc_base is idempotent.
        let mut ctx = IeContext::new(&mut docs);
        let _ = arg.doc_base(&mut ctx);
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn lazy_text_arg_keeps_span_origin() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("xxabcxx");
        let span = docs.span(id, 2, 5).unwrap();
        let mut ctx = IeContext::new(&mut docs);
        let mut arg = ctx.text_arg(&Value::Span(span)).unwrap();
        assert_eq!(arg.text(), "abc");
        let (doc, base) = arg.doc_base(&mut ctx);
        assert_eq!((doc, base), (id, 2));
        assert_eq!(docs.len(), 1, "span arguments never intern a new doc");
    }

    #[test]
    fn closures_default_cacheable_with_uncached_escape_hatch() {
        let pure = ClosureIe::new(Some(0), |_: &[Value], _: &mut IeContext<'_>| Ok(vec![]));
        let impure = ClosureIe::uncached(Some(0), |_: &[Value], _: &mut IeContext<'_>| Ok(vec![]));
        assert!(pure.cacheable());
        assert!(!impure.cacheable());
    }

    #[test]
    fn closure_adapter() {
        let f = ClosureIe::new(Some(1), |args: &[Value], _ctx: &mut IeContext<'_>| {
            let n = args[0].as_int().unwrap();
            Ok((0..n).map(|i| vec![Value::Int(i)]).collect())
        });
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let out = f.call(&[Value::Int(3)], 1, &mut ctx).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(f.input_arity(), Some(1));
    }

    #[test]
    fn filter_output_shapes() {
        assert_eq!(filter_output(true), vec![Vec::<Value>::new()]);
        assert!(filter_output(false).is_empty());
    }
}
