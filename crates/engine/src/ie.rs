//! The IE-function framework — pillar 3 of the paper (§3.3).
//!
//! An IE function is a **stateless** mapping from an input tuple to a
//! relation of output tuples. Anything implementing [`IeFunction`] — in
//! particular, any plain closure registered through
//! [`crate::Session::register`] — can be called from Spannerlog rules as
//! an IE atom `f(inputs) -> (outputs)`, turning host code into a callback
//! of the declarative layer.
//!
//! Functions receive an [`IeContext`] giving access to the session's
//! document store, so they can resolve spans to text and mint spans over
//! new or existing documents.

use crate::error::{EngineError, Result};
use parking_lot::RwLock;
use spannerlib_cache::{MemoKey, SharedIeMemo};
use spannerlib_core::{DocId, DocumentStore, Span, Value};
use std::sync::Arc;

/// A document store shared across shard workers during a parallel
/// evaluation. Readers (span resolution, text lookup) take the lock
/// shared; interning new documents takes it exclusively. Interning is
/// content-addressed and therefore idempotent, so two workers racing to
/// intern the same text converge on one id.
pub type SharedDocs = RwLock<DocumentStore>;

/// Uniform access to the session's document store from both evaluation
/// modes: the serial path owns the store exclusively (no locking), while
/// shard workers on the parallel path share it behind a [`SharedDocs`]
/// lock. All IE plumbing routes through this handle so the two paths
/// run the same code.
pub enum DocsHandle<'a> {
    /// Serial evaluation: the caller holds the store exclusively, and
    /// every access is a direct (lock-free) borrow.
    Exclusive(&'a mut DocumentStore),
    /// Parallel evaluation: shard workers share the store; each access
    /// takes the read or write lock for its own duration only.
    Shared(&'a SharedDocs),
}

impl DocsHandle<'_> {
    /// Runs `f` with shared (read) access to the store.
    pub fn with_store<R>(&self, f: impl FnOnce(&DocumentStore) -> R) -> R {
        match self {
            DocsHandle::Exclusive(d) => f(d),
            DocsHandle::Shared(l) => f(&l.read()),
        }
    }

    /// Runs `f` with exclusive (write) access to the store.
    pub fn with_store_mut<R>(&mut self, f: impl FnOnce(&mut DocumentStore) -> R) -> R {
        match self {
            DocsHandle::Exclusive(d) => f(d),
            DocsHandle::Shared(l) => f(&mut l.write()),
        }
    }

    /// A shorter-lived handle on the same store — the handle analogue
    /// of reborrowing a `&mut`.
    pub fn reborrow(&mut self) -> DocsHandle<'_> {
        match self {
            DocsHandle::Exclusive(d) => DocsHandle::Exclusive(d),
            DocsHandle::Shared(l) => DocsHandle::Shared(l),
        }
    }
}

/// Execution context handed to every IE call.
pub struct IeContext<'a> {
    docs: DocsHandle<'a>,
}

impl<'a> IeContext<'a> {
    /// Wraps an exclusively held document store (the serial path).
    pub fn new(docs: &'a mut DocumentStore) -> Self {
        IeContext {
            docs: DocsHandle::Exclusive(docs),
        }
    }

    /// Wraps a document store shared across shard workers; each store
    /// access locks for its own duration only.
    pub fn shared(docs: &'a SharedDocs) -> Self {
        IeContext {
            docs: DocsHandle::Shared(docs),
        }
    }

    /// Wraps an existing handle (either mode).
    pub(crate) fn from_handle(docs: DocsHandle<'a>) -> Self {
        IeContext { docs }
    }

    /// Resolves a span to its substring.
    pub fn span_text(&self, span: &Span) -> Result<String> {
        Ok(self
            .docs
            .with_store(|d| d.span_text(span).map(|s| s.to_string()))?)
    }

    /// Resolves a document id to its full text.
    pub fn doc_text(&self, id: DocId) -> Result<Arc<str>> {
        Ok(self.docs.with_store(|d| d.resolve(id).cloned())?)
    }

    /// Interns a text, returning its document id (idempotent).
    pub fn intern(&mut self, text: &str) -> DocId {
        self.docs.with_store_mut(|d| d.intern(text))
    }

    /// Creates a checked span over an interned document.
    pub fn make_span(&self, doc: DocId, start: usize, end: usize) -> Result<Span> {
        Ok(self.docs.with_store(|d| d.span(doc, start, end))?)
    }

    /// Resolves a `str`-or-`span` value to a [`TextArg`] — the common
    /// entry point for text-consuming IE functions like `rgx`. The text
    /// is available immediately (zero-copy for string arguments, which
    /// already share their `Arc<str>`); the backing *document* is minted
    /// lazily by [`TextArg::doc_base`], so functions whose output
    /// contains no spans over the text (`rgx_string`, filters, scalar
    /// extractors) never inflate the document store.
    pub fn text_arg(&self, v: &Value) -> Result<TextArg> {
        match v {
            Value::Str(s) => Ok(TextArg {
                text: s.clone(),
                origin: None,
            }),
            Value::Span(span) => Ok(TextArg {
                text: self
                    .docs
                    .with_store(|d| d.span_text(span).map(Arc::<str>::from))?,
                origin: Some((span.doc, span.start_usize())),
            }),
            other => Err(EngineError::IeRuntime {
                function: "<text argument>".into(),
                msg: format!("expected str or span, got {}", other.value_type()),
            }),
        }
    }

    /// Eager variant of [`IeContext::text_arg`]: resolves to
    /// `(text, doc, base_offset)`, interning string arguments
    /// immediately. Prefer `text_arg` in functions that may not emit
    /// spans over the text.
    pub fn text_argument(&mut self, v: &Value) -> Result<(String, DocId, usize)> {
        let mut arg = self.text_arg(v)?;
        let (doc, base) = arg.doc_base(self);
        Ok((arg.text().to_string(), doc, base))
    }
}

/// A text-typed IE argument resolved by [`IeContext::text_arg`].
///
/// Spans produced over the text need a `(document, base offset)` pair;
/// for a *span* argument that pair is the argument's own document, while
/// for a *string* argument a document only exists once the text is
/// interned. `TextArg` defers that interning to the first
/// [`TextArg::doc_base`] call, so scalar-only extractions keep the
/// document store untouched.
pub struct TextArg {
    text: Arc<str>,
    /// `(doc, base)` — `None` until a string argument is interned.
    origin: Option<(DocId, usize)>,
}

impl TextArg {
    /// The argument's text content.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// A shared handle on the text (cheap clone; sidesteps borrowing
    /// `self` while iterating matches and minting spans).
    pub fn shared_text(&self) -> Arc<str> {
        self.text.clone()
    }

    /// The document and base offset for spans over this text. The first
    /// call on a string argument interns the text (sharing the existing
    /// `Arc`); span arguments and subsequent calls are free.
    pub fn doc_base(&mut self, ctx: &mut IeContext<'_>) -> (DocId, usize) {
        if let Some(origin) = self.origin {
            return origin;
        }
        let doc = ctx.docs.with_store_mut(|d| d.intern_arc(self.text.clone()));
        self.origin = Some((doc, 0));
        (doc, 0)
    }
}

/// Output of an IE call: a list of rows.
pub type IeOutput = Vec<Vec<Value>>;

/// A registered IE function.
pub trait IeFunction: Send + Sync {
    /// Number of inputs, or `None` for variadic functions (e.g. `format`).
    fn input_arity(&self) -> Option<usize>;

    /// Invokes the function on one input tuple. `n_outputs` is the arity
    /// expected by the calling IE atom — functions with shape-dependent
    /// output (like `rgx`, whose arity is the pattern's group count) may
    /// use it for validation.
    fn call(&self, args: &[Value], n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput>;

    /// Whether results may be memoized by the session's IE cache.
    ///
    /// Defaults to `true`: the IE contract (paper §3.3) is a *stateless*
    /// mapping from inputs to output rows, which makes memoization
    /// transparent. Override to `false` for functions that break the
    /// contract on purpose (clocks, RNGs, external lookups that must
    /// stay fresh) — or register closures via `register_uncached`.
    fn cacheable(&self) -> bool {
        true
    }
}

/// Adapter turning a closure into an [`IeFunction`].
pub struct ClosureIe<F> {
    arity: Option<usize>,
    cacheable: bool,
    f: F,
}

impl<F> ClosureIe<F>
where
    F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync,
{
    /// Wraps `f` with a fixed (or variadic, `None`) input arity.
    pub fn new(arity: Option<usize>, f: F) -> Self {
        ClosureIe {
            arity,
            cacheable: true,
            f,
        }
    }

    /// Wraps a closure whose results must never be memoized (it is not
    /// a pure function of its arguments).
    pub fn uncached(arity: Option<usize>, f: F) -> Self {
        ClosureIe {
            arity,
            cacheable: false,
            f,
        }
    }
}

impl<F> IeFunction for ClosureIe<F>
where
    F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync,
{
    fn input_arity(&self) -> Option<usize> {
        self.arity
    }

    fn call(&self, args: &[Value], _n_outputs: usize, ctx: &mut IeContext<'_>) -> Result<IeOutput> {
        (self.f)(args, ctx)
    }

    fn cacheable(&self) -> bool {
        self.cacheable
    }
}

/// Invokes `f` on one argument tuple through the session's memo table:
/// a hit replays the cached rows without re-entering the function; a
/// miss calls it and stores the result. Uncacheable functions and
/// cache-off sessions fall straight through. The memo lock is never
/// held across the user function.
///
/// The second return value reports the memo outcome for tracing:
/// `Some(true)` hit, `Some(false)` miss, `None` when the call bypassed
/// the memo entirely.
///
/// Lock order on the shared path: the memo lock is taken first and the
/// docs lock (inside the byte-charging closure) second; nothing in the
/// engine takes them in the opposite order.
pub(crate) fn cached_ie_call(
    f: &dyn IeFunction,
    name: &str,
    args: &[Value],
    n_outputs: usize,
    docs: &mut DocsHandle<'_>,
    cache: Option<&SharedIeMemo>,
) -> Result<(Arc<IeOutput>, Option<bool>)> {
    let Some(cache) = cache.filter(|_| f.cacheable()) else {
        let mut ctx = IeContext::from_handle(docs.reborrow());
        return Ok((Arc::new(f.call(args, n_outputs, &mut ctx)?), None));
    };
    let key = MemoKey::new(name, args, n_outputs);
    if let Some(hit) = cache.lock().get(&key) {
        return Ok((hit, Some(true)));
    }
    let out = {
        let mut ctx = IeContext::from_handle(docs.reborrow());
        Arc::new(f.call(args, n_outputs, &mut ctx)?)
    };
    // Entries are GC roots, so the memo charges each entry the full
    // text of every document its spans pin.
    cache.lock().insert(key, out.clone(), |id| {
        docs.with_store(|d| d.resolve(id).map(|t| t.len()).unwrap_or(0))
    });
    Ok((out, Some(false)))
}

/// Helper for boolean *filter* functions (zero outputs): `true` keeps the
/// binding row, `false` drops it.
pub fn filter_output(keep: bool) -> IeOutput {
    if keep {
        vec![vec![]]
    } else {
        vec![]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_interns_and_resolves() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let id = ctx.intern("hello world");
        let span = ctx.make_span(id, 0, 5).unwrap();
        assert_eq!(ctx.span_text(&span).unwrap(), "hello");
        assert_eq!(ctx.doc_text(id).unwrap().as_ref(), "hello world");
    }

    #[test]
    fn text_argument_interns_strings() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let (text, doc, base) = ctx.text_argument(&Value::str("abc")).unwrap();
        assert_eq!(text, "abc");
        assert_eq!(base, 0);
        assert_eq!(docs.text(doc), "abc");
    }

    #[test]
    fn text_argument_offsets_spans() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("xxabcxx");
        let span = docs.span(id, 2, 5).unwrap();
        let mut ctx = IeContext::new(&mut docs);
        let (text, doc, base) = ctx.text_argument(&Value::Span(span)).unwrap();
        assert_eq!(text, "abc");
        assert_eq!(doc, id);
        assert_eq!(base, 2);
    }

    #[test]
    fn text_argument_rejects_ints() {
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        assert!(ctx.text_argument(&Value::Int(3)).is_err());
    }

    #[test]
    fn lazy_text_arg_does_not_intern_until_doc_base() {
        let mut docs = DocumentStore::new();
        let mut arg = {
            let ctx = IeContext::new(&mut docs);
            ctx.text_arg(&Value::str("scalar only")).unwrap()
        };
        assert_eq!(arg.text(), "scalar only");
        assert!(docs.is_empty(), "no span requested, nothing interned");

        let mut ctx = IeContext::new(&mut docs);
        let mut arg2 = ctx.text_arg(&Value::str("scalar only")).unwrap();
        let (doc, base) = arg2.doc_base(&mut ctx);
        assert_eq!(base, 0);
        assert_eq!(docs.text(doc), "scalar only");
        assert_eq!(docs.len(), 1);
        // Redundant: arg was dropped uninterned; doc_base is idempotent.
        let mut ctx = IeContext::new(&mut docs);
        let _ = arg.doc_base(&mut ctx);
        assert_eq!(docs.len(), 1);
    }

    #[test]
    fn lazy_text_arg_keeps_span_origin() {
        let mut docs = DocumentStore::new();
        let id = docs.intern("xxabcxx");
        let span = docs.span(id, 2, 5).unwrap();
        let mut ctx = IeContext::new(&mut docs);
        let mut arg = ctx.text_arg(&Value::Span(span)).unwrap();
        assert_eq!(arg.text(), "abc");
        let (doc, base) = arg.doc_base(&mut ctx);
        assert_eq!((doc, base), (id, 2));
        assert_eq!(docs.len(), 1, "span arguments never intern a new doc");
    }

    #[test]
    fn closures_default_cacheable_with_uncached_escape_hatch() {
        let pure = ClosureIe::new(Some(0), |_: &[Value], _: &mut IeContext<'_>| Ok(vec![]));
        let impure = ClosureIe::uncached(Some(0), |_: &[Value], _: &mut IeContext<'_>| Ok(vec![]));
        assert!(pure.cacheable());
        assert!(!impure.cacheable());
    }

    #[test]
    fn closure_adapter() {
        let f = ClosureIe::new(Some(1), |args: &[Value], _ctx: &mut IeContext<'_>| {
            let n = args[0].as_int().unwrap();
            Ok((0..n).map(|i| vec![Value::Int(i)]).collect())
        });
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        let out = f.call(&[Value::Int(3)], 1, &mut ctx).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(f.input_arity(), Some(1));
    }

    #[test]
    fn filter_output_shapes() {
        assert_eq!(filter_output(true), vec![Vec::<Value>::new()]);
        assert!(filter_output(false).is_empty());
    }
}
