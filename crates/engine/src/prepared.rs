//! The prepare-once/execute-many layer: compiled programs, prepared
//! queries, and immutable snapshots.
//!
//! Spanner programs admit a compile-once/run-per-document factoring
//! (Doleschal et al., *Split-Correctness in Information Extraction*):
//! parsing, safety analysis (which also sequences IE calls),
//! stratification, and planning depend only on the rules and the
//! registry — not on the data. A [`CompiledProgram`] is that factored
//! artifact; [`PreparedQuery`] pairs it with a parsed query so serving
//! paths pay neither parsing nor planning per request, and [`Snapshot`]
//! freezes a fully evaluated database for lock-free concurrent reads.

use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::optimizer::SplitClass;
use crate::plan::RulePlan;
use crate::query::run_query;
use crate::registry::Registry;
use crate::safety::{analyze, SafetyContext};
use crate::session::Session;
use crate::strata::stratify;
use rustc_hash::FxHashSet;
use spannerlib_core::{DocumentStore, Relation, Span};
use spannerlib_dataframe::{DataFrame, FromRow};
use spannerlog_parser::{parse_program, Query, Rule, Statement};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Parses `source` expecting exactly one query statement.
pub(crate) fn parse_single_query(source: &str) -> Result<Query> {
    let program = parse_program(source)?;
    let [Statement::Query(q)] = &program.statements[..] else {
        return Err(EngineError::NotAQuery(source.trim().to_string()));
    };
    Ok(q.clone())
}

static NEXT_PROGRAM_ID: AtomicU64 = AtomicU64::new(1);

/// A rule set taken through safety analysis, IE sequencing,
/// stratification, and planning exactly once.
#[derive(Debug)]
pub struct CompiledProgram {
    /// Instance id, unique per compilation (fingerprints evaluation).
    pub(crate) id: u64,
    /// Stratified, executable rule plans.
    pub(crate) strata: Vec<Vec<RulePlan>>,
    /// Extensional relations the program reads (sorted): the only
    /// relations whose mutation can change derived content.
    pub(crate) input_relations: Vec<String>,
    /// Per-rule split-correctness verdicts, for introspection.
    pub(crate) shard_plan: ShardPlan,
}

/// One rule's split-correctness verdict, as recorded on a
/// [`CompiledProgram`]'s [`ShardPlan`].
#[derive(Debug, Clone)]
pub struct ShardRule {
    /// Head predicate of the rule.
    pub head: String,
    /// The rule's source text.
    pub source: String,
    /// Whether the rule may run shard-parallel.
    pub parallel: bool,
    /// For parallel rules: the name of the document variable the shards
    /// partition on.
    pub doc_var: Option<String>,
    /// For serial rules: why the analysis rejected sharding.
    pub reason: Option<&'static str>,
}

/// The compile-time shard plan of a program: which rules the
/// split-correctness analysis cleared for document-parallel execution
/// and which fall back to the serial path (with reasons). Purely
/// informational — evaluation consults the per-rule verdicts directly.
#[derive(Debug, Clone, Default)]
pub struct ShardPlan {
    /// One verdict per compiled rule, in stratum order.
    pub rules: Vec<ShardRule>,
}

impl ShardPlan {
    /// Number of rules cleared for shard-parallel execution.
    pub fn parallel_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.parallel).count()
    }

    /// Number of rules pinned to the serial path.
    pub fn serial_rules(&self) -> usize {
        self.rules.len() - self.parallel_rules()
    }
}

// Compile-time guarantee: shard plans cross threads with the programs
// that carry them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardPlan>()
};

impl CompiledProgram {
    /// Compiles `rules` against the relation names known to `db` and the
    /// IE/aggregation `registry`. Unsafe rules and unstratifiable
    /// programs are rejected here — before any data is touched.
    pub(crate) fn compile(
        rules: &[Rule],
        db: &Database,
        registry: &Registry,
    ) -> Result<CompiledProgram> {
        // Predicates that resolve to relations: extensional names plus
        // every rule head.
        let mut relation_names: FxHashSet<String> =
            db.iter().map(|(name, _)| name.clone()).collect();
        let heads: FxHashSet<String> = rules.iter().map(|r| r.head_predicate.clone()).collect();
        relation_names.extend(heads.iter().cloned());

        let ctx = SafetyContext {
            relations: &relation_names,
            registry,
        };
        let mut plans = rules
            .iter()
            .map(|r| analyze(r, &ctx))
            .collect::<Result<Vec<_>>>()?;
        // Planner annotation: per-step binding/barrier metadata, so the
        // execute-time cost ordering pays no analysis per firing.
        for plan in &mut plans {
            crate::optimizer::annotate(plan, registry);
        }

        // Every predicate a rule depends on is a fingerprint input —
        // including rule heads. Derived inserts bypass the generation
        // counters, so a purely derived dependency sits at generation 0
        // and never perturbs the fingerprint; but the moment the host
        // mutates any dependency (a fact into an extensional head, an
        // import that shadows a derived name), its generation moves and
        // the fixpoint re-runs. Filtering on compile-time extensionality
        // here would blind old prepared queries to names that become
        // extensional later.
        let mut input_relations: Vec<String> = plans
            .iter()
            .flat_map(|p| p.dependencies.iter())
            .map(|(dep, _)| dep.clone())
            .collect::<FxHashSet<_>>()
            .into_iter()
            .collect();
        input_relations.sort_unstable();

        let strata = stratify(plans)?;
        let shard_plan = ShardPlan {
            rules: strata
                .iter()
                .flatten()
                .map(|plan| {
                    let split = plan.opt.as_ref().map(|o| o.split).unwrap_or_default();
                    let (doc_var, reason) = match split {
                        SplitClass::Parallel { doc_var } => {
                            (plan.var_names.get(doc_var).cloned(), None)
                        }
                        SplitClass::Serial { reason } => (None, Some(reason)),
                    };
                    ShardRule {
                        head: plan.head_predicate.clone(),
                        source: plan.source.clone(),
                        parallel: split.is_parallel(),
                        doc_var,
                        reason,
                    }
                })
                .collect(),
        };

        Ok(CompiledProgram {
            id: NEXT_PROGRAM_ID.fetch_add(1, Ordering::Relaxed),
            strata,
            input_relations,
            shard_plan,
        })
    }

    /// Number of strata.
    pub fn strata_count(&self) -> usize {
        self.strata.len()
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.strata.iter().map(Vec::len).sum()
    }

    /// The extensional relations this program reads, sorted by name.
    pub fn input_relations(&self) -> &[String] {
        &self.input_relations
    }

    /// The compile-time shard plan: which rules the split-correctness
    /// analysis cleared for document-parallel execution.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.shard_plan
    }
}

/// A shareable handle on a [`CompiledProgram`] — the result of
/// [`Session::prepare_program`]. Derive per-query artifacts with
/// [`PreparedProgram::query`].
#[derive(Debug, Clone)]
pub struct PreparedProgram {
    pub(crate) inner: Arc<CompiledProgram>,
}

impl PreparedProgram {
    /// Parses `query_src` (e.g. `?R(usr, "gmail")`) into a
    /// [`PreparedQuery`] bound to this program.
    pub fn query(&self, query_src: &str) -> Result<PreparedQuery> {
        Ok(PreparedQuery {
            query: parse_single_query(query_src)?,
            source: query_src.to_string(),
            program: self.inner.clone(),
        })
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.inner
    }
}

/// A query compiled once and executable many times — the serving-path
/// counterpart of [`Session::export`].
///
/// Execution evaluates the *prepared* program (the rules as of
/// [`Session::prepare`] time) against the session's current extensional
/// data; thanks to per-relation generation counters, an unchanged EDB
/// skips the fixpoint entirely.
///
/// Relations that are **both imported and rule heads** carry per-tuple
/// fact/derived provenance: re-evaluation retracts exactly the tuples
/// earlier fixpoints derived, so re-importing a rule's inputs yields
/// the same result as a fresh session — host-asserted facts survive,
/// stale derivations do not.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub(crate) query: Query,
    pub(crate) source: String,
    pub(crate) program: Arc<CompiledProgram>,
}

impl PreparedQuery {
    /// Executes against `session`'s current data, re-running the
    /// fixpoint only if an input relation changed since the last
    /// evaluation of this program.
    pub fn execute(&self, session: &mut Session) -> Result<DataFrame> {
        session.ensure_evaluated_with(&self.program)?;
        run_query(session.database(), &self.query)
    }

    /// Like [`PreparedQuery::execute`], converting each row via
    /// [`FromRow`].
    pub fn execute_typed<T: FromRow>(&self, session: &mut Session) -> Result<Vec<T>> {
        Ok(self.execute(session)?.to_typed()?)
    }

    /// The original query source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The program this query was prepared against.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }
}

/// An immutable, fully evaluated view of a session — `Send + Sync`, so
/// prepared queries can run against it concurrently from many threads
/// while the originating session keeps mutating.
///
/// Obtained from [`Session::snapshot`], which runs the fixpoint first;
/// snapshot queries are therefore pure reads.
#[derive(Clone)]
pub struct Snapshot {
    db: Arc<Database>,
    /// The originating session's IE memo, shared for observability:
    /// snapshot queries are pure reads that never invoke IE functions,
    /// but handing the memo over lets serving threads watch hit rates
    /// via [`Snapshot::cache_stats`]. (Document rooting is the
    /// *session's* concern — its compaction marks memo roots through
    /// its own handle, and a snapshot's frozen store is never
    /// compacted.)
    cache: Option<spannerlib_cache::SharedIeMemo>,
    /// Profile of the fixpoint run that produced the frozen state
    /// (`None` when the session evaluated with tracing off).
    profile: Option<Arc<spannerlib_trace::EvalProfile>>,
    /// Evaluation fingerprint hash; see [`Snapshot::fingerprint`].
    fingerprint: u64,
    /// Sequence number of the fixpoint run behind the frozen state; see
    /// [`Snapshot::eval_seq`].
    eval_seq: u64,
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("relations", &self.db.iter().count())
            .field("cache_shared", &self.cache.is_some())
            .field("profiled", &self.profile.is_some())
            .finish()
    }
}

// Compile-time guarantee: a Snapshot can cross and be shared between
// threads. (Also asserted in the integration tests.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>()
};

impl Snapshot {
    pub(crate) fn new(
        db: Arc<Database>,
        cache: Option<spannerlib_cache::SharedIeMemo>,
        profile: Option<Arc<spannerlib_trace::EvalProfile>>,
        fingerprint: u64,
        eval_seq: u64,
    ) -> Snapshot {
        Snapshot {
            db,
            cache,
            profile,
            fingerprint,
            eval_seq,
        }
    }

    /// Hash of the evaluation fingerprint behind this snapshot: the
    /// compiled program's identity plus the generation of every
    /// relation it reads. Two snapshots of the same session carry equal
    /// fingerprints iff no read relation changed (and the rules did not
    /// recompile) between them, which makes the value usable as an
    /// `ETag`-style version token for serving caches. Process-local:
    /// program ids are allocated per process, so the hash is not
    /// meaningful across restarts and must not be persisted.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Sequence number of the session's fixpoint run that produced this
    /// snapshot's derived state (see `Session::eval_seq`): zero if the
    /// session never actually evaluated, otherwise the 1-based count of
    /// the producing run. Unlike [`Snapshot::fingerprint`], consecutive
    /// values are ordered, so a serving layer can log *which* coalesced
    /// evaluation a request ended up reading.
    pub fn eval_seq(&self) -> u64 {
        self.eval_seq
    }

    /// Lifetime counters of the shared IE memo (all zero when the
    /// originating session had the cache disabled).
    pub fn cache_stats(&self) -> spannerlib_cache::CacheStats {
        self.cache
            .as_ref()
            .map(|c| c.lock().stats())
            .unwrap_or_default()
    }

    /// Profile of the evaluation that produced this snapshot's derived
    /// state — `None` when the session traced at `TraceLevel::Off` (see
    /// `SessionBuilder::tracing`). Snapshot queries themselves are pure
    /// reads and add nothing to it.
    pub fn profile(&self) -> Option<Arc<spannerlib_trace::EvalProfile>> {
        self.profile.clone()
    }

    /// Evaluates a query string against the frozen data.
    pub fn export(&self, query_src: &str) -> Result<DataFrame> {
        run_query(&self.db, &parse_single_query(query_src)?)
    }

    /// Like [`Snapshot::export`], converting each row via [`FromRow`].
    pub fn export_typed<T: FromRow>(&self, query_src: &str) -> Result<Vec<T>> {
        Ok(self.export(query_src)?.to_typed()?)
    }

    /// Executes a prepared query. The snapshot is already evaluated, so
    /// this skips even the fingerprint check — it is a pure indexed read.
    pub fn execute(&self, query: &PreparedQuery) -> Result<DataFrame> {
        run_query(&self.db, &query.query)
    }

    /// Like [`Snapshot::execute`], converting each row via [`FromRow`].
    pub fn execute_typed<T: FromRow>(&self, query: &PreparedQuery) -> Result<Vec<T>> {
        Ok(self.execute(query)?.to_typed()?)
    }

    /// Reads a relation by name (empty if it does not exist).
    pub fn relation(&self, name: &str) -> Relation {
        self.db.relation_or_empty(name)
    }

    /// The frozen document store (resolves spans exported from this
    /// snapshot).
    pub fn docs(&self) -> &DocumentStore {
        &self.db.docs
    }

    /// Resolves a span to its text.
    pub fn span_text(&self, span: &Span) -> Result<String> {
        Ok(self.db.docs.span_text(span)?.to_string())
    }
}
