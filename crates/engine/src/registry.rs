//! Registries for IE functions, aggregation functions, and conversions.

use crate::aggregate::{builtin_aggregates, builtin_conversions, AggFunction, Conversion};
use crate::builtins::install_builtins;
use crate::error::{EngineError, Result};
use crate::ie::{ClosureIe, IeContext, IeFunction, IeOutput};
use rustc_hash::FxHashMap;
use spannerlib_core::Value;
use std::sync::Arc;

/// The session-wide registry of callable host functionality.
pub struct Registry {
    ie: FxHashMap<String, Arc<dyn IeFunction>>,
    aggregates: FxHashMap<String, Arc<dyn AggFunction>>,
    conversions: FxHashMap<String, Arc<dyn Conversion>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A registry pre-populated with the builtin IE functions (`rgx`
    /// family, string/span/arithmetic helpers) and builtin aggregations
    /// (`count`, `sum`, `min`, `max`, `avg`, `lex_concat`).
    pub fn new() -> Self {
        let mut r = Registry {
            ie: FxHashMap::default(),
            aggregates: FxHashMap::default(),
            conversions: FxHashMap::default(),
        };
        install_builtins(&mut r);
        for (name, agg) in builtin_aggregates() {
            r.aggregates.insert(name, agg);
        }
        for (name, conv) in builtin_conversions() {
            r.conversions.insert(name, conv);
        }
        r
    }

    /// Registers (or replaces) an IE function object.
    pub fn register_ie(&mut self, name: &str, f: Arc<dyn IeFunction>) {
        self.ie.insert(name.to_string(), f);
    }

    /// Registers a closure as an IE function — the `session.register(foo,
    /// …)` of the paper's §3.3. `arity` is the input arity (`None` =
    /// variadic).
    pub fn register_closure<F>(&mut self, name: &str, arity: Option<usize>, f: F)
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.register_ie(name, Arc::new(ClosureIe::new(arity, f)));
    }

    /// Registers a closure whose results must never be memoized by the
    /// session's IE cache (not a pure function of its arguments).
    pub fn register_closure_uncached<F>(&mut self, name: &str, arity: Option<usize>, f: F)
    where
        F: Fn(&[Value], &mut IeContext<'_>) -> Result<IeOutput> + Send + Sync + 'static,
    {
        self.register_ie(name, Arc::new(ClosureIe::uncached(arity, f)));
    }

    /// Looks up an IE function.
    pub fn ie(&self, name: &str) -> Result<&Arc<dyn IeFunction>> {
        self.ie
            .get(name)
            .ok_or_else(|| EngineError::UnknownIeFunction(name.to_string()))
    }

    /// Whether an IE function named `name` exists.
    pub fn has_ie(&self, name: &str) -> bool {
        self.ie.contains_key(name)
    }

    /// Registers (or replaces) an aggregation function.
    pub fn register_aggregate(&mut self, name: &str, f: Arc<dyn AggFunction>) {
        self.aggregates.insert(name.to_string(), f);
    }

    /// Looks up an aggregation function.
    pub fn aggregate(&self, name: &str) -> Result<&Arc<dyn AggFunction>> {
        self.aggregates
            .get(name)
            .ok_or_else(|| EngineError::UnknownAggregate(name.to_string()))
    }

    /// Registers (or replaces) a conversion function usable inside
    /// aggregation terms.
    pub fn register_conversion(&mut self, name: &str, f: Arc<dyn Conversion>) {
        self.conversions.insert(name.to_string(), f);
    }

    /// Looks up a conversion function.
    pub fn conversion(&self, name: &str) -> Result<&Arc<dyn Conversion>> {
        self.conversions
            .get(name)
            .ok_or_else(|| EngineError::UnknownConversion(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ie::filter_output;
    use spannerlib_core::DocumentStore;

    #[test]
    fn builtins_present() {
        let r = Registry::new();
        for f in [
            "rgx",
            "rgx_string",
            "rgx_all",
            "concat",
            "contains",
            "format",
        ] {
            assert!(r.has_ie(f), "missing builtin {f}");
        }
        for a in ["count", "sum", "min", "max", "avg", "lex_concat"] {
            assert!(r.aggregate(a).is_ok(), "missing aggregate {a}");
        }
        assert!(r.conversion("str").is_ok());
    }

    #[test]
    fn closure_registration_and_call() {
        let mut r = Registry::new();
        r.register_closure("is_even", Some(1), |args, _ctx| {
            Ok(filter_output(args[0].as_int().unwrap() % 2 == 0))
        });
        let f = r.ie("is_even").unwrap().clone();
        let mut docs = DocumentStore::new();
        let mut ctx = IeContext::new(&mut docs);
        assert_eq!(f.call(&[Value::Int(4)], 0, &mut ctx).unwrap().len(), 1);
        assert_eq!(f.call(&[Value::Int(3)], 0, &mut ctx).unwrap().len(), 0);
    }

    #[test]
    fn unknown_lookups_error() {
        let r = Registry::new();
        assert!(matches!(
            r.ie("nope"),
            Err(EngineError::UnknownIeFunction(_))
        ));
        assert!(matches!(
            r.aggregate("nope"),
            Err(EngineError::UnknownAggregate(_))
        ));
    }

    #[test]
    fn user_function_can_shadow_builtin() {
        let mut r = Registry::new();
        r.register_closure("concat", Some(1), |_args, _ctx| Ok(vec![]));
        assert_eq!(r.ie("concat").unwrap().input_arity(), Some(1));
    }
}
