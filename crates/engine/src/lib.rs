//! # spannerlog-engine
//!
//! The Spannerlog evaluation engine — pillar 1 of the paper, plus the
//! [`Session`] embedding API of pillars 2 and 3.
//!
//! ## Architecture
//!
//! ```text
//!  source cell ──parse──▶ AST ──safety──▶ RulePlan ──stratify──▶ strata
//!                                            │                    │
//!            IE registry (builtins + host closures)         eval (naive /
//!                                            │               semi-naive)
//!                                            ▼                    │
//!                             binding-row pipeline ◀──────────────┘
//!                      (scan-join · IE call · negation · compare)
//!                                            │
//!                              head projection / aggregation
//! ```
//!
//! * [`safety`] implements the paper's semantic safety checker, which
//!   also derives the IE execution order inside each rule body (§3.1).
//! * [`strata`] stratifies negation and aggregation (extensions beyond
//!   the paper's core, documented in DESIGN.md).
//! * [`eval`] provides naive bottom-up evaluation — the algorithm the
//!   paper's implementation uses — and the semi-naive refinement, kept
//!   observationally equivalent (property-tested) and compared in the
//!   benches.
//! * [`builtins`] registers the `rgx` family and the string/span/number
//!   helper functions the paper's examples assume.
//! * [`Session`] is the host-facing object: import/export DataFrames,
//!   run cells, register IE callbacks.
//! * [`prepared`] layers a prepare-once/execute-many lifecycle on top:
//!   [`SessionBuilder`] → [`PreparedProgram`] / [`PreparedQuery`] →
//!   [`Snapshot`] for lock-free concurrent reads.

pub mod aggregate;
pub mod builtins;
pub mod database;
pub mod error;
pub mod eval;
pub mod ie;
pub mod optimizer;
pub mod plan;
pub mod prepared;
pub mod query;
pub mod registry;
pub mod safety;
pub mod session;
pub mod strata;

pub use database::Database;
pub use error::{EngineError, LimitCulprit, Result};
pub use eval::{EvalLimits, EvalStats, EvalStrategy};
pub use ie::{filter_output, DocsHandle, IeContext, IeFunction, IeOutput, SharedDocs, TextArg};
pub use optimizer::SplitClass;
pub use prepared::{
    CompiledProgram, PreparedProgram, PreparedQuery, ShardPlan, ShardRule, Snapshot,
};
pub use registry::Registry;
pub use session::{Session, SessionBuilder, SessionStats, DEFAULT_IE_CACHE_BYTES};
// The cache subsystem's user-facing vocabulary, re-exported so hosts
// configure sessions without depending on spannerlib-cache directly.
pub use spannerlib_cache::{CacheStats, DocGc};
pub use spannerlib_core::CompactionReport;
// Observability vocabulary from the trace crate, re-exported so hosts
// configure tracing and consume profiles without a direct dependency.
pub use spannerlib_trace::{
    EvalProfile, IeFunctionProfile, NullTracer, RingTracer, RuleProfile, SpanEvent, SpanKind,
    StratumProfile, TraceLevel, Tracer,
};
