//! Stratification of rule sets.
//!
//! Negation and aggregation must not feed back into themselves through
//! recursion. The classical stratification condition is computed here: a
//! predicate's stratum must be ≥ the strata of its positive dependencies
//! and > the strata of its negated/aggregated dependencies. If no
//! assignment exists, the program is rejected.

use crate::error::{EngineError, Result};
use crate::plan::RulePlan;
use rustc_hash::FxHashMap;

/// Groups rule plans into evaluation strata, bottom-up.
///
/// Each stratum is evaluated to fixpoint before the next begins, so a
/// rule reading a negated/aggregated predicate sees its final content.
pub fn stratify(plans: Vec<RulePlan>) -> Result<Vec<Vec<RulePlan>>> {
    // Collect predicates: heads and dependencies.
    let mut stratum: FxHashMap<String, usize> = FxHashMap::default();
    for p in &plans {
        stratum.entry(p.head_predicate.clone()).or_insert(0);
        for (dep, _) in &p.dependencies {
            stratum.entry(dep.clone()).or_insert(0);
        }
    }
    let n = stratum.len().max(1);

    // Iterate the constraint system to fixpoint; more than n·n updates
    // means a negative cycle.
    let mut updates = 0usize;
    loop {
        let mut changed = false;
        for p in &plans {
            let head_stratum = stratum[&p.head_predicate];
            let mut required = head_stratum;
            for (dep, negative) in &p.dependencies {
                let dep_stratum = stratum[dep];
                let needed = if *negative {
                    dep_stratum + 1
                } else {
                    dep_stratum
                };
                required = required.max(needed);
            }
            if required > head_stratum {
                if required >= n {
                    return Err(EngineError::NotStratifiable(format!(
                        "predicate {:?} depends on itself through negation or aggregation",
                        p.head_predicate
                    )));
                }
                stratum.insert(p.head_predicate.clone(), required);
                changed = true;
                updates += 1;
                if updates > n * n + n {
                    return Err(EngineError::NotStratifiable(
                        "stratum constraints do not converge".into(),
                    ));
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Bucket rules by their head's stratum.
    let max_stratum = plans
        .iter()
        .map(|p| stratum[&p.head_predicate])
        .max()
        .unwrap_or(0);
    let mut buckets: Vec<Vec<RulePlan>> = (0..=max_stratum).map(|_| Vec::new()).collect();
    for p in plans {
        let s = stratum[&p.head_predicate];
        buckets[s].push(p);
    }
    // Drop empty leading/inner buckets only if fully empty program.
    Ok(buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{HeadOut, RulePlan};

    fn plan(head: &str, deps: &[(&str, bool)]) -> RulePlan {
        RulePlan {
            head_predicate: head.to_string(),
            steps: Vec::new(),
            head: vec![HeadOut::Const(spannerlib_core::Value::Int(0))],
            var_names: Vec::new(),
            line: 1,
            source: format!("{head}() <- …."),
            dependencies: deps.iter().map(|(d, n)| (d.to_string(), *n)).collect(),
            opt: None,
        }
    }

    #[test]
    fn positive_recursion_in_one_stratum() {
        let strata = stratify(vec![
            plan("Path", &[("Edge", false)]),
            plan("Path", &[("Path", false), ("Edge", false)]),
        ])
        .unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].len(), 2);
    }

    #[test]
    fn negation_pushes_to_later_stratum() {
        let strata = stratify(vec![
            plan("Reach", &[("Edge", false)]),
            plan("Unreach", &[("Node", false), ("Reach", true)]),
        ])
        .unwrap();
        assert_eq!(strata.len(), 2);
        assert_eq!(strata[0][0].head_predicate, "Reach");
        assert_eq!(strata[1][0].head_predicate, "Unreach");
    }

    #[test]
    fn negative_self_loop_rejected() {
        let err = stratify(vec![plan("P", &[("P", true)])]).unwrap_err();
        assert!(matches!(err, EngineError::NotStratifiable(_)));
    }

    #[test]
    fn negative_cycle_through_two_predicates_rejected() {
        let err = stratify(vec![plan("A", &[("B", true)]), plan("B", &[("A", true)])]).unwrap_err();
        assert!(matches!(err, EngineError::NotStratifiable(_)));
    }

    #[test]
    fn aggregation_behaves_like_negation() {
        // Aggregation over a predicate in the same recursive component is
        // encoded as a negative dependency by the safety pass; here we
        // just confirm the stratifier separates it.
        let strata = stratify(vec![
            plan("Base", &[("Edge", false)]),
            plan("Summary", &[("Base", true)]), // agg-marked dep
        ])
        .unwrap();
        assert_eq!(strata.len(), 2);
    }

    #[test]
    fn chain_of_negations_builds_strata() {
        let strata = stratify(vec![
            plan("A", &[("E", false)]),
            plan("B", &[("A", true)]),
            plan("C", &[("B", true)]),
        ])
        .unwrap();
        assert_eq!(strata.len(), 3);
    }

    #[test]
    fn empty_program() {
        assert_eq!(stratify(vec![]).unwrap().len(), 1);
    }
}
