//! Compiled rule plans and their execution.
//!
//! A [`RulePlan`] is a rule whose body has been reordered by the safety
//! checker ([`crate::safety`]) into an executable pipeline over *binding
//! rows* — partial assignments of the rule's variables (`None` =
//! unbound). Each [`Step`] either extends the bindings (relation
//! scan-join, IE call) or filters them (negation, comparison, zero-output
//! IE call).

use crate::error::{EngineError, Result};
use crate::ie::{cached_ie_call, IeContext};
use crate::registry::Registry;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_cache::SharedIeMemo;
use spannerlib_core::{DocumentStore, Relation, Tuple, Value};
use spannerlib_trace::{RunTrace, SpanId, SpanKind};
use spannerlog_parser::CmpOp;

/// A term resolved against the rule's variable table.
#[derive(Debug, Clone, PartialEq)]
pub enum PTerm {
    /// Variable with index into the binding row.
    Var(usize),
    /// A constant value.
    Const(Value),
    /// `_` — matches anything, binds nothing.
    Wildcard,
}

/// One pipeline step.
#[derive(Debug, Clone)]
pub enum Step {
    /// Join current bindings with a stored relation.
    Scan {
        /// Relation to scan.
        relation: String,
        /// One term per relation column.
        terms: Vec<PTerm>,
    },
    /// Call an IE function for each binding row and join its output.
    Ie {
        /// Function name (for diagnostics).
        function: String,
        /// Input terms (bound vars / constants — guaranteed by safety).
        inputs: Vec<PTerm>,
        /// Output terms (new vars bind; bound vars/constants filter).
        outputs: Vec<PTerm>,
    },
    /// Drop rows for which a matching tuple exists.
    Negation {
        /// Relation that must *not* contain a match.
        relation: String,
        /// One term per column (all vars bound; wildcards allowed).
        terms: Vec<PTerm>,
    },
    /// Drop rows failing a comparison (all vars bound).
    Compare {
        /// Left operand.
        left: PTerm,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: PTerm,
    },
}

/// A head output column.
#[derive(Debug, Clone)]
pub enum HeadOut {
    /// Project a bound variable.
    Var(usize),
    /// Emit a constant.
    Const(Value),
    /// Aggregate a variable within each group.
    Aggregate {
        /// Aggregation function name.
        func: String,
        /// Conversion chain as written (outermost first).
        conversions: Vec<String>,
        /// Index of the aggregated variable.
        var: usize,
    },
}

/// An executable rule.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// Head predicate.
    pub head_predicate: String,
    /// Ordered pipeline.
    pub steps: Vec<Step>,
    /// Head projection (aggregates trigger the group-by path).
    pub head: Vec<HeadOut>,
    /// Variable names by index (diagnostics).
    pub var_names: Vec<String>,
    /// Source line of the rule.
    pub line: usize,
    /// The rule's source text as reconstructed by the parser
    /// (diagnostics: limit attribution, trace labels).
    pub source: String,
    /// `(predicate, through_negation_or_aggregation)` dependencies for
    /// stratification.
    pub dependencies: Vec<(String, bool)>,
}

impl RulePlan {
    /// Whether the plan has any aggregate head column.
    pub fn has_aggregation(&self) -> bool {
        self.head
            .iter()
            .any(|h| matches!(h, HeadOut::Aggregate { .. }))
    }
}

/// A binding row: `None` = variable not yet bound.
type Row = Vec<Option<Value>>;

/// The execution environment of [`execute`], bundled so the signature
/// stays within clippy's argument budget as instrumentation grew.
pub struct ExecCtx<'a> {
    /// IE / aggregate / conversion registry.
    pub registry: &'a Registry,
    /// Step index whose scan reads from `deltas` instead of `relations`
    /// (semi-naive evaluation); `None` for a full evaluation.
    pub delta_at: Option<usize>,
    /// Per-round deltas of recursive predicates.
    pub deltas: &'a FxHashMap<String, Relation>,
    /// IE memo table, when enabled.
    pub cache: Option<&'a SharedIeMemo>,
}

/// Where one [`execute`] call reports its trace data: the run's
/// collector, the rule's profiling handle, and the enclosing rule span.
pub struct TraceCtx<'a> {
    /// The evaluation run's collector.
    pub trace: &'a mut RunTrace,
    /// Handle from `RunTrace::register_rule` for the executing rule.
    pub rule: usize,
    /// The rule span join/IE-batch spans nest under.
    pub parent: SpanId,
}

/// Executes `plan` against the given relations, returning the derived
/// head tuples. `ctx.delta_at`, when set, makes the scan at that step
/// index read from `ctx.deltas` instead of `relations` (semi-naive
/// evaluation). `ctx.cache`, when set, memoizes IE calls across rows,
/// reruns, and executions. Join and IE-batch work is reported through
/// `tr` (every call is a no-op when tracing is off).
pub fn execute(
    plan: &RulePlan,
    relations: &FxHashMap<String, Relation>,
    docs: &mut DocumentStore,
    ctx: &ExecCtx<'_>,
    tr: &mut TraceCtx<'_>,
) -> Result<Vec<Tuple>> {
    let n_vars = plan.var_names.len();
    let empty = Relation::new(spannerlib_core::Schema::empty());
    let mut rows: Vec<Row> = vec![vec![None; n_vars]];

    for (i, step) in plan.steps.iter().enumerate() {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        match step {
            Step::Scan { relation, terms } => {
                let rel = if ctx.delta_at == Some(i) {
                    ctx.deltas.get(relation.as_str()).unwrap_or(&empty)
                } else {
                    relations.get(relation.as_str()).unwrap_or(&empty)
                };
                tr.trace.join_scanned(tr.rule, rel.len() as u64);
                let span = tr
                    .trace
                    .open(tr.parent, SpanKind::Join, || format!("scan {relation}"));
                let joined = scan_join(rows, rel, terms, relation);
                tr.trace.close(span);
                rows = joined?;
            }
            Step::Ie {
                function,
                inputs,
                outputs,
            } => {
                let f = ctx.registry.ie(function)?.clone();
                // Batch rows by their concrete argument tuple:
                // *cacheable* IE functions are stateless, so each
                // distinct tuple is invoked (or memo-probed) exactly
                // once even when many binding rows agree on the inputs.
                // Uncacheable functions keep one call per row — their
                // whole point is that repeated calls may differ.
                let batch = f.cacheable();
                let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
                let mut by_args: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
                for row in rows {
                    let args: Vec<Value> = inputs
                        .iter()
                        .map(|t| match t {
                            PTerm::Var(v) => row[*v].clone().expect("safety: inputs bound"),
                            PTerm::Const(c) => c.clone(),
                            PTerm::Wildcard => unreachable!("safety rejects wildcard inputs"),
                        })
                        .collect();
                    match by_args.get(&args).filter(|_| batch) {
                        Some(&g) => groups[g].1.push(row),
                        None => {
                            if batch {
                                by_args.insert(args.clone(), groups.len());
                            }
                            groups.push((args, vec![row]));
                        }
                    }
                }
                let span = tr.trace.open(tr.parent, SpanKind::IeBatch, || {
                    format!("{function} ×{}", groups.len())
                });
                let mut next = Vec::new();
                for (args, group_rows) in groups {
                    // Error paths may leak `span`; RunTrace::finish
                    // closes leaked spans at the abort timestamp.
                    let t0 = tr.trace.now_ns();
                    let (out_rows, memo_hit) =
                        cached_ie_call(&*f, function, &args, outputs.len(), docs, ctx.cache)?;
                    tr.trace.ie_call(function, memo_hit, t0);
                    for out in out_rows.iter() {
                        if out.len() != outputs.len() {
                            return Err(EngineError::IeOutputArity {
                                function: function.clone(),
                                expected: outputs.len(),
                                actual: out.len(),
                            });
                        }
                    }
                    for row in group_rows {
                        for out in out_rows.iter() {
                            if let Some(extended) = unify_values(&row, outputs, out) {
                                next.push(extended);
                            }
                        }
                    }
                }
                tr.trace.close(span);
                rows = dedupe(next);
            }
            Step::Negation { relation, terms } => {
                let rel = relations.get(relation.as_str()).unwrap_or(&empty);
                rows.retain(|row| !exists_match(rel, terms, row));
            }
            Step::Compare { left, op, right } => {
                let mut filtered = Vec::with_capacity(rows.len());
                for row in rows {
                    let keep = {
                        let a = term_value(left, &row);
                        let b = term_value(right, &row);
                        compare(a, b, *op)?
                    };
                    if keep {
                        filtered.push(row);
                    }
                }
                rows = filtered;
            }
        }
    }

    project_head(plan, rows, docs, ctx.registry)
}

fn term_value<'r>(t: &'r PTerm, row: &'r Row) -> &'r Value {
    match t {
        PTerm::Var(v) => row[*v].as_ref().expect("safety: comparison vars bound"),
        PTerm::Const(c) => c,
        PTerm::Wildcard => unreachable!("safety rejects wildcard comparison operands"),
    }
}

fn compare(a: &Value, b: &Value, op: CmpOp) -> Result<bool> {
    use std::cmp::Ordering;
    let ord: Ordering = match (a, b) {
        // Numeric cross-type comparison promotes to float.
        (Value::Int(x), Value::Float(y)) => (*x as f64).total_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
        _ if a.value_type() == b.value_type() => a.cmp(b),
        _ => {
            // Eq/Neq across types are well-defined (always unequal);
            // ordering across types is a type error.
            return match op {
                CmpOp::Eq => Ok(false),
                CmpOp::Neq => Ok(true),
                _ => Err(EngineError::Incomparable {
                    left: a.value_type(),
                    right: b.value_type(),
                }),
            };
        }
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Neq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

/// Hash join of binding rows with a relation.
///
/// Columns whose term is a constant or an already-bound variable form the
/// join key; remaining variable columns bind new variables (repeated new
/// variables unify left-to-right). The bound-variable set is uniform
/// across rows at any step, so it is read off the first row.
fn scan_join(rows: Vec<Row>, rel: &Relation, terms: &[PTerm], relation: &str) -> Result<Vec<Row>> {
    let bound: Vec<bool> = rows[0].iter().map(Option::is_some).collect();

    let mut key_cols: Vec<usize> = Vec::new();
    for (c, t) in terms.iter().enumerate() {
        match t {
            PTerm::Const(_) => key_cols.push(c),
            PTerm::Var(v) if bound[*v] => key_cols.push(c),
            _ => {}
        }
    }

    // Build an index over relation tuples keyed by the join columns.
    let mut index: FxHashMap<Vec<&Value>, Vec<&Tuple>> = FxHashMap::default();
    'tuples: for tuple in rel.iter() {
        if tuple.arity() != terms.len() {
            return Err(EngineError::Arity {
                relation: relation.to_string(),
                expected: terms.len(),
                actual: tuple.arity(),
            });
        }
        for &c in &key_cols {
            if let PTerm::Const(v) = &terms[c] {
                if &tuple[c] != v {
                    continue 'tuples;
                }
            }
        }
        let key: Vec<&Value> = key_cols.iter().map(|&c| &tuple[c]).collect();
        index.entry(key).or_default().push(tuple);
    }

    let mut out = Vec::new();
    for row in &rows {
        let key: Vec<&Value> = key_cols
            .iter()
            .map(|&c| match &terms[c] {
                PTerm::Const(v) => v,
                PTerm::Var(v) => row[*v].as_ref().expect("key col is bound"),
                PTerm::Wildcard => unreachable!("wildcards are not key columns"),
            })
            .collect();
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for tuple in candidates {
            if let Some(extended) = unify_values(row, terms, tuple.values()) {
                out.push(extended);
            }
        }
    }
    Ok(dedupe(out))
}

/// Unifies concrete `values` against `terms`, extending `row` where a
/// variable is unbound and filtering where it is bound or constant.
fn unify_values(row: &Row, terms: &[PTerm], values: &[Value]) -> Option<Row> {
    let mut extended = row.clone();
    for (c, t) in terms.iter().enumerate() {
        match t {
            PTerm::Wildcard => {}
            PTerm::Const(v) => {
                if &values[c] != v {
                    return None;
                }
            }
            PTerm::Var(v) => match &extended[*v] {
                Some(existing) => {
                    if existing != &values[c] {
                        return None;
                    }
                }
                None => extended[*v] = Some(values[c].clone()),
            },
        }
    }
    Some(extended)
}

fn exists_match(rel: &Relation, terms: &[PTerm], row: &Row) -> bool {
    rel.iter().any(|tuple| {
        tuple.arity() == terms.len()
            && terms.iter().enumerate().all(|(c, t)| match t {
                PTerm::Wildcard => true,
                PTerm::Const(v) => &tuple[c] == v,
                PTerm::Var(v) => Some(&tuple[c]) == row[*v].as_ref(),
            })
    })
}

fn dedupe(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// Projects binding rows through the head, grouping if any aggregate
/// column is present.
fn project_head(
    plan: &RulePlan,
    rows: Vec<Row>,
    docs: &mut DocumentStore,
    registry: &Registry,
) -> Result<Vec<Tuple>> {
    let var_value =
        |row: &Row, v: usize| -> Value { row[v].clone().expect("safety: head vars bound") };

    if !plan.has_aggregation() {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            out.push(Tuple::new(plan.head.iter().map(|h| match h {
                HeadOut::Var(v) => var_value(&row, *v),
                HeadOut::Const(c) => c.clone(),
                HeadOut::Aggregate { .. } => unreachable!("no aggregation"),
            })));
        }
        return Ok(out);
    }

    // Group-by: key = non-aggregate head columns; each aggregate folds
    // the distinct (key, agg-vars) projections (set semantics — see
    // DESIGN.md §4 "aggregation semantics").
    let agg_vars: Vec<usize> = plan
        .head
        .iter()
        .filter_map(|h| match h {
            HeadOut::Aggregate { var, .. } => Some(*var),
            _ => None,
        })
        .collect();

    let mut groups: FxHashMap<Vec<Value>, Vec<Vec<Value>>> = FxHashMap::default();
    let mut seen: FxHashSet<(Vec<Value>, Vec<Value>)> = FxHashSet::default();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    for row in &rows {
        let key: Vec<Value> = plan
            .head
            .iter()
            .filter_map(|h| match h {
                HeadOut::Var(v) => Some(var_value(row, *v)),
                HeadOut::Const(c) => Some(c.clone()),
                HeadOut::Aggregate { .. } => None,
            })
            .collect();
        let aggs: Vec<Value> = agg_vars.iter().map(|&v| var_value(row, v)).collect();
        if seen.insert((key.clone(), aggs.clone())) {
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(aggs);
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in group_order {
        let members = &groups[&key];
        let mut tuple: Vec<Value> = Vec::with_capacity(plan.head.len());
        let mut key_iter = key.iter();
        let mut agg_idx = 0usize;
        for h in &plan.head {
            match h {
                HeadOut::Var(_) | HeadOut::Const(_) => {
                    tuple.push(key_iter.next().expect("key arity").clone());
                }
                HeadOut::Aggregate {
                    func, conversions, ..
                } => {
                    let mut values: Vec<Value> =
                        members.iter().map(|m| m[agg_idx].clone()).collect();
                    // Conversions apply innermost-first; they are stored
                    // outermost-first as written.
                    for conv_name in conversions.iter().rev() {
                        let conv = registry.conversion(conv_name)?;
                        let ctx = IeContext::new(docs);
                        values = values
                            .iter()
                            .map(|v| conv.convert(v, &ctx))
                            .collect::<Result<_>>()?;
                    }
                    let agg = registry.aggregate(func)?;
                    tuple.push(agg.apply(&values)?);
                    agg_idx += 1;
                }
            }
        }
        out.push(Tuple::new(tuple));
    }
    Ok(out)
}
