//! Compiled rule plans and their execution.
//!
//! A [`RulePlan`] is a rule whose body has been reordered by the safety
//! checker ([`crate::safety`]) into an executable pipeline over *binding
//! rows* — partial assignments of the rule's variables (`None` =
//! unbound). Each [`Step`] either extends the bindings (relation
//! scan-join, IE call) or filters them (negation, comparison, zero-output
//! IE call).

use crate::error::{EngineError, Result};
use crate::ie::{cached_ie_call, IeContext};
use crate::optimizer::{self, IndexCache, RuleOpt, TupleIndex};
use crate::registry::Registry;
use rustc_hash::{FxHashMap, FxHashSet};
use spannerlib_cache::SharedIeMemo;
use spannerlib_core::{DocumentStore, Relation, Tuple, Value};
use spannerlib_trace::{RunTrace, SpanId, SpanKind};
use spannerlog_parser::CmpOp;
use std::cell::RefCell;
use std::rc::Rc;

/// A term resolved against the rule's variable table.
#[derive(Debug, Clone, PartialEq)]
pub enum PTerm {
    /// Variable with index into the binding row.
    Var(usize),
    /// A constant value.
    Const(Value),
    /// `_` — matches anything, binds nothing.
    Wildcard,
}

/// One pipeline step.
#[derive(Debug, Clone)]
pub enum Step {
    /// Join current bindings with a stored relation.
    Scan {
        /// Relation to scan.
        relation: String,
        /// One term per relation column.
        terms: Vec<PTerm>,
    },
    /// Call an IE function for each binding row and join its output.
    Ie {
        /// Function name (for diagnostics).
        function: String,
        /// Input terms (bound vars / constants — guaranteed by safety).
        inputs: Vec<PTerm>,
        /// Output terms (new vars bind; bound vars/constants filter).
        outputs: Vec<PTerm>,
    },
    /// Drop rows for which a matching tuple exists.
    Negation {
        /// Relation that must *not* contain a match.
        relation: String,
        /// One term per column (all vars bound; wildcards allowed).
        terms: Vec<PTerm>,
    },
    /// Drop rows failing a comparison (all vars bound).
    Compare {
        /// Left operand.
        left: PTerm,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: PTerm,
    },
}

/// A head output column.
#[derive(Debug, Clone)]
pub enum HeadOut {
    /// Project a bound variable.
    Var(usize),
    /// Emit a constant.
    Const(Value),
    /// Aggregate a variable within each group.
    Aggregate {
        /// Aggregation function name.
        func: String,
        /// Conversion chain as written (outermost first).
        conversions: Vec<String>,
        /// Index of the aggregated variable.
        var: usize,
    },
}

/// An executable rule.
#[derive(Debug, Clone)]
pub struct RulePlan {
    /// Head predicate.
    pub head_predicate: String,
    /// Ordered pipeline.
    pub steps: Vec<Step>,
    /// Head projection (aggregates trigger the group-by path).
    pub head: Vec<HeadOut>,
    /// Variable names by index (diagnostics).
    pub var_names: Vec<String>,
    /// Source line of the rule.
    pub line: usize,
    /// The rule's source text as reconstructed by the parser
    /// (diagnostics: limit attribution, trace labels).
    pub source: String,
    /// `(predicate, through_negation_or_aggregation)` dependencies for
    /// stratification.
    pub dependencies: Vec<(String, bool)>,
    /// Planner annotation ([`crate::optimizer::annotate`]), filled at
    /// compile time. `None` (e.g. for hand-built plans) executes the
    /// steps in textual order.
    pub opt: Option<RuleOpt>,
}

impl RulePlan {
    /// Whether the plan has any aggregate head column.
    pub fn has_aggregation(&self) -> bool {
        self.head
            .iter()
            .any(|h| matches!(h, HeadOut::Aggregate { .. }))
    }
}

/// A binding row: `None` = variable not yet bound.
type Row = Vec<Option<Value>>;

/// The execution environment of [`execute`], bundled so the signature
/// stays within clippy's argument budget as instrumentation grew.
pub struct ExecCtx<'a> {
    /// IE / aggregate / conversion registry.
    pub registry: &'a Registry,
    /// Step index whose scan reads from `deltas` instead of `relations`
    /// (semi-naive evaluation); `None` for a full evaluation.
    pub delta_at: Option<usize>,
    /// Per-round deltas of recursive predicates.
    pub deltas: &'a FxHashMap<String, Relation>,
    /// IE memo table, when enabled.
    pub cache: Option<&'a SharedIeMemo>,
    /// Whether the cost-based planner reorders annotated rule bodies.
    pub planner: bool,
    /// Evaluation-wide scan-index cache (planner on); `None` falls back
    /// to building a fresh borrowed index per scan.
    pub indexes: Option<&'a RefCell<IndexCache>>,
}

/// Where one [`execute`] call reports its trace data: the run's
/// collector, the rule's profiling handle, and the enclosing rule span.
pub struct TraceCtx<'a> {
    /// The evaluation run's collector.
    pub trace: &'a mut RunTrace,
    /// Handle from `RunTrace::register_rule` for the executing rule.
    pub rule: usize,
    /// The rule span join/IE-batch spans nest under.
    pub parent: SpanId,
}

/// Executes `plan` against the given relations, returning the derived
/// head tuples. `ctx.delta_at`, when set, makes the scan at that step
/// index read from `ctx.deltas` instead of `relations` (semi-naive
/// evaluation). `ctx.cache`, when set, memoizes IE calls across rows,
/// reruns, and executions. Join and IE-batch work is reported through
/// `tr` (every call is a no-op when tracing is off).
pub fn execute(
    plan: &RulePlan,
    relations: &FxHashMap<String, Relation>,
    docs: &mut DocumentStore,
    ctx: &ExecCtx<'_>,
    tr: &mut TraceCtx<'_>,
) -> Result<Vec<Tuple>> {
    validate_var_indexes(plan)?;
    let n_vars = plan.var_names.len();
    let empty = Relation::new(spannerlib_core::Schema::empty());
    let mut rows: Vec<Row> = vec![vec![None; n_vars]];

    // Delta-aware cardinality of the relation scanned by step `i` —
    // the planner's cost input and the trace's estimate column.
    let scan_rows = |i: usize| -> usize {
        let Some(Step::Scan { relation, .. }) = plan.steps.get(i) else {
            return 0;
        };
        let map = if ctx.delta_at == Some(i) {
            ctx.deltas
        } else {
            relations
        };
        map.get(relation.as_str()).map_or(0, Relation::len)
    };

    let order: Vec<usize> = match plan.opt.as_ref().filter(|_| ctx.planner) {
        Some(opt) => {
            let order = optimizer::order_steps(plan, opt, scan_rows);
            tr.trace
                .plan_chosen(tr.rule, || optimizer::describe(plan, &order, scan_rows));
            order
        }
        None => (0..plan.steps.len()).collect(),
    };

    for &i in &order {
        let step = &plan.steps[i];
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        match step {
            Step::Scan { relation, terms } => {
                let is_delta = ctx.delta_at == Some(i);
                let rel = if is_delta {
                    ctx.deltas.get(relation.as_str()).unwrap_or(&empty)
                } else {
                    relations.get(relation.as_str()).unwrap_or(&empty)
                };
                tr.trace.join_scanned(tr.rule, rel.len() as u64);
                let span = tr
                    .trace
                    .open(tr.parent, SpanKind::Join, || format!("scan {relation}"));
                // Deltas share their relation's name but mutate between
                // rounds, so only full-relation scans hit the cache.
                let joined = match ctx.indexes.filter(|_| !is_delta) {
                    Some(cache) => {
                        scan_join_indexed(plan, rows, rel, terms, relation, &mut cache.borrow_mut())
                    }
                    None => scan_join(plan, rows, rel, terms, relation),
                };
                tr.trace.close(span);
                rows = joined?;
            }
            Step::Ie {
                function,
                inputs,
                outputs,
            } => {
                let f = ctx.registry.ie(function)?.clone();
                // Batch rows by their concrete argument tuple:
                // *cacheable* IE functions are stateless, so each
                // distinct tuple is invoked (or memo-probed) exactly
                // once even when many binding rows agree on the inputs.
                // Uncacheable functions keep one call per row — their
                // whole point is that repeated calls may differ.
                let batch = f.cacheable();
                let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
                let mut by_args: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
                for row in rows {
                    let mut args: Vec<Value> = Vec::with_capacity(inputs.len());
                    for t in inputs {
                        args.push(match t {
                            PTerm::Var(v) => row[*v].clone().ok_or_else(|| {
                                internal(
                                    plan,
                                    format!(
                                        "input {} of IE function {function:?} is unbound",
                                        var_name(plan, *v)
                                    ),
                                )
                            })?,
                            PTerm::Const(c) => c.clone(),
                            PTerm::Wildcard => {
                                return Err(internal(
                                    plan,
                                    format!("wildcard input to IE function {function:?}"),
                                ))
                            }
                        });
                    }
                    match by_args.get(&args).filter(|_| batch) {
                        Some(&g) => groups[g].1.push(row),
                        None => {
                            if batch {
                                by_args.insert(args.clone(), groups.len());
                            }
                            groups.push((args, vec![row]));
                        }
                    }
                }
                let span = tr.trace.open(tr.parent, SpanKind::IeBatch, || {
                    format!("{function} ×{}", groups.len())
                });
                let mut next = Vec::new();
                for (args, group_rows) in groups {
                    // Error paths may leak `span`; RunTrace::finish
                    // closes leaked spans at the abort timestamp.
                    let t0 = tr.trace.now_ns();
                    let (out_rows, memo_hit) =
                        cached_ie_call(&*f, function, &args, outputs.len(), docs, ctx.cache)?;
                    tr.trace.ie_call(function, memo_hit, t0);
                    for out in out_rows.iter() {
                        if out.len() != outputs.len() {
                            return Err(EngineError::IeOutputArity {
                                function: function.clone(),
                                expected: outputs.len(),
                                actual: out.len(),
                            });
                        }
                    }
                    for row in group_rows {
                        for out in out_rows.iter() {
                            if let Some(extended) = unify_values(&row, outputs, out) {
                                next.push(extended);
                            }
                        }
                    }
                }
                tr.trace.close(span);
                rows = dedupe(next);
            }
            Step::Negation { relation, terms } => {
                let rel = relations.get(relation.as_str()).unwrap_or(&empty);
                rows.retain(|row| !exists_match(rel, terms, row));
            }
            Step::Compare { left, op, right } => {
                let mut filtered = Vec::with_capacity(rows.len());
                for row in rows {
                    let keep = {
                        let a = term_value(left, &row, plan)?;
                        let b = term_value(right, &row, plan)?;
                        compare(a, b, *op)?
                    };
                    if keep {
                        filtered.push(row);
                    }
                }
                rows = filtered;
            }
        }
    }

    project_head(plan, rows, docs, ctx.registry)
}

/// A structured "the plan violated a binding invariant" error — the
/// degradation path for malformed plans that safety analysis would
/// never produce.
fn internal(plan: &RulePlan, detail: String) -> EngineError {
    EngineError::Internal {
        rule: if plan.source.is_empty() {
            plan.head_predicate.clone()
        } else {
            plan.source.clone()
        },
        detail,
    }
}

/// Variable name for diagnostics; tolerates out-of-range indexes.
fn var_name(plan: &RulePlan, v: usize) -> String {
    match plan.var_names.get(v) {
        Some(name) => format!("{name:?}"),
        None => format!("#{v}"),
    }
}

/// One cheap pass over the plan so every raw `row[v]` index below is in
/// range: a malformed plan (variable index past the variable table)
/// degrades to [`EngineError::Internal`] instead of an index panic.
fn validate_var_indexes(plan: &RulePlan) -> Result<()> {
    let n = plan.var_names.len();
    let check = |terms: &[PTerm]| -> Result<()> {
        for t in terms {
            if let PTerm::Var(v) = t {
                if *v >= n {
                    return Err(internal(
                        plan,
                        format!("variable index {v} out of range ({n} variables)"),
                    ));
                }
            }
        }
        Ok(())
    };
    for step in &plan.steps {
        match step {
            Step::Scan { terms, .. } | Step::Negation { terms, .. } => check(terms)?,
            Step::Ie {
                inputs, outputs, ..
            } => {
                check(inputs)?;
                check(outputs)?;
            }
            Step::Compare { left, op: _, right } => {
                check(std::slice::from_ref(left))?;
                check(std::slice::from_ref(right))?;
            }
        }
    }
    for h in &plan.head {
        let v = match h {
            HeadOut::Var(v) | HeadOut::Aggregate { var: v, .. } => *v,
            HeadOut::Const(_) => continue,
        };
        if v >= n {
            return Err(internal(
                plan,
                format!("head variable index {v} out of range ({n} variables)"),
            ));
        }
    }
    Ok(())
}

fn term_value<'r>(t: &'r PTerm, row: &'r Row, plan: &RulePlan) -> Result<&'r Value> {
    match t {
        PTerm::Var(v) => row[*v].as_ref().ok_or_else(|| {
            internal(
                plan,
                format!("comparison operand {} is unbound", var_name(plan, *v)),
            )
        }),
        PTerm::Const(c) => Ok(c),
        PTerm::Wildcard => Err(internal(plan, "wildcard comparison operand".to_string())),
    }
}

fn compare(a: &Value, b: &Value, op: CmpOp) -> Result<bool> {
    use std::cmp::Ordering;
    let ord: Ordering = match (a, b) {
        // Numeric cross-type comparison promotes to float.
        (Value::Int(x), Value::Float(y)) => (*x as f64).total_cmp(y),
        (Value::Float(x), Value::Int(y)) => x.total_cmp(&(*y as f64)),
        _ if a.value_type() == b.value_type() => a.cmp(b),
        _ => {
            // Eq/Neq across types are well-defined (always unequal);
            // ordering across types is a type error.
            return match op {
                CmpOp::Eq => Ok(false),
                CmpOp::Neq => Ok(true),
                _ => Err(EngineError::Incomparable {
                    left: a.value_type(),
                    right: b.value_type(),
                }),
            };
        }
    };
    Ok(match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Neq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    })
}

/// Hash join of binding rows with a relation.
///
/// Columns whose term is a constant or an already-bound variable form the
/// join key; remaining variable columns bind new variables (repeated new
/// variables unify left-to-right). The bound-variable set is uniform
/// across rows at any step, so it is read off the first row.
fn scan_join(
    plan: &RulePlan,
    rows: Vec<Row>,
    rel: &Relation,
    terms: &[PTerm],
    relation: &str,
) -> Result<Vec<Row>> {
    let key_cols = join_key_cols(&rows[0], terms);

    // Build an index over relation tuples keyed by the join columns.
    let mut index: FxHashMap<Vec<&Value>, Vec<&Tuple>> = FxHashMap::default();
    'tuples: for tuple in rel.iter() {
        if tuple.arity() != terms.len() {
            return Err(EngineError::Arity {
                relation: relation.to_string(),
                expected: terms.len(),
                actual: tuple.arity(),
            });
        }
        for &c in &key_cols {
            if let PTerm::Const(v) = &terms[c] {
                if &tuple[c] != v {
                    continue 'tuples;
                }
            }
        }
        let key: Vec<&Value> = key_cols.iter().map(|&c| &tuple[c]).collect();
        index.entry(key).or_default().push(tuple);
    }

    let mut out = Vec::new();
    for row in &rows {
        let mut key: Vec<&Value> = Vec::with_capacity(key_cols.len());
        for &c in &key_cols {
            key.push(match &terms[c] {
                PTerm::Const(v) => v,
                PTerm::Var(v) => row[*v]
                    .as_ref()
                    .ok_or_else(|| join_key_unbound(plan, relation, &terms[c]))?,
                PTerm::Wildcard => return Err(join_key_unbound(plan, relation, &terms[c])),
            });
        }
        let Some(candidates) = index.get(&key) else {
            continue;
        };
        for tuple in candidates {
            if let Some(extended) = unify_values(row, terms, tuple.values()) {
                out.push(extended);
            }
        }
    }
    Ok(dedupe(out))
}

/// The join-key columns of a scan: constants plus already-bound
/// variables. The bound-variable set is uniform across rows at any
/// step, so it is read off `first`.
fn join_key_cols(first: &Row, terms: &[PTerm]) -> Vec<usize> {
    let mut key_cols: Vec<usize> = Vec::new();
    for (c, t) in terms.iter().enumerate() {
        match t {
            PTerm::Const(_) => key_cols.push(c),
            PTerm::Var(v) if first[*v].is_some() => key_cols.push(c),
            _ => {}
        }
    }
    key_cols
}

fn join_key_unbound(plan: &RulePlan, relation: &str, t: &PTerm) -> EngineError {
    let what = match t {
        PTerm::Var(v) => format!("variable {}", var_name(plan, *v)),
        _ => "wildcard".to_string(),
    };
    internal(
        plan,
        format!("join key {what} of scan over {relation:?} is unbound"),
    )
}

/// [`scan_join`] against the per-evaluation [`IndexCache`]: the index
/// is owned (keys cloned, `Arc`-backed values so clones are cheap) and
/// keyed by `(relation, row count, key columns)`, making it reusable
/// across fixpoint rounds and sibling rules — including rules that
/// filter the same columns with *different* constants, since constants
/// participate as ordinary key columns.
fn scan_join_indexed(
    plan: &RulePlan,
    rows: Vec<Row>,
    rel: &Relation,
    terms: &[PTerm],
    relation: &str,
    cache: &mut IndexCache,
) -> Result<Vec<Row>> {
    if rel.is_empty() {
        return Ok(Vec::new());
    }
    let key_cols = join_key_cols(&rows[0], terms);

    let index: Rc<TupleIndex> = match cache.lookup(relation, rel.len(), &key_cols) {
        Some(ix) => ix,
        None => {
            let mut map: FxHashMap<Vec<Value>, Vec<Tuple>> = FxHashMap::default();
            for tuple in rel.iter() {
                if tuple.arity() != terms.len() {
                    return Err(EngineError::Arity {
                        relation: relation.to_string(),
                        expected: terms.len(),
                        actual: tuple.arity(),
                    });
                }
                let key: Vec<Value> = key_cols.iter().map(|&c| tuple[c].clone()).collect();
                map.entry(key).or_default().push(tuple.clone());
            }
            let ix = Rc::new(TupleIndex {
                arity: terms.len(),
                map,
            });
            cache.store(relation, rel.len(), key_cols.clone(), ix.clone());
            ix
        }
    };
    // A cache hit with a different term count is the arity-mismatch
    // case the build path reports; surface the same error.
    if index.arity != terms.len() {
        return Err(EngineError::Arity {
            relation: relation.to_string(),
            expected: terms.len(),
            actual: index.arity,
        });
    }

    let mut out = Vec::new();
    for row in &rows {
        let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
        for &c in &key_cols {
            key.push(match &terms[c] {
                PTerm::Const(v) => v.clone(),
                PTerm::Var(v) => row[*v]
                    .clone()
                    .ok_or_else(|| join_key_unbound(plan, relation, &terms[c]))?,
                PTerm::Wildcard => return Err(join_key_unbound(plan, relation, &terms[c])),
            });
        }
        let Some(candidates) = index.map.get(&key) else {
            continue;
        };
        for tuple in candidates {
            if let Some(extended) = unify_values(row, terms, tuple.values()) {
                out.push(extended);
            }
        }
    }
    Ok(dedupe(out))
}

/// Unifies concrete `values` against `terms`, extending `row` where a
/// variable is unbound and filtering where it is bound or constant.
fn unify_values(row: &Row, terms: &[PTerm], values: &[Value]) -> Option<Row> {
    let mut extended = row.clone();
    for (c, t) in terms.iter().enumerate() {
        match t {
            PTerm::Wildcard => {}
            PTerm::Const(v) => {
                if &values[c] != v {
                    return None;
                }
            }
            PTerm::Var(v) => match &extended[*v] {
                Some(existing) => {
                    if existing != &values[c] {
                        return None;
                    }
                }
                None => extended[*v] = Some(values[c].clone()),
            },
        }
    }
    Some(extended)
}

fn exists_match(rel: &Relation, terms: &[PTerm], row: &Row) -> bool {
    rel.iter().any(|tuple| {
        tuple.arity() == terms.len()
            && terms.iter().enumerate().all(|(c, t)| match t {
                PTerm::Wildcard => true,
                PTerm::Const(v) => &tuple[c] == v,
                PTerm::Var(v) => Some(&tuple[c]) == row[*v].as_ref(),
            })
    })
}

fn dedupe(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if seen.insert(r.clone()) {
            out.push(r);
        }
    }
    out
}

/// Projects binding rows through the head, grouping if any aggregate
/// column is present.
fn project_head(
    plan: &RulePlan,
    rows: Vec<Row>,
    docs: &mut DocumentStore,
    registry: &Registry,
) -> Result<Vec<Tuple>> {
    let var_value = |row: &Row, v: usize| -> Result<Value> {
        row[v].clone().ok_or_else(|| {
            internal(
                plan,
                format!("head variable {} is unbound", var_name(plan, v)),
            )
        })
    };

    if !plan.has_aggregation() {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let mut values = Vec::with_capacity(plan.head.len());
            for h in &plan.head {
                values.push(match h {
                    HeadOut::Var(v) => var_value(&row, *v)?,
                    HeadOut::Const(c) => c.clone(),
                    HeadOut::Aggregate { .. } => {
                        return Err(internal(
                            plan,
                            "aggregate head column outside the group-by path".to_string(),
                        ))
                    }
                });
            }
            out.push(Tuple::new(values));
        }
        return Ok(out);
    }

    // Group-by: key = non-aggregate head columns; each aggregate folds
    // the distinct (key, agg-vars) projections (set semantics — see
    // DESIGN.md §4 "aggregation semantics").
    let agg_vars: Vec<usize> = plan
        .head
        .iter()
        .filter_map(|h| match h {
            HeadOut::Aggregate { var, .. } => Some(*var),
            _ => None,
        })
        .collect();

    let mut groups: FxHashMap<Vec<Value>, Vec<Vec<Value>>> = FxHashMap::default();
    let mut seen: FxHashSet<(Vec<Value>, Vec<Value>)> = FxHashSet::default();
    let mut group_order: Vec<Vec<Value>> = Vec::new();
    for row in &rows {
        let mut key: Vec<Value> = Vec::with_capacity(plan.head.len());
        for h in &plan.head {
            match h {
                HeadOut::Var(v) => key.push(var_value(row, *v)?),
                HeadOut::Const(c) => key.push(c.clone()),
                HeadOut::Aggregate { .. } => {}
            }
        }
        let aggs: Vec<Value> = agg_vars
            .iter()
            .map(|&v| var_value(row, v))
            .collect::<Result<_>>()?;
        if seen.insert((key.clone(), aggs.clone())) {
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(aggs);
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in group_order {
        let members = &groups[&key];
        let mut tuple: Vec<Value> = Vec::with_capacity(plan.head.len());
        let mut key_iter = key.iter();
        let mut agg_idx = 0usize;
        for h in &plan.head {
            match h {
                HeadOut::Var(_) | HeadOut::Const(_) => {
                    let v = key_iter.next().ok_or_else(|| {
                        internal(plan, "group key shorter than head projection".to_string())
                    })?;
                    tuple.push(v.clone());
                }
                HeadOut::Aggregate {
                    func, conversions, ..
                } => {
                    let mut values: Vec<Value> =
                        members.iter().map(|m| m[agg_idx].clone()).collect();
                    // Conversions apply innermost-first; they are stored
                    // outermost-first as written.
                    for conv_name in conversions.iter().rev() {
                        let conv = registry.conversion(conv_name)?;
                        let ctx = IeContext::new(docs);
                        values = values
                            .iter()
                            .map(|v| conv.convert(v, &ctx))
                            .collect::<Result<_>>()?;
                    }
                    let agg = registry.aggregate(func)?;
                    tuple.push(agg.apply(&values)?);
                    agg_idx += 1;
                }
            }
        }
        out.push(Tuple::new(tuple));
    }
    Ok(out)
}
